//! Cross-generator sanity: the whole suite honors the `Generator` contract.

use inet_model::graph::traversal;
use inet_model::prelude::*;

fn suite(n: usize) -> Vec<Box<dyn Generator>> {
    vec![
        Box::new(Gnp::with_mean_degree(n, 4.2)),
        Box::new(Gnm::new(n, 2 * n)),
        Box::new(Waxman::with_mean_degree(n, 0.2, 4.2)),
        Box::new(RandomGeometric::with_mean_degree(n, 4.2)),
        Box::new(BarabasiAlbert::new(n, 2)),
        Box::new(Glp::internet_2001(n)),
        Box::new(InetLike::as_map_2001(n)),
        Box::new(Fkp::new(n, 8.0)),
        Box::new(Pfp::internet(n)),
        Box::new(BriteLike::new(
            n,
            2,
            0.2,
            inet_model::generators::brite::Placement::Fractal(1.5),
        )),
        Box::new(SerranoModel::new(SerranoParams::small(n))),
    ]
}

#[test]
fn every_generator_produces_a_valid_graph_of_requested_size() {
    for generator in suite(400) {
        let mut rng = seeded_rng(1);
        let net = generator.generate(&mut rng);
        assert!(
            net.graph.node_count() >= 400,
            "{}: got {} nodes",
            net.name,
            net.graph.node_count()
        );
        net.graph
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", net.name));
        assert!(!net.name.is_empty());
    }
}

#[test]
fn every_generator_is_deterministic_per_seed() {
    for generator in suite(250) {
        let a = generator.generate(&mut seeded_rng(7));
        let b = generator.generate(&mut seeded_rng(7));
        assert_eq!(a.graph, b.graph, "{} not deterministic", a.name);
    }
}

#[test]
fn spatial_generators_expose_positions() {
    let n = 300;
    let spatial: Vec<Box<dyn Generator>> = vec![
        Box::new(Waxman::with_mean_degree(n, 0.2, 4.0)),
        Box::new(RandomGeometric::with_mean_degree(n, 4.0)),
        Box::new(Fkp::new(n, 8.0)),
        Box::new(BriteLike::new(
            n,
            2,
            0.2,
            inet_model::generators::brite::Placement::Uniform,
        )),
        Box::new(SerranoModel::new(SerranoParams::small(n))),
    ];
    for generator in spatial {
        let mut rng = seeded_rng(3);
        let net = generator.generate(&mut rng);
        let positions = net
            .positions
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no positions", net.name));
        assert_eq!(positions.len(), net.graph.node_count(), "{}", net.name);
    }
}

#[test]
fn growth_generators_build_connected_networks() {
    for generator in [
        Box::new(BarabasiAlbert::new(300, 2)) as Box<dyn Generator>,
        Box::new(Glp::internet_2001(300)),
        Box::new(InetLike::as_map_2001(300)),
        Box::new(Fkp::new(300, 8.0)),
        Box::new(Pfp::internet(300)),
    ] {
        let mut rng = seeded_rng(4);
        let net = generator.generate(&mut rng);
        let csr = net.graph.to_csr();
        assert!(
            traversal::connected_components(&csr).is_connected(),
            "{} disconnected",
            net.name
        );
    }
}

#[test]
fn heavy_tail_generators_beat_homogeneous_ones_on_max_degree() {
    let n = 2000;
    let max_deg = |generator: Box<dyn Generator>| {
        let mut rng = seeded_rng(5);
        let net = generator.generate(&mut rng);
        net.graph.to_csr().max_degree()
    };
    let er = max_deg(Box::new(Gnp::with_mean_degree(n, 4.2)));
    let ba = max_deg(Box::new(BarabasiAlbert::new(n, 2)));
    let serrano = max_deg(Box::new(SerranoModel::new(SerranoParams::small(n))));
    assert!(ba > 2 * er, "BA hub ({ba}) should dwarf ER max ({er})");
    assert!(
        serrano > 2 * er,
        "Serrano hub ({serrano}) should dwarf ER max ({er})"
    );
}
