//! Integration suite for the `inet serve` daemon: protocol robustness
//! (oversized requests, stalled clients, malformed JSON), per-job
//! deadlines, crash recovery of interrupted jobs, and the headline chaos
//! scenario — SIGKILL the daemon binary mid-job and prove the restarted
//! daemon resumes the accepted job to output identical to a clean run.

use inet_suite::inet_model::pipeline::service::{
    self, encode_cmd, encode_submit, Service, ServiceConfig,
};
use inet_suite::inet_model::pipeline::{run_scenario, RunStore, Scenario};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("inet_serve_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_config(runs: PathBuf) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 8,
        runs_dir: runs,
        read_timeout_ms: 400,
        write_timeout_ms: 400,
        max_request_bytes: 4 * 1024,
        quiet: true,
        ..ServiceConfig::default()
    }
}

/// Binds a daemon on an ephemeral port and runs it on its own thread;
/// `drain(&addr)` shuts it down.
fn start(cfg: ServiceConfig) -> (String, std::thread::JoinHandle<()>) {
    let service = Service::bind(cfg).unwrap();
    let addr = service.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        service.run().unwrap();
    });
    (addr, handle)
}

fn drain(addr: &str) {
    service::request(addr, &encode_cmd("drain", None), 2_000).unwrap();
}

const TINY: &str = "[generator]\nmodel = \"ba\"\nn = 60\nseed = 7\n\
                    [measure]\nmetrics = [\"degree\"]\n";

/// A scenario long enough (hundreds of checkpointed sweep cells on one
/// thread) that a kill or deadline reliably lands mid-attack, yet each
/// cell is cheap, so cancellation and resume latency stay tiny.
const SLOW: &str = "threads = 1\n\
                    [generator]\nmodel = \"ba\"\nn = 2000\nseed = 11\n\
                    [attack]\nstrategies = [\"random\"]\nreplicas = 400\nrecord = 0\n";

/// Polls a job until it leaves queued/running; tolerates transient error
/// responses (chaos plans can reject individual connections).
fn poll_terminal(addr: &str, id: &str, budget: Duration) -> String {
    let deadline = Instant::now() + budget;
    loop {
        if let Ok(resp) = service::request(addr, &encode_cmd("status", Some(id)), 2_000) {
            match service::response_field(&resp, "status")
                .unwrap_or_default()
                .as_str()
            {
                "queued" | "running" | "error" | "" => {}
                _ => return resp,
            }
        }
        assert!(
            Instant::now() < deadline,
            "job {id} did not reach a terminal state"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The summary with "resumed N finished cell(s)" progress notes dropped:
/// the only line that legitimately differs between a clean run and a
/// crash-resumed run of the same job.
fn strip_resume_notes(summary: &str) -> String {
    summary
        .lines()
        .filter(|l| !l.starts_with("resumed "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn oversized_request_is_rejected_with_a_structured_error() {
    let dir = temp_dir("oversized");
    let (addr, handle) = start(test_config(dir.join("runs")));
    let mut stream = TcpStream::connect(&addr).unwrap();
    // 24 KiB of garbage without a newline — well past the 4 KiB
    // max_request_bytes, within the server's 8× drain allowance (beyond
    // that the daemon stops reading a garbage stream entirely).
    let blob = vec![b'x'; 24 * 1024];
    let _ = stream.write_all(&blob);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut resp = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("request too large"), "{resp}");
    assert!(resp.contains(r#""status":"error""#), "{resp}");
    drain(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_client_hits_the_read_timeout_without_blocking_the_accept_loop() {
    let dir = temp_dir("stalled");
    let (addr, handle) = start(test_config(dir.join("runs")));
    // Connection A connects and then says nothing.
    let mut stalled = TcpStream::connect(&addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Connection B completes a full round trip while A is stalling —
    // the accept loop and handler pool are not blocked.
    let t0 = Instant::now();
    let resp = service::request(&addr, &encode_cmd("stats", None), 2_000).unwrap();
    assert!(resp.contains(r#""status":"ok""#), "{resp}");
    assert!(
        t0.elapsed() < Duration::from_millis(1_500),
        "stats round trip blocked behind a stalled client: {:?}",
        t0.elapsed()
    );
    // A eventually receives a structured timeout error, not a bare hangup.
    let mut timeout_resp = String::new();
    stalled.read_to_string(&mut timeout_resp).unwrap();
    assert!(timeout_resp.contains("read timeout"), "{timeout_resp}");
    drain(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_json_gets_a_structured_error_not_a_dropped_connection() {
    let dir = temp_dir("malformed");
    let (addr, handle) = start(test_config(dir.join("runs")));
    for bad in ["this is not json", "{\"cmd\":", "[1,2,3]", "{}"] {
        let resp = service::request(&addr, bad, 2_000).unwrap();
        assert_eq!(
            service::response_field(&resp, "status").as_deref(),
            Some("error"),
            "request {bad:?} got {resp}"
        );
        assert!(
            service::response_field(&resp, "error").is_some(),
            "request {bad:?} got {resp}"
        );
    }
    drain(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_job_deadline_cancels_the_job_and_reports_deadline_status() {
    let dir = temp_dir("deadline");
    let (addr, handle) = start(test_config(dir.join("runs")));
    let resp = service::request(
        &addr,
        &encode_submit(SLOW, "slow.toml", &[], Some(60)),
        2_000,
    )
    .unwrap();
    assert_eq!(
        service::response_field(&resp, "status").as_deref(),
        Some("accepted"),
        "{resp}"
    );
    let id = service::response_field(&resp, "job").unwrap();
    let terminal = poll_terminal(&addr, &id, Duration::from_secs(60));
    assert_eq!(
        service::response_field(&terminal, "status").as_deref(),
        Some("deadline"),
        "{terminal}"
    );
    // `result` reports the same classification instead of a summary.
    let resp = service::request(&addr, &encode_cmd("result", Some(&id)), 2_000).unwrap();
    assert_eq!(
        service::response_field(&resp, "status").as_deref(),
        Some("deadline"),
        "{resp}"
    );
    drain(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn accepted_job_from_a_crashed_daemon_is_recovered_and_completed() {
    let dir = temp_dir("recover");
    let runs = dir.join("runs");
    // Simulate a daemon that crashed right after admission: the run store
    // exists and the service-job marker says "accepted", but nothing ran.
    let store = RunStore::create(&runs, "tiny", TINY, "tiny.toml", &[]).unwrap();
    let id = store.id().to_string();
    std::fs::write(
        runs.join(&id).join(service::JOB_FILE),
        format!(r#"{{"job":"{id}","state":"accepted","attempts":0}}"#),
    )
    .unwrap();
    drop(store);
    let (addr, handle) = start(test_config(runs));
    let terminal = poll_terminal(&addr, &id, Duration::from_secs(60));
    assert_eq!(
        service::response_field(&terminal, "status").as_deref(),
        Some("done"),
        "{terminal}"
    );
    let resp = service::request(&addr, &encode_cmd("result", Some(&id)), 2_000).unwrap();
    let served = service::response_field(&resp, "summary").unwrap();
    let direct = run_scenario(&Scenario::parse(TINY).unwrap()).unwrap();
    assert_eq!(
        served, direct.summary,
        "recovered job summary must match a clean run"
    );
    drain(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the real `inet` binary as a daemon and returns (child, addr).
fn spawn_daemon(runs: &Path) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_inet"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--runs-dir",
            runs.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("# serving on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// The no-job-lost acceptance scenario: SIGKILL the daemon process while
/// a checkpointed sweep is mid-flight, restart it on the same runs dir,
/// and require the job to finish with output identical to a clean run
/// (modulo the "resumed N cell(s)" progress note).
#[test]
fn sigkill_mid_job_restarted_daemon_resumes_to_identical_output() {
    let dir = temp_dir("sigkill");
    let runs = dir.join("runs");
    let (mut child, addr) = spawn_daemon(&runs);
    let resp =
        service::request(&addr, &encode_submit(SLOW, "slow.toml", &[], None), 5_000).unwrap();
    assert_eq!(
        service::response_field(&resp, "status").as_deref(),
        Some("accepted"),
        "{resp}"
    );
    let id = service::response_field(&resp, "job").unwrap();
    // Wait for the attack stage to commit its first checkpoint, then
    // SIGKILL — no drain, no cleanup, mid-job by construction.
    let ckpt = runs.join(&id).join("attack.ckpt.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(
            Instant::now() < deadline,
            "attack checkpoint never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    // The restarted daemon must rediscover the accepted job from its
    // journal and resume it cell-granularly to completion.
    let (mut child, addr) = spawn_daemon(&runs);
    let terminal = poll_terminal(&addr, &id, Duration::from_secs(120));
    assert_eq!(
        service::response_field(&terminal, "status").as_deref(),
        Some("done"),
        "{terminal}"
    );
    let resp = service::request(&addr, &encode_cmd("result", Some(&id)), 5_000).unwrap();
    let served = service::response_field(&resp, "summary").unwrap();
    let clean = run_scenario(&Scenario::parse(SLOW).unwrap()).unwrap();
    assert_eq!(
        strip_resume_notes(&served),
        strip_resume_notes(&clean.summary),
        "resumed job output must be identical to a clean run"
    );
    assert!(
        served.contains("resumed "),
        "the sweep should actually have resumed from the checkpoint, not re-run: {served}"
    );
    // SIGTERM → graceful drain → clean exit 0.
    drain(&addr);
    let status = child.wait().unwrap();
    assert!(status.success(), "drained daemon must exit 0, got {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
