//! Chaos suite: runs the toolkit's pipelines with the `inet-fault`
//! failpoints live and proves the robustness contract end to end —
//!
//! * every injected fault either recovers (retry, resample, backup) or
//!   surfaces as a structured error; **no injected fault escapes as an
//!   uncaught panic**;
//! * recovered results are bit-identical for the same `(seed, plan)` at
//!   any worker-thread count.
//!
//! Build with `--features fault-inject`; without the feature this file
//! compiles to an empty test binary (the failpoints are inlined `Ok(())`
//! in that configuration, so there is nothing to exercise).
#![cfg(feature = "fault-inject")]

use inet_suite::inet_model::fault::{self, FaultAction, FaultPlan, FaultSpec};
use inet_suite::inet_model::generators::ModelError;
use inet_suite::inet_model::graph::io::{read_edge_list, write_edge_list};
use inet_suite::inet_model::graph::GraphError;
use inet_suite::inet_model::metrics::robust::{measure_robust, RobustOptions};
use inet_suite::inet_model::prelude::*;
use std::sync::Mutex;

/// The fault registry is process-global, so every test that installs a
/// plan serializes on this lock (poisoning from an earlier test failure
/// must not cascade).
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn small_net(seed: u64) -> GeneratedNetwork {
    BarabasiAlbert::new(60, 2)
        .try_generate(&mut seeded_rng(seed))
        .expect("clean generation")
}

#[test]
fn injected_io_faults_surface_as_structured_errors() {
    let _l = lock();
    let net = small_net(1);

    // Error action on read: first call structured error, second clean.
    let _g = fault::install(FaultPlan::single("io.read", Some(0), FaultAction::Error));
    let err = read_edge_list("0 1\n".as_bytes()).unwrap_err();
    assert!(
        matches!(&err, GraphError::Io(m) if m.contains("io.read")),
        "{err}"
    );
    assert!(read_edge_list("0 1\n".as_bytes()).is_ok());
    drop(_g);

    // Error action on write: nothing is emitted past the failpoint.
    let _g = fault::install(FaultPlan::single("io.write", Some(0), FaultAction::Error));
    let mut buf = Vec::new();
    let err = write_edge_list(&net.graph, &mut buf).unwrap_err();
    assert!(
        matches!(&err, GraphError::Io(m) if m.contains("io.write")),
        "{err}"
    );
    assert!(buf.is_empty(), "nothing may be written past the failpoint");
    assert!(write_edge_list(&net.graph, &mut buf).is_ok());
    drop(_g);

    // Panic action: io has no enclosing recovery layer, so the failpoint
    // itself contains the panic and hands the site a structured error.
    let _g = fault::install(FaultPlan::single("io.read", Some(0), FaultAction::Panic));
    let err = read_edge_list("0 1\n".as_bytes()).unwrap_err();
    assert!(matches!(&err, GraphError::Io(_)), "{err}");
}

#[test]
fn injected_generator_faults_become_model_errors() {
    let _l = lock();
    let clean = small_net(7).graph;

    let ba = BarabasiAlbert::new(60, 2);
    let _g = fault::install(FaultPlan::single(
        "generator.generate",
        Some(0),
        FaultAction::Error,
    ));
    let err = ba.try_generate(&mut seeded_rng(7)).unwrap_err();
    assert!(err.to_string().contains("generator.generate"), "{err}");
    // The fault is one-shot: the next call recovers, bit-identically.
    let net = ba.try_generate(&mut seeded_rng(7)).unwrap();
    assert_eq!(net.graph, clean);
    drop(_g);

    let _g = fault::install(FaultPlan::single(
        "generator.generate",
        Some(0),
        FaultAction::Panic,
    ));
    let err = ba.try_generate(&mut seeded_rng(7)).unwrap_err();
    assert!(
        matches!(&err, ModelError::Internal { .. }),
        "injected panic must be contained as Internal, got {err}"
    );
    assert!(err.to_string().contains(fault::PANIC_PREFIX), "{err}");
    let net = ba.try_generate(&mut seeded_rng(7)).unwrap();
    assert_eq!(net.graph, clean);
}

#[test]
fn injected_kernel_panic_yields_partial_report_with_clean_numbers() {
    let _l = lock();
    let csr = small_net(3).graph.to_csr();
    let clean = measure_robust(&csr, RobustOptions::default());
    assert!(clean.fully_ok());

    // Kill the fused paths/betweenness kernel (index 4) with a panic; the
    // other kernels' numbers must match the clean run exactly.
    let _g = fault::install(FaultPlan::single(
        "metrics.kernel",
        Some(4),
        FaultAction::Panic,
    ));
    let partial = measure_robust(&csr, RobustOptions::default());
    drop(_g);
    assert!(!partial.fully_ok());
    let failures = partial.failures();
    assert_eq!(failures.len(), 1, "{}", partial.render_status());
    assert!(
        failures[0].1.contains(fault::PANIC_PREFIX),
        "{}",
        failures[0].1
    );
    // Fields owned by the surviving kernels carry the clean numbers.
    assert_eq!(partial.report.mean_degree, clean.report.mean_degree);
    assert_eq!(partial.report.max_degree, clean.report.max_degree);
    assert_eq!(partial.report.mean_clustering, clean.report.mean_clustering);
    assert_eq!(partial.report.transitivity, clean.report.transitivity);
    assert_eq!(partial.report.coreness, clean.report.coreness);
    assert_eq!(partial.report.giant_fraction, clean.report.giant_fraction);
}

fn sweep_under(
    plan: &FaultPlan,
    threads: usize,
    checkpoint: Option<std::path::PathBuf>,
) -> SweepResult {
    let csr = small_net(5).graph.to_csr();
    let cfg = SweepConfig {
        strategies: vec![Strategy::Random, Strategy::Degree { recalc: false }],
        replicas: 2,
        base_seed: 17,
        threads,
        record_every: 4,
        bc_sources: 8,
        checkpoint,
        fail_cells: Vec::new(),
        cancel: CancelToken::new(),
    };
    let _g = fault::install(plan.clone());
    let result = run_sweep(&csr, &cfg).expect("sweep starts");
    fault::clear();
    result
}

#[test]
fn faulted_sweep_is_bit_identical_at_any_thread_count() {
    let _l = lock();
    // Error one cell, panic another, delay a third: every recovery path at
    // once, pinned by canonical cell index so scheduling cannot move them.
    let plan = FaultPlan {
        specs: vec![
            FaultSpec {
                failpoint: "sweep.cell",
                scope: Some(0),
                max_hits: 1,
                action: FaultAction::Error,
            },
            FaultSpec {
                failpoint: "sweep.cell",
                scope: Some(2),
                max_hits: 1,
                action: FaultAction::Panic,
            },
            FaultSpec {
                failpoint: "sweep.cell",
                scope: Some(1),
                max_hits: 1,
                action: FaultAction::Delay(2),
            },
        ],
    };
    let baseline = sweep_under(&plan, 1, None);
    assert_eq!(
        baseline.failures.len(),
        2,
        "error + panic each resampled once"
    );
    for threads in [2, 7] {
        let other = sweep_under(&plan, threads, None);
        assert_eq!(other.cells, baseline.cells, "threads={threads}");
        assert_eq!(other.failures, baseline.failures, "threads={threads}");
    }
    // Against a clean run: the resampled cells (0 and 2) reran on their
    // attempt-1 seed, but delay-only and untouched cells carry exactly the
    // clean numbers.
    let clean = sweep_under(&FaultPlan::default(), 2, None);
    assert_eq!(clean.cells.len(), baseline.cells.len());
    for (i, (c, b)) in clean.cells.iter().zip(&baseline.cells).enumerate() {
        if i != 0 && i != 2 {
            assert_eq!(c, b, "cell {i} must be untouched by injection");
        }
    }
    assert!(clean.failures.is_empty());
}

#[test]
fn seeded_fault_plans_never_escape_as_panics() {
    let _l = lock();
    let dir = std::env::temp_dir().join("inet_chaos_storm");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for seed in 0..24u64 {
        let plan = FaultPlan::from_seed(seed);
        let ckpt = dir.join(format!("storm-{seed}.json"));
        let outcome = std::panic::catch_unwind(|| {
            // Generation: a fault is a ModelError; fall back to a clean
            // graph so the later stages always have input.
            let generated = {
                let _g = fault::install(plan.clone());
                BarabasiAlbert::new(40, 2).try_generate(&mut seeded_rng(seed))
            };
            let net = generated.unwrap_or_else(|_| small_net(seed));
            // Fresh install (hit counters reset) for the downstream stages.
            let _guard = fault::install(plan.clone());
            // Edge-list round trip: faults are structured GraphError::Io.
            let mut buf = Vec::new();
            if write_edge_list(&net.graph, &mut buf).is_ok() {
                let _ = read_edge_list(buf.as_slice());
            }
            // Metrics: kernel faults degrade to KernelStatus::Failed.
            let _ = measure_robust(&net.graph.to_csr(), RobustOptions::default());
            // Attack sweep with checkpointing: cell faults resample,
            // checkpoint faults retry or recover from the backup.
            let cfg = SweepConfig {
                strategies: vec![Strategy::Random],
                replicas: 2,
                base_seed: seed,
                threads: 2,
                record_every: 4,
                bc_sources: 8,
                checkpoint: Some(ckpt.clone()),
                fail_cells: Vec::new(),
                cancel: CancelToken::new(),
            };
            let _ = run_sweep(&net.graph.to_csr(), &cfg);
        });
        fault::clear();
        assert!(
            outcome.is_ok(),
            "seed {seed} plan [{}] escaped as a panic",
            plan.describe()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delay_faults_change_nothing_but_time() {
    let _l = lock();
    let csr = small_net(9).graph.to_csr();
    let clean = measure_robust(&csr, RobustOptions::default());
    let _g = fault::install(FaultPlan {
        specs: vec![FaultSpec {
            failpoint: "metrics.kernel",
            scope: None,
            max_hits: 0,
            action: FaultAction::Delay(1),
        }],
    });
    let delayed = measure_robust(&csr, RobustOptions::default());
    drop(_g);
    assert!(delayed.fully_ok(), "{}", delayed.render_status());
    assert_eq!(delayed.report, clean.report);
}

/// Tentpole chaos: the crash-safe run store under injected journal and
/// artifact faults. Each fault aborts the run with a structured data error
/// (exit 4), and resuming the same run store completes to results
/// bit-identical to an uninterrupted run — at any thread count.
#[test]
fn journal_faults_abort_cleanly_and_resume_bit_identically() {
    use inet_suite::inet_model::pipeline::{run_scenario_with, ExecOptions, RunStore, Scenario};

    let _l = lock();
    let dir = std::env::temp_dir().join("inet_chaos_journal_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let text = "[generator]\nmodel = \"ba\"\nn = 90\nseed = 5\n\
                [measure]\nmetrics = [\"degree\", \"giant\"]\n\
                [attack]\nstrategies = [\"random\", \"degree-recalc\"]\nreplicas = 2\nrecord = 2";
    let scenario = Scenario::parse(text).unwrap();
    let expected = run_scenario_with(&scenario, &ExecOptions::default()).unwrap();
    let expected_cells = expected.sweep.as_ref().unwrap().cells.clone();

    for threads in [1usize, 2, 7] {
        let mut scenario = Scenario::parse(text).unwrap();
        scenario.threads = Some(threads);
        // Scope = stage index: hit the journal on stage 0 (begin record),
        // the artifact rename on stage 0, the journal again on stage 2 so
        // the resume also exercises artifact replay of stages 0 and 1, and
        // an injected *panic* in the attack stage (contained by the stage
        // fence as exit 1, then resumed).
        for (fail, scope, action, want_code) in [
            ("journal.write", 0u64, FaultAction::Error, 4),
            ("artifact.rename", 0, FaultAction::Error, 4),
            ("journal.write", 2, FaultAction::Error, 4),
            ("pipeline.stage", 2, FaultAction::Panic, 1),
        ] {
            let runs = dir.join(format!("runs-{threads}-{fail}-{scope}"));
            let store = RunStore::create(&runs, &scenario.name, text, "s.toml", &[]).unwrap();
            let id = store.id().to_string();
            let guard = fault::install(FaultPlan::single(fail, Some(scope), action));
            let err = run_scenario_with(
                &scenario,
                &ExecOptions {
                    store: Some(store),
                    ..Default::default()
                },
            )
            .unwrap_err();
            drop(guard);
            assert_eq!(err.exit_code(), want_code, "{fail}@{scope}: {err}");
            if want_code == 4 {
                assert!(err.message().contains(fail), "{err}");
            }
            let resumed = run_scenario_with(
                &scenario,
                &ExecOptions {
                    store: Some(RunStore::open(&runs, &id).unwrap()),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                resumed.sweep.unwrap().cells,
                expected_cells,
                "{fail}@{scope} threads={threads}"
            );
            assert_eq!(
                resumed.summary, expected.summary,
                "{fail}@{scope} threads={threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling a journaled run mid-sweep (the token fires once the first
/// checkpoint write lands) exits with the resumable class, and the resumed
/// run finishes to bit-identical cells — at thread counts 1, 2, and 7.
/// If the sweep wins the race and completes first, the results must be
/// identical anyway; both outcomes are asserted.
#[test]
fn mid_sweep_cancellation_exits_resumable_and_resumes_bit_identically() {
    use inet_suite::inet_model::pipeline::{run_scenario_with, ExecOptions, RunStore, Scenario};

    let _l = lock();
    let dir = std::env::temp_dir().join("inet_chaos_cancel_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let text = "[generator]\nmodel = \"ba\"\nn = 120\nseed = 9\n\
                [attack]\nstrategies = [\"random\", \"degree-recalc\"]\nreplicas = 2\nrecord = 1";
    let scenario = Scenario::parse(text).unwrap();
    let expected_cells = run_scenario_with(&scenario, &ExecOptions::default())
        .unwrap()
        .sweep
        .unwrap()
        .cells;

    for threads in [1usize, 2, 7] {
        let mut scenario = Scenario::parse(text).unwrap();
        scenario.threads = Some(threads);
        let runs = dir.join(format!("runs-{threads}"));
        let store = RunStore::create(&runs, &scenario.name, text, "s.toml", &[]).unwrap();
        let id = store.id().to_string();
        let ckpt = store.path("attack.ckpt.json");
        let cancel = CancelToken::new();
        let watcher = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                for _ in 0..5000 {
                    if ckpt.exists() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                cancel.cancel();
            })
        };
        let outcome = run_scenario_with(
            &scenario,
            &ExecOptions {
                cancel,
                store: Some(store),
            },
        );
        watcher.join().unwrap();
        match outcome {
            Err(e) => {
                assert_eq!(e.exit_code(), 6, "threads={threads}: {e}");
                assert!(e.message().contains(&format!("--resume {id}")), "{e}");
                let resumed = run_scenario_with(
                    &scenario,
                    &ExecOptions {
                        store: Some(RunStore::open(&runs, &id).unwrap()),
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    resumed.sweep.unwrap().cells,
                    expected_cells,
                    "threads={threads}"
                );
            }
            Ok(done) => {
                assert_eq!(
                    done.sweep.unwrap().cells,
                    expected_cells,
                    "threads={threads}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry is provably inert: an unlimited *panic* plan on the
/// `obs.record` failpoint (the gate in front of every span, counter, and
/// histogram recording site) must change no output bit anywhere. Pipeline
/// runs at thread counts 1, 2, and 7 produce summaries and sweep cells
/// identical to the clean run, and a served job still completes — a
/// panicking recorder never kills a job.
#[test]
fn panicking_telemetry_recorder_changes_nothing_and_kills_nothing() {
    use inet_suite::inet_model::pipeline::service::{
        encode_cmd, encode_submit, request, response_field, Service, ServiceConfig,
    };
    use inet_suite::inet_model::pipeline::{run_scenario_with, ExecOptions, RunStore, Scenario};
    use std::time::{Duration, Instant};

    let _l = lock();
    let dir = std::env::temp_dir().join("inet_chaos_obs_record");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let text = "[generator]\nmodel = \"ba\"\nn = 90\nseed = 5\n\
                [measure]\nmetrics = [\"degree\", \"giant\"]\n\
                [attack]\nstrategies = [\"random\", \"degree-recalc\"]\nreplicas = 2\nrecord = 2";
    let clean =
        run_scenario_with(&Scenario::parse(text).unwrap(), &ExecOptions::default()).unwrap();
    let clean_cells = clean.sweep.as_ref().unwrap().cells.clone();

    // Unlimited hits, every scope: every recording attempt panics.
    let plan = FaultPlan {
        specs: vec![FaultSpec {
            failpoint: "obs.record",
            scope: None,
            max_hits: 0,
            action: FaultAction::Panic,
        }],
    };
    for threads in [1usize, 2, 7] {
        let mut scenario = Scenario::parse(text).unwrap();
        scenario.threads = Some(threads);
        let runs = dir.join(format!("runs-{threads}"));
        let store = RunStore::create(&runs, &scenario.name, text, "s.toml", &[]).unwrap();
        let guard = fault::install(plan.clone());
        let stormed = run_scenario_with(
            &scenario,
            &ExecOptions {
                store: Some(store),
                ..Default::default()
            },
        )
        .unwrap();
        drop(guard);
        assert_eq!(stormed.summary, clean.summary, "threads={threads}");
        assert_eq!(
            stormed.sweep.unwrap().cells,
            clean_cells,
            "threads={threads}"
        );
    }

    // A served job survives a panicking recorder end to end.
    const TINY: &str = "[generator]\nmodel = \"ba\"\nn = 60\nseed = 7\n\
                        [measure]\nmetrics = [\"degree\"]\n";
    let reference = inet_suite::inet_model::pipeline::run_scenario(&Scenario::parse(TINY).unwrap())
        .unwrap()
        .summary;
    let service = Service::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        runs_dir: dir.join("runs-served"),
        read_timeout_ms: 1_000,
        write_timeout_ms: 1_000,
        quiet: true,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || service.run().unwrap());
    let guard = fault::install(plan);
    let resp = request(&addr, &encode_submit(TINY, "t.toml", &[], None), 5_000).unwrap();
    assert_eq!(response_field(&resp, "status").as_deref(), Some("accepted"));
    let id = response_field(&resp, "job").unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let summary = loop {
        assert!(
            Instant::now() < deadline,
            "job {id} never completed under the obs.record panic plan"
        );
        let resp = request(&addr, &encode_cmd("result", Some(&id)), 5_000).unwrap();
        match response_field(&resp, "status").unwrap_or_default().as_str() {
            "done" => break response_field(&resp, "summary").unwrap(),
            "queued" | "running" | "error" | "" => {}
            other => panic!("job {id} ended {other}: {resp}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(summary, reference, "served job must match the clean run");
    drop(guard);
    request(&addr, &encode_cmd("drain", None), 5_000).unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The serving-layer storm: 24 seeded single-spec plans across the three
/// `service.*` failpoints (connection handling, admission, worker
/// execution) with every action (error, panic, delay). The no-job-lost
/// invariant under fire:
///
/// * every submission receives a structured response — accepted,
///   rejected, or error; never a silent drop or an uncaught panic;
/// * every *accepted* job runs to completion with a summary identical to
///   a fault-free run (worker faults retry, admission faults reject
///   up front, connection faults answer with structured errors).
#[test]
fn service_fault_storm_never_loses_an_accepted_job() {
    use inet_suite::inet_model::pipeline::service::{
        encode_cmd, encode_submit, request, response_field, Service, ServiceConfig,
    };
    use inet_suite::inet_model::pipeline::{run_scenario, Scenario};
    use std::time::{Duration, Instant};

    let _l = lock();
    const TINY: &str = "[generator]\nmodel = \"ba\"\nn = 60\nseed = 7\n\
                        [measure]\nmetrics = [\"degree\"]\n";
    // The fault-free reference, computed before any plan is installed.
    let reference = run_scenario(&Scenario::parse(TINY).unwrap())
        .unwrap()
        .summary;

    let failpoints = ["service.accept", "service.queue", "service.worker"];
    let actions = [
        FaultAction::Error,
        FaultAction::Panic,
        FaultAction::Delay(3),
    ];
    let dir = std::env::temp_dir().join("inet_chaos_service_storm");
    let _ = std::fs::remove_dir_all(&dir);
    for seed in 0..24u64 {
        let spec = FaultSpec {
            failpoint: failpoints[(seed % 3) as usize],
            scope: Some((seed / 3) % 2),
            max_hits: 1 + seed % 2,
            action: actions[((seed / 6) % 3) as usize],
        };
        let plan = FaultPlan { specs: vec![spec] };
        let service = Service::bind(ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            runs_dir: dir.join(format!("runs-{seed}")),
            read_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            quiet: true,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || service.run().unwrap());

        // The plan goes live only once the daemon is up, so every hit
        // lands on the service.* sites the storm is aimed at.
        let guard = fault::install(plan.clone());
        let mut accepted = Vec::new();
        for j in 0..3 {
            // The invariant under test: the transport never fails — even
            // a faulted connection answers with a structured line.
            let resp = request(&addr, &encode_submit(TINY, "t.toml", &[], None), 5_000)
                .unwrap_or_else(|e| panic!("seed {seed}: submission {j} got no response: {e}"));
            let status = response_field(&resp, "status").unwrap_or_default();
            match status.as_str() {
                "accepted" => accepted.push(response_field(&resp, "job").unwrap()),
                "rejected" | "error" => {
                    assert!(
                        response_field(&resp, "error").is_some(),
                        "seed {seed}: rejection without a reason: {resp}"
                    );
                }
                other => panic!("seed {seed}: submission {j} got status {other:?}: {resp}"),
            }
        }
        // Every accepted job must finish — worker faults retry — and
        // match the fault-free reference bit for bit.
        for id in &accepted {
            let deadline = Instant::now() + Duration::from_secs(60);
            let summary = loop {
                assert!(
                    Instant::now() < deadline,
                    "seed {seed}: job {id} never completed under plan {plan:?}"
                );
                // Status polls share the faulted accept path; transient
                // structured errors are part of the storm, retry them.
                if let Ok(resp) = request(&addr, &encode_cmd("result", Some(id)), 5_000) {
                    match response_field(&resp, "status").unwrap_or_default().as_str() {
                        "done" => break response_field(&resp, "summary").unwrap(),
                        "queued" | "running" | "error" | "" => {}
                        other => panic!("seed {seed}: job {id} ended {other}: {resp}"),
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            assert_eq!(
                summary, reference,
                "seed {seed}: accepted job must match the fault-free run"
            );
        }
        drop(guard);
        request(&addr, &encode_cmd("drain", None), 5_000).unwrap();
        handle.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
