//! Determinism guarantees: the whole stack is bit-reproducible per seed.

use inet_model::prelude::*;

#[test]
fn identical_seeds_reproduce_full_reports() {
    let build = || {
        let mut rng = seeded_rng(0xD5EED);
        let net = SerranoModel::new(SerranoParams::small(800)).generate(&mut rng);
        let (giant, _) = inet_model::graph::traversal::giant_component(&net.graph.to_csr());
        TopologyReport::measure(&giant)
    };
    assert_eq!(build(), build());
}

#[test]
fn different_seeds_differ() {
    let build = |seed| {
        let mut rng = seeded_rng(seed);
        Glp::internet_2001(500).generate(&mut rng).graph
    };
    assert_ne!(build(1), build(2));
}

#[test]
fn child_streams_are_independent_and_stable() {
    let a1 = child_rng(9, 1);
    let a2 = child_rng(9, 1);
    let b = child_rng(9, 2);
    use rand::Rng;
    let mut a1 = a1;
    let mut a2 = a2;
    let mut b = b;
    let x1: u64 = a1.gen();
    let x2: u64 = a2.gen();
    let y: u64 = b.gen();
    assert_eq!(x1, x2);
    assert_ne!(x1, y);
}

#[test]
fn experiment_runs_are_reproducible() {
    use inet_model::experiment::ModelVariant;
    let a = ModelVariant::WithDistance.run(300, 11);
    let b = ModelVariant::WithDistance.run(300, 11);
    assert_eq!(a.network.graph, b.network.graph);
    assert_eq!(a.iterations, b.iterations);
    let ua: f64 = a.network.users.as_ref().expect("users").iter().sum();
    let ub: f64 = b.network.users.as_ref().expect("users").iter().sum();
    assert_eq!(
        ua.to_bits(),
        ub.to_bits(),
        "user pool must be bit-identical"
    );
}

#[test]
fn trace_generation_and_fit_are_deterministic() {
    use inet_model::growth::fit::FittedRates;
    let run = |seed| {
        let mut rng = seeded_rng(seed);
        let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
        FittedRates::fit(&trace).expect("fittable").rates()
    };
    let r1 = run(5);
    let r2 = run(5);
    assert_eq!(r1.alpha.to_bits(), r2.alpha.to_bits());
    assert_eq!(r1.beta.to_bits(), r2.beta.to_bits());
    assert_eq!(r1.delta.to_bits(), r2.delta.to_bits());
}
