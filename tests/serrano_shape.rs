//! Paper-shape regression tests for the competition–adaptation model.
//!
//! These encode the *qualitative* claims of the source text at moderate
//! size, so a refactor that silently breaks the physics fails CI even
//! without running the full figure suite.

use inet_model::experiment::ModelVariant;
use inet_model::metrics::{weighted, ClusteringStats, KnnStats, PathStats};
use inet_model::prelude::*;

const N: usize = 4000;

fn giant(variant: ModelVariant, stream: u64) -> (Csr, inet_model::generators::serrano::SerranoRun) {
    let run = variant.run(N, stream);
    let (g, _) = inet_model::graph::traversal::giant_component(&run.network.graph.to_csr());
    (g, run)
}

#[test]
fn degree_distribution_is_heavy_tailed_with_internet_exponent() {
    let (g, _) = giant(ModelVariant::WithoutDistance, 1);
    let degrees: Vec<u64> = g.degrees().iter().map(|&d| d as u64).collect();
    let fit = inet_model::stats::powerlaw::fit_discrete(&degrees, 6).expect("fittable");
    assert!(
        (1.7..2.7).contains(&fit.gamma),
        "gamma = {} outside the Internet band",
        fit.gamma
    );
    // Hub scale: the max degree grabs a macroscopic share of the network,
    // the paper's linear-scaling claim.
    let kmax = g.max_degree();
    assert!(
        kmax as f64 > 0.05 * g.node_count() as f64,
        "kmax = {kmax} not macroscopic"
    );
}

#[test]
fn bandwidth_degree_scaling_matches_mu() {
    let (g, _) = giant(ModelVariant::WithoutDistance, 2);
    let mu = weighted::fit_mu(&g, 4).expect("fittable");
    assert!(
        (mu.slope - 0.75).abs() < 0.12,
        "mu = {} vs predicted 0.75",
        mu.slope
    );
    assert!(mu.slope < 1.0, "mu must stay sublinear");
}

#[test]
fn network_contains_multiple_connections() {
    let (_, run) = giant(ModelVariant::WithoutDistance, 3);
    let g = &run.network.graph;
    let multiplicity = g.total_weight() as f64 / g.edge_count() as f64;
    assert!(
        multiplicity > 1.2,
        "mean multiplicity {multiplicity}: the weighted structure vanished"
    );
}

#[test]
fn small_world_and_clustered() {
    let (g, _) = giant(ModelVariant::WithDistance, 4);
    let paths = PathStats::measure_sampled(&g, 150, 4);
    assert!(paths.mean < 4.5, "mean path {} too long", paths.mean);
    let c = ClusteringStats::measure(&g).mean_local;
    assert!(c > 0.15, "clustering {c} collapsed");
}

#[test]
fn disassortative_like_the_internet() {
    for (variant, stream) in [
        (ModelVariant::WithDistance, 5),
        (ModelVariant::WithoutDistance, 6),
    ] {
        let (g, _) = giant(variant, stream);
        let r = KnnStats::measure(&g).assortativity;
        assert!(
            r < -0.05,
            "{}: assortativity {r} not disassortative",
            variant.label()
        );
    }
}

#[test]
fn distance_constraint_shortens_links_not_the_world() {
    let (with_g, with_run) = giant(ModelVariant::WithDistance, 7);
    let positions = with_run.network.positions.as_ref().expect("positions");
    let mean_len: f64 = with_run
        .network
        .graph
        .edges()
        .map(|(u, v, _)| positions[u.index()].dist(&positions[v.index()]))
        .sum::<f64>()
        / with_run.network.graph.edge_count() as f64;
    assert!(mean_len < 0.45, "links too long on average: {mean_len}");
    let paths = PathStats::measure_sampled(&with_g, 150, 4);
    assert!(paths.mean < 4.5, "distance variant lost the small world");
}

#[test]
fn size_distribution_tail_is_one_plus_tau() {
    let (_, run) = giant(ModelVariant::WithoutDistance, 8);
    let users = run.network.users.as_ref().expect("users");
    let ccdf = inet_model::stats::ccdf::ccdf_f64(users);
    let pts: Vec<(f64, f64)> = ccdf
        .points()
        .filter(|&(w, c)| w > 20_000.0 && c > 2e-3)
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    let fit = inet_model::stats::regression::loglog_fit(&xs, &ys).expect("fittable");
    // CCDF exponent is tau = beta/alpha = 0.857.
    assert!(
        (fit.slope + 0.857).abs() < 0.3,
        "size CCDF slope {} vs -0.857",
        fit.slope
    );
}

#[test]
fn both_variants_grow_to_target_and_conserve_users() {
    for (variant, stream) in [
        (ModelVariant::WithDistance, 9),
        (ModelVariant::WithoutDistance, 10),
    ] {
        let run = variant.run(1500, stream);
        assert!(run.network.graph.node_count() >= 1500);
        let users = run.network.users.as_ref().expect("users");
        let total: f64 = users.iter().sum();
        let recorded = run.history.last().expect("history").users;
        assert!(
            (total - recorded).abs() < 1e-6 * total,
            "{}",
            variant.label()
        );
        assert!(users.iter().all(|&u| u > 0.0));
    }
}
