//! End-to-end pipeline tests spanning every crate in the workspace:
//! trace → rate fitting → model growth → measurement → validation.

use inet_model::growth::fit::FittedRates;
use inet_model::prelude::*;

#[test]
fn archive_trace_to_validated_internet() {
    // 1. Fit growth rates from the synthetic archive.
    let mut rng = seeded_rng(0xE2E);
    let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
    let rates = FittedRates::fit(&trace).expect("fittable").rates();
    assert!(rates.alpha > rates.beta, "demand must lead supply");

    // 2. Drive the model with the fitted algebra.
    let mut params = SerranoParams::paper_2001();
    params.alpha = rates.alpha;
    params.beta = rates.beta;
    params.delta_prime = rates.delta_prime();
    params.target_n = 2000;
    let run = SerranoModel::new(params).run(&mut rng);
    assert!(run.network.graph.node_count() >= 2000);

    // 3. Measure and validate.
    let (giant, _) = inet_model::graph::traversal::giant_component(&run.network.graph.to_csr());
    let validation = ValidationReport::run(&giant, &inet_model::reference::AS_MAP_2001);
    assert!(
        validation.pass_count() >= 4,
        "pipeline output degraded:\n{}",
        validation.render()
    );
}

#[test]
fn reference_map_pipeline() {
    let mut rng = seeded_rng(0xBEE);
    let targets = inet_model::reference::AS_MAP_2001;
    let reference = inet_model::reference::build_reference_csr(&targets, &mut rng);
    assert!(reference.node_count() as f64 > 0.9 * targets.nodes as f64);
    let report = TopologyReport::measure(&reference);
    assert!(
        report.gamma.is_some(),
        "reference map must have a fittable tail"
    );
    assert!(
        report.mean_path_length < 5.0,
        "reference map must be small world"
    );
    assert!(
        report.assortativity < 0.0,
        "reference map must be disassortative"
    );
}

#[test]
fn model_history_feeds_growth_fits() {
    // The model's own recorded history must be fittable by the same
    // machinery used for archive traces.
    let run = inet_model::experiment::ModelVariant::WithoutDistance.run(1500, 3);
    let t: Vec<f64> = run.history.iter().map(|h| h.t as f64).collect();
    let users: Vec<f64> = run.history.iter().map(|h| h.users).collect();
    let half = t.len() / 2;
    let fit = inet_model::stats::regression::exp_growth_fit(&t[half..], &users[half..])
        .expect("fittable");
    assert!(
        (fit.rate - 0.035).abs() < 0.01,
        "user growth rate {} drifted",
        fit.rate
    );
}

#[test]
fn graph_io_round_trips_generated_networks() {
    let mut rng = seeded_rng(0x10);
    let net = Glp::internet_2001(300).generate(&mut rng);
    let mut buffer = Vec::new();
    inet_model::graph::io::write_edge_list(&net.graph, &mut buffer).expect("write");
    let parsed = inet_model::graph::io::read_edge_list(buffer.as_slice()).expect("read");
    assert_eq!(parsed, net.graph);
}

#[test]
fn weighted_networks_round_trip_with_multiplicities() {
    let mut rng = seeded_rng(0x11);
    let mut params = SerranoParams::small(400);
    params.distance = None;
    let net = SerranoModel::new(params).generate(&mut rng);
    assert!(
        net.graph.total_weight() > net.graph.edge_count() as u64,
        "the weighted model must carry multiplicities"
    );
    let mut buffer = Vec::new();
    inet_model::graph::io::write_edge_list(&net.graph, &mut buffer).expect("write");
    let parsed = inet_model::graph::io::read_edge_list(buffer.as_slice()).expect("read");
    assert_eq!(parsed.total_weight(), net.graph.total_weight());
    assert_eq!(parsed, net.graph);
}
