//! Cross-module consistency checks: independent code paths must agree on
//! the same quantities.

use inet_model::metrics::{
    betweenness, ClusteringStats, CycleCensus, DegreeStats, KCoreDecomposition, PathStats,
};
use inet_model::prelude::*;

fn as_like(n: usize, seed: u64) -> Csr {
    let mut rng = seeded_rng(seed);
    let net = InetLike::as_map_2001(n).generate(&mut rng);
    let (giant, _) = inet_model::graph::traversal::giant_component(&net.graph.to_csr());
    giant
}

#[test]
fn triangle_counts_agree_between_clustering_and_census() {
    let g = as_like(800, 1);
    let clustering = ClusteringStats::measure(&g);
    let census = CycleCensus::measure(&g);
    assert_eq!(clustering.triangle_count, census.c3);
    // And the census path that reuses clustering agrees with the fresh one.
    let reused = CycleCensus::measure_with_clustering(&g, &clustering);
    assert_eq!(census, reused);
}

#[test]
fn degree_moments_agree_with_graph_counts() {
    let g = as_like(600, 2);
    let stats = DegreeStats::measure(&g);
    assert!((stats.mean - g.mean_degree()).abs() < 1e-12);
    assert_eq!(stats.max as usize, g.max_degree());
    let handshake: u64 = stats.degrees.iter().sum();
    assert_eq!(handshake as usize, 2 * g.edge_count());
}

#[test]
fn betweenness_and_paths_agree_on_a_line() {
    // On a path graph both are closed-form; check the two modules against
    // each other and the formulas.
    let n = 30;
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let g = Csr::from_edges(n, &edges);
    let bc = betweenness(&g);
    let paths = PathStats::measure(&g);
    // Sum of betweenness = sum over pairs of (path length - 1) since every
    // interior vertex of the unique shortest path gains 1.
    let bc_sum: f64 = bc.iter().sum();
    let interior_sum: f64 = paths
        .counts
        .iter()
        .enumerate()
        .map(|(d, &c)| (d.saturating_sub(1)) as f64 * c as f64 / 2.0)
        .sum();
    assert!(
        (bc_sum - interior_sum).abs() < 1e-6,
        "betweenness mass {bc_sum} vs path interior mass {interior_sum}"
    );
}

#[test]
fn kcore_of_giant_is_bounded_by_degrees() {
    let g = as_like(700, 3);
    let core = KCoreDecomposition::measure(&g);
    let stats = DegreeStats::measure(&g);
    assert!(core.coreness() as u64 <= stats.max);
    for v in 0..g.node_count() {
        assert!(core.core[v] as usize <= g.degree(v));
    }
    // Shell sizes partition the graph.
    assert_eq!(core.shell_sizes.iter().sum::<usize>(), g.node_count());
}

#[test]
fn rewired_null_model_keeps_degrees_but_moves_edges() {
    let g = as_like(900, 4);
    let mut rng = seeded_rng(5);
    let rewired = inet_model::metrics::randomize::rewire_degree_preserving(&g, 10, &mut rng);
    let before = DegreeStats::measure(&g);
    let after = DegreeStats::measure(&rewired);
    assert_eq!(before.degrees, after.degrees, "degrees are invariant");
    assert_eq!(g.edge_count(), rewired.edge_count());
    assert!(rewired.validate());
    // The edge *set* must actually change (structure destroyed). Note:
    // mean local clustering is NOT guaranteed to drop under rewiring of a
    // heavy-tailed graph — chance hub-hub triangles can raise it — so we
    // assert edge movement, not a clustering direction.
    let set = |g: &Csr| {
        g.edges()
            .map(|(u, v, _)| (u, v))
            .collect::<std::collections::HashSet<_>>()
    };
    let overlap = set(&g).intersection(&set(&rewired)).count();
    assert!(
        (overlap as f64) < 0.8 * g.edge_count() as f64,
        "only {overlap}/{} edges moved",
        g.edge_count()
    );
}

#[test]
fn csr_and_multigraph_agree_through_reports() {
    let mut rng = seeded_rng(6);
    let net = Pfp::internet(500).generate(&mut rng);
    let csr = net.graph.to_csr();
    // Round trip: multigraph -> csr -> multigraph -> csr gives equal csr.
    let csr2 = csr.to_multigraph().to_csr();
    assert_eq!(csr, csr2);
    let r1 = TopologyReport::measure(&csr);
    let r2 = TopologyReport::measure(&csr2);
    assert_eq!(r1, r2);
}
