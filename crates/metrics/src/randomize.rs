//! Degree-preserving randomization (double-edge swaps).
//!
//! The canonical null model for correlation-sensitive observables
//! (rich-club, assortativity): repeatedly pick two edges `(a, b)` and
//! `(c, d)` and rewire them to `(a, d)`, `(c, b)` unless that would create a
//! self-loop or a duplicate edge. Degrees are invariant under the swap.

use inet_graph::{Csr, MultiGraph, NodeId};
use rand::Rng;

/// Produces a degree-preserving randomization of `g` by attempting
/// `swaps_per_edge × E` double-edge swaps. Multi-edge weights are ignored
/// (the null model is about the simple topology).
///
/// Returns the rewired graph; the input is untouched.
pub fn rewire_degree_preserving<R: Rng>(g: &Csr, swaps_per_edge: usize, rng: &mut R) -> Csr {
    let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u as u32, v as u32)).collect();
    let m = edges.len();
    if m < 2 {
        return g.clone();
    }
    // Adjacency set for O(1)-ish duplicate detection.
    let mut adj: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); g.node_count()];
    for &(u, v) in &edges {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    let attempts = swaps_per_edge * m;
    for _ in 0..attempts {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Random orientation of the second edge makes the chain reversible.
        let (c, d) = if rng.gen_bool(0.5) { (c, d) } else { (d, c) };
        // Proposed: (a, d), (c, b).
        if a == d || c == b {
            continue; // self-loop
        }
        if adj[a as usize].contains(&d) || adj[c as usize].contains(&b) {
            continue; // duplicate
        }
        adj[a as usize].remove(&b);
        adj[b as usize].remove(&a);
        adj[c as usize].remove(&d);
        adj[d as usize].remove(&c);
        adj[a as usize].insert(d);
        adj[d as usize].insert(a);
        adj[c as usize].insert(b);
        adj[b as usize].insert(c);
        edges[i] = (a, d);
        edges[j] = (c, b);
    }
    let mut out = MultiGraph::with_capacity(g.node_count());
    out.add_nodes(g.node_count());
    for (u, v) in edges {
        out.add_edge(NodeId::new(u as usize), NodeId::new(v as usize))
            .expect("swaps preserve validity");
    }
    out.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    fn random_graph(n: usize, p: f64, seed: u64) -> Csr {
        let mut rng = seeded_rng(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < p {
                    edges.push((i, j));
                }
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn degree_sequence_is_preserved() {
        let g = random_graph(60, 0.1, 1);
        let mut rng = seeded_rng(2);
        let r = rewire_degree_preserving(&g, 10, &mut rng);
        assert_eq!(g.degrees(), r.degrees());
        assert_eq!(g.edge_count(), r.edge_count());
        assert!(r.validate());
    }

    #[test]
    fn rewiring_actually_changes_edges() {
        let g = random_graph(60, 0.1, 3);
        let mut rng = seeded_rng(4);
        let r = rewire_degree_preserving(&g, 10, &mut rng);
        let orig: std::collections::HashSet<(usize, usize)> =
            g.edges().map(|(u, v, _)| (u, v)).collect();
        let new: std::collections::HashSet<(usize, usize)> =
            r.edges().map(|(u, v, _)| (u, v)).collect();
        let overlap = orig.intersection(&new).count();
        assert!(
            overlap < orig.len(),
            "no swap succeeded in {} attempts",
            10 * orig.len()
        );
    }

    #[test]
    fn no_self_loops_or_duplicates_created() {
        let g = random_graph(40, 0.15, 5);
        let mut rng = seeded_rng(6);
        let r = rewire_degree_preserving(&g, 20, &mut rng);
        // Csr::validate checks both symmetric storage and no self-loops;
        // duplicate edges would have collapsed and changed the edge count.
        assert!(r.validate());
        assert_eq!(r.edge_count(), g.edge_count());
    }

    #[test]
    fn tiny_graphs_pass_through() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let mut rng = seeded_rng(7);
        let r = rewire_degree_preserving(&g, 10, &mut rng);
        assert_eq!(r.edge_count(), 1);
        let empty = Csr::from_edges(0, &[]);
        let r = rewire_degree_preserving(&empty, 10, &mut rng);
        assert_eq!(r.node_count(), 0);
    }

    #[test]
    fn zero_swaps_returns_same_topology() {
        let g = random_graph(30, 0.2, 8);
        let mut rng = seeded_rng(9);
        let r = rewire_degree_preserving(&g, 0, &mut rng);
        let orig: Vec<(usize, usize)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let new: Vec<(usize, usize)> = r.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(orig, new);
    }
}
