//! Shortest-path-length statistics: distribution, mean, diameter,
//! efficiency.
//!
//! The "small world" check of the evaluation: the AS map's average shortest
//! path length sits around 3.6 hops at `N ≈ 11 000`. Exact all-pairs BFS is
//! `O(N·E)`; for big graphs a stride-sampled subset of sources estimates the
//! distribution with negligible bias on connected graphs.
//!
//! Traversals run through the fused engine in [`mod@crate::engine`]: one
//! work-stealing BFS sweep produces the histogram (and, when requested
//! through [`crate::engine::paths_and_betweenness`], betweenness in the same
//! pass). Results are bit-identical for any thread count.

use crate::engine;
use inet_graph::traversal::{bfs_distances_into, UNREACHABLE};
use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Shortest-path statistics over reachable pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStats {
    /// `counts[d]` = number of (ordered, sampled) reachable pairs at
    /// distance `d ≥ 1`.
    pub counts: Vec<u64>,
    /// Mean distance over reachable pairs.
    pub mean: f64,
    /// Largest observed distance (diameter when exact and connected).
    pub diameter: u32,
    /// Global efficiency: mean of `1/d` over sampled ordered pairs
    /// (unreachable pairs contribute 0).
    pub efficiency: f64,
    /// Number of BFS sources used.
    pub sources: usize,
    /// True when every node served as a source (exact statistics).
    pub exact: bool,
}

impl PathStats {
    /// Exact all-sources statistics (single-threaded).
    pub fn measure(g: &Csr) -> Self {
        Self::measure_parallel(g, 1)
    }

    /// Exact all-sources statistics with BFS fanned out over `threads`.
    pub fn measure_parallel(g: &Csr, threads: usize) -> Self {
        let sources: Vec<u32> = (0..g.node_count() as u32).collect();
        engine::paths_from_sources(g, &sources, true, threads)
    }

    /// Sampled statistics from `k` stride-spaced sources.
    pub fn measure_sampled(g: &Csr, k: usize, threads: usize) -> Self {
        let (sources, exact) = engine::path_source_set(g.node_count(), k);
        engine::paths_from_sources(g, &sources, exact, threads)
    }

    /// Finalizes statistics from a merged distance histogram (the fused
    /// engine's output). `counts[d]` holds reachable ordered pairs at
    /// distance `d`; the efficiency sum is reconstructed as
    /// `Σ_d counts[d]/d`, one division per distinct distance instead of one
    /// per pair.
    pub(crate) fn from_histogram(
        counts: Vec<u64>,
        unreachable_pairs: u64,
        sources: usize,
        exact: bool,
    ) -> Self {
        let reachable: u64 = counts.iter().sum();
        let mean = if reachable > 0 {
            counts
                .iter()
                .enumerate()
                .map(|(d, &c)| d as f64 * c as f64)
                .sum::<f64>()
                / reachable as f64
        } else {
            0.0
        };
        let diameter = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|d| d as u32)
            .unwrap_or(0);
        let inv_sum: f64 = counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(d, &c)| c as f64 * (1.0 / d as f64))
            .sum();
        let total_pairs = reachable + unreachable_pairs;
        let efficiency = if total_pairs > 0 {
            inv_sum / total_pairs as f64
        } else {
            0.0
        };
        PathStats {
            counts,
            mean,
            diameter,
            efficiency,
            sources,
            exact,
        }
    }

    /// The seed's two-pass sequential implementation (full per-node distance
    /// scan per source, separate from betweenness). Kept as the benchmark
    /// baseline and as the oracle for fused-equals-unfused tests.
    #[doc(hidden)]
    pub fn measure_sampled_unfused(g: &Csr, k: usize) -> Self {
        let n = g.node_count();
        if k >= n {
            let sources: Vec<usize> = (0..n).collect();
            return Self::from_sources_unfused(g, &sources, true);
        }
        let sources: Vec<usize> = (0..k.max(1)).map(|i| i * n / k.max(1)).collect();
        Self::from_sources_unfused(g, &sources, false)
    }

    fn from_sources_unfused(g: &Csr, sources: &[usize], exact: bool) -> Self {
        let n = g.node_count();
        if n == 0 || sources.is_empty() {
            return PathStats {
                counts: Vec::new(),
                mean: 0.0,
                diameter: 0,
                efficiency: 0.0,
                sources: 0,
                exact,
            };
        }
        let (counts, inv_sum, unreachable_pairs) = Self::scan(g, sources);
        let reachable: u64 = counts.iter().sum();
        let mean = if reachable > 0 {
            counts
                .iter()
                .enumerate()
                .map(|(d, &c)| d as f64 * c as f64)
                .sum::<f64>()
                / reachable as f64
        } else {
            0.0
        };
        let diameter = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|d| d as u32)
            .unwrap_or(0);
        let total_pairs = reachable + unreachable_pairs;
        let efficiency = if total_pairs > 0 {
            inv_sum / total_pairs as f64
        } else {
            0.0
        };
        PathStats {
            counts,
            mean,
            diameter,
            efficiency,
            sources: sources.len(),
            exact,
        }
    }

    /// BFS from each source; returns (distance histogram over ordered pairs
    /// excluding self, sum of 1/d, count of unreachable ordered pairs).
    fn scan(g: &Csr, sources: &[usize]) -> (Vec<u64>, f64, u64) {
        let mut counts: Vec<u64> = Vec::new();
        let mut inv = 0.0f64;
        let mut unreachable = 0u64;
        let mut dist = Vec::new();
        for &s in sources {
            bfs_distances_into(g, s, &mut dist);
            for (t, &d) in dist.iter().enumerate() {
                if t == s {
                    continue;
                }
                if d == UNREACHABLE {
                    unreachable += 1;
                } else {
                    let d = d as usize;
                    if d >= counts.len() {
                        counts.resize(d + 1, 0);
                    }
                    counts[d] += 1;
                    inv += 1.0 / d as f64;
                }
            }
        }
        (counts, inv, unreachable)
    }

    /// Normalized distribution `P(ℓ = d)` over reachable pairs.
    pub fn distribution(&self) -> Vec<(u32, f64)> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| (d as u32, c as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn path_graph_statistics() {
        let s = PathStats::measure(&path(4));
        // Ordered reachable pairs: distances 1 (6 pairs), 2 (4), 3 (2).
        assert_eq!(s.counts, vec![0, 6, 4, 2]);
        assert!((s.mean - (6.0 + 8.0 + 6.0) / 12.0).abs() < 1e-12);
        assert_eq!(s.diameter, 3);
        assert!(s.exact);
        assert_eq!(s.sources, 4);
    }

    #[test]
    fn complete_graph_all_distance_one() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let s = PathStats::measure(&Csr::from_edges(5, &edges));
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.diameter, 1);
        assert!((s.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_efficiency_penalized() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let s = PathStats::measure(&g);
        assert_eq!(s.counts, vec![0, 4]);
        assert_eq!(s.mean, 1.0);
        // 4 reachable ordered pairs at d=1, 8 unreachable: eff = 4/12.
        assert!((s.efficiency - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = path(30);
        let a = PathStats::measure(&g);
        let b = PathStats::measure_parallel(&g, 4);
        // The fused engine merges partials in fixed chunk order, so even the
        // float fields are bit-identical across thread counts.
        assert_eq!(a, b);
    }

    #[test]
    fn matches_seed_unfused_implementation() {
        let g = path(30);
        for k in [5, 17, 1000] {
            let fused = PathStats::measure_sampled(&g, k, 2);
            let seed = PathStats::measure_sampled_unfused(&g, k);
            assert_eq!(fused.counts, seed.counts, "k {k}");
            assert_eq!(fused.diameter, seed.diameter);
            assert_eq!(fused.sources, seed.sources);
            assert_eq!(fused.exact, seed.exact);
            assert!((fused.mean - seed.mean).abs() < 1e-12);
            assert!((fused.efficiency - seed.efficiency).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_on_vertex_transitive_graph_is_exact() {
        let n = 24;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Csr::from_edges(n, &edges);
        let exact = PathStats::measure(&g);
        let est = PathStats::measure_sampled(&g, 6, 2);
        assert!(!est.exact);
        assert!((exact.mean - est.mean).abs() < 1e-9);
        assert_eq!(exact.diameter, est.diameter);
    }

    #[test]
    fn distribution_normalizes() {
        let s = PathStats::measure(&path(5));
        let total: f64 = s.distribution().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let s = PathStats::measure(&Csr::from_edges(0, &[]));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.diameter, 0);
        assert!(s.distribution().is_empty());
    }

    #[test]
    fn single_node() {
        let s = PathStats::measure(&Csr::from_edges(1, &[]));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.diameter, 0);
    }
}
