//! Rich-club connectivity.
//!
//! `φ(k)` is the edge density among the nodes of degree greater than `k`:
//! `φ(k) = 2 E_{>k} / (N_{>k} (N_{>k} − 1))`. Because high-degree nodes have
//! more chances to interconnect even at random, the informative quantity is
//! the ratio `ρ(k) = φ(k) / φ_rand(k)` against a degree-preserving rewired
//! null model (Colizza et al. 2006). The AS map exhibits a rich club:
//! `ρ(k) > 1` at high degrees.

use crate::randomize::rewire_degree_preserving;
use inet_exec::Executor;
use inet_graph::Csr;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rich-club spectrum of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RichClub {
    /// Degree thresholds `k` (ascending, one per distinct degree below the
    /// maximum).
    pub k: Vec<u64>,
    /// `φ(k)` for each threshold; `NaN`-free: thresholds with fewer than 2
    /// qualifying nodes are omitted.
    pub phi: Vec<f64>,
}

impl RichClub {
    /// Computes `φ(k)` for every distinct degree value present.
    pub fn measure(g: &Csr) -> Self {
        Self::measure_threaded(g, 1)
    }

    /// [`RichClub::measure`] with the per-edge minimum-degree gather fanned
    /// out over `threads` workers. The gathered list is sorted before use,
    /// so the spectrum is identical for any thread count.
    pub fn measure_threaded(g: &Csr, threads: usize) -> Self {
        let n = g.node_count();
        let degrees: Vec<u64> = (0..n).map(|v| g.degree(v) as u64).collect();
        // Sorted degree list for N_{>k} via binary search.
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        // Edge "min endpoint degree" list for E_{>k}; each edge gathered by
        // its smaller endpoint.
        let segments = Executor::new(threads).map_ordered(
            n,
            || (),
            |(), range| {
                let mut seg: Vec<u64> = Vec::new();
                for u in range {
                    for &v in g.neighbors(u) {
                        let v = v as usize;
                        if v > u {
                            seg.push(degrees[u].min(degrees[v]));
                        }
                    }
                }
                seg
            },
        );
        let mut edge_min: Vec<u64> = Vec::with_capacity(g.edge_count());
        for seg in segments {
            edge_min.extend(seg);
        }
        edge_min.sort_unstable();

        let mut distinct = sorted.clone();
        distinct.dedup();
        let mut ks = Vec::new();
        let mut phis = Vec::new();
        for &k in &distinct {
            let n_gt = sorted.len() - sorted.partition_point(|&d| d <= k);
            if n_gt < 2 {
                continue;
            }
            let e_gt = edge_min.len() - edge_min.partition_point(|&d| d <= k);
            ks.push(k);
            phis.push(2.0 * e_gt as f64 / (n_gt as f64 * (n_gt as f64 - 1.0)));
        }
        RichClub { k: ks, phi: phis }
    }

    /// Normalized rich-club ratio `ρ(k) = φ(k) / φ_rand(k)` against the
    /// average of `rewired_samples` degree-preserving rewirings (each using
    /// `swaps_per_edge` attempted double-edge swaps per edge).
    ///
    /// Thresholds where the null model has `φ_rand = 0` are omitted.
    pub fn normalized<R: Rng>(
        g: &Csr,
        rewired_samples: usize,
        swaps_per_edge: usize,
        rng: &mut R,
    ) -> Self {
        Self::normalized_threaded(g, rewired_samples, swaps_per_edge, rng, 1)
    }

    /// [`RichClub::normalized`] with each spectrum measured via
    /// [`RichClub::measure_threaded`]. The rewiring RNG stream is untouched
    /// by the thread count, so results match the sequential call exactly.
    pub fn normalized_threaded<R: Rng>(
        g: &Csr,
        rewired_samples: usize,
        swaps_per_edge: usize,
        rng: &mut R,
        threads: usize,
    ) -> Self {
        let observed = Self::measure_threaded(g, threads);
        if rewired_samples == 0 {
            return observed;
        }
        // Accumulate null-model phi on the same thresholds.
        let mut null_phi = vec![0.0f64; observed.k.len()];
        let mut null_cnt = vec![0usize; observed.k.len()];
        for _ in 0..rewired_samples {
            let rewired = rewire_degree_preserving(g, swaps_per_edge, rng);
            let null = Self::measure_threaded(&rewired, threads);
            for (i, &k) in observed.k.iter().enumerate() {
                if let Some(j) = null.k.iter().position(|&nk| nk == k) {
                    null_phi[i] += null.phi[j];
                    null_cnt[i] += 1;
                }
            }
        }
        let mut ks = Vec::new();
        let mut rho = Vec::new();
        for (i, &k) in observed.k.iter().enumerate() {
            if null_cnt[i] > 0 {
                let mean_null = null_phi[i] / null_cnt[i] as f64;
                if mean_null > 0.0 {
                    ks.push(k);
                    rho.push(observed.phi[i] / mean_null);
                }
            }
        }
        RichClub { k: ks, phi: rho }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_has_full_rich_club() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let rc = RichClub::measure(&Csr::from_edges(5, &edges));
        // All degrees are 4; only k values with >= 2 nodes above: none
        // (no node has degree > 4)... distinct = [4], n_gt(4) = 0 -> empty.
        assert!(rc.k.is_empty());
    }

    #[test]
    fn star_with_core() {
        // Two hubs connected to each other and to 4 leaves each.
        let mut edges = vec![(0, 1)];
        for i in 2..6 {
            edges.push((0, i));
        }
        for i in 6..10 {
            edges.push((1, i));
        }
        let g = Csr::from_edges(10, &edges);
        let rc = RichClub::measure(&g);
        // k = 1: nodes of degree > 1 are the two hubs; the hub-hub edge
        // exists -> phi = 1.
        assert_eq!(rc.k[0], 1);
        assert!((rc.phi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_is_monotone_for_nested_clubs_on_path() {
        // Path: degrees 1 and 2; k=1 club = interior nodes.
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let rc = RichClub::measure(&g);
        assert_eq!(rc.k, vec![1]);
        // Interior nodes: 1,2,3; edges among them: (1,2),(2,3) -> phi = 4/6.
        assert!((rc.phi[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_close_to_one_for_er_like_graph() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(3);
        let n = 200;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.04 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let rho = RichClub::normalized(&g, 3, 5, &mut rng);
        // ER graphs have no rich club: rho ~ 1 at low/mid k.
        let mid: Vec<f64> = rho
            .k
            .iter()
            .zip(&rho.phi)
            .filter(|(&k, _)| k <= 10)
            .map(|(_, &r)| r)
            .collect();
        assert!(!mid.is_empty());
        for r in mid {
            assert!((r - 1.0).abs() < 0.35, "rho = {r}");
        }
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(23);
        let n = 120;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.05 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let serial = RichClub::measure(&g);
        for threads in [2, 7] {
            assert_eq!(serial, RichClub::measure_threaded(&g, threads));
        }
    }

    #[test]
    fn empty_graph() {
        let rc = RichClub::measure(&Csr::from_edges(0, &[]));
        assert!(rc.k.is_empty());
    }
}
