//! Additional centrality indices: closeness, harmonic, eigenvector.
//!
//! Betweenness (the figure-critical one) lives in [`mod@crate::betweenness`];
//! these complete the standard battery used when profiling which ASs hold
//! the network together.

use inet_graph::traversal::{bfs_distances_into, UNREACHABLE};
use inet_graph::Csr;

/// Closeness centrality: `(n_v − 1) / Σ_t d(v, t)`, where the sum runs over
/// the `n_v` nodes reachable from `v` (Wasserman–Faust component-aware
/// variant: scaled by `(n_v − 1)/(N − 1)` so small components don't get
/// inflated scores). Isolated nodes score 0.
pub fn closeness(g: &Csr) -> Vec<f64> {
    closeness_threaded(g, 1)
}

/// [`closeness`] with BFS sources fanned out over `threads` worker threads
/// (bit-identical results for any thread count).
pub fn closeness_threaded(g: &Csr, threads: usize) -> Vec<f64> {
    crate::engine::closeness_values(g, threads)
}

/// Harmonic centrality: `Σ_{t≠v} 1/d(v, t)` (unreachable terms contribute
/// 0) — well-defined on disconnected graphs without any correction.
pub fn harmonic(g: &Csr) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0f64; n];
    let mut dist = Vec::new();
    for (v, slot) in out.iter_mut().enumerate() {
        bfs_distances_into(g, v, &mut dist);
        *slot = dist
            .iter()
            .enumerate()
            .filter(|&(t, &d)| t != v && d != UNREACHABLE)
            .map(|(_, &d)| 1.0 / d as f64)
            .sum();
    }
    out
}

/// Eigenvector centrality by power iteration on the (weighted) adjacency
/// matrix, normalized to unit maximum. Iterates on `A + I` (same
/// eigenvectors, spectrum shifted positive) so bipartite graphs — whose
/// dominant eigenvalue pair `±λ` would make plain power iteration
/// oscillate forever — converge too. Returns `None` when the graph has no
/// edges or the iteration fails to converge within `max_iters`.
pub fn eigenvector(g: &Csr, max_iters: usize, tolerance: f64) -> Option<Vec<f64>> {
    let n = g.node_count();
    if n == 0 || g.edge_count() == 0 {
        return None;
    }
    let mut x = vec![1.0f64 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        for (slot, &prev) in next.iter_mut().zip(x.iter()) {
            *slot = prev; // the +I shift
        }
        for (v, &xv) in x.iter().enumerate() {
            for (&u, &w) in g.neighbors(v).iter().zip(g.neighbor_weights(v)) {
                next[u as usize] += w as f64 * xv;
            }
        }
        let norm = next.iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm <= 0.0 {
            return None;
        }
        let mut delta = 0.0f64;
        for (a, b) in next.iter_mut().zip(x.iter()) {
            *a /= norm;
            delta = delta.max((*a - *b).abs());
        }
        std::mem::swap(&mut x, &mut next);
        if delta < tolerance {
            let max = x.iter().copied().fold(0.0f64, f64::max);
            if max > 0.0 {
                for a in &mut x {
                    *a /= max;
                }
            }
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Csr {
        Csr::from_edges(n, &(1..n).map(|i| (0, i)).collect::<Vec<_>>())
    }

    #[test]
    fn closeness_star_center_is_highest() {
        let g = star(6);
        let c = closeness(&g);
        // Center: 5 nodes at distance 1 -> 5/5 = 1. Leaves: 1 + 4*2 = 9 ->
        // 5/9.
        assert!((c[0] - 1.0).abs() < 1e-12);
        for &leaf in &c[1..] {
            assert!((leaf - 5.0 / 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn closeness_penalizes_small_components() {
        // A connected pair inside a 4-node graph: frac = 1/3.
        let g = Csr::from_edges(4, &[(0, 1)]);
        let c = closeness(&g);
        assert!((c[0] - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn closeness_threaded_is_bit_identical() {
        let g = star(40);
        let serial = closeness(&g);
        for threads in [2, 5] {
            let par = closeness_threaded(&g, threads);
            let a: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn harmonic_on_path() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let h = harmonic(&g);
        assert!((h[0] - 1.5).abs() < 1e-12);
        assert!((h[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_handles_disconnection() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let h = harmonic(&g);
        assert!(h.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn eigenvector_star_center_dominates() {
        let g = star(8);
        let e = eigenvector(&g, 500, 1e-10).expect("converges");
        assert!((e[0] - 1.0).abs() < 1e-9, "center must be the max");
        for &leaf in &e[1..] {
            assert!(leaf < 1.0 && leaf > 0.0);
            assert!((leaf - e[1]).abs() < 1e-9, "leaves are symmetric");
        }
    }

    #[test]
    fn eigenvector_respects_weights() {
        // Triangle with one heavy edge: its endpoints outrank the third.
        let mut g = inet_graph::MultiGraph::new();
        g.add_nodes(3);
        let n = inet_graph::NodeId::new;
        g.add_edge_weighted(n(0), n(1), 10).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        let e = eigenvector(&g.to_csr(), 1000, 1e-12).expect("converges");
        assert!(
            e[0] > e[2] && e[1] > e[2],
            "heavy pair must dominate: {e:?}"
        );
    }

    #[test]
    fn eigenvector_degenerate_inputs() {
        assert!(eigenvector(&Csr::from_edges(0, &[]), 100, 1e-9).is_none());
        assert!(eigenvector(&Csr::from_edges(3, &[]), 100, 1e-9).is_none());
    }

    #[test]
    fn centralities_agree_on_ranking_for_core_periphery() {
        use rand::Rng;
        // Hub-and-spoke with some periphery links: all three indices should
        // rank the hub first.
        let mut rng = inet_stats::rng::seeded_rng(17);
        let mut edges: Vec<(usize, usize)> = (1..30).map(|i| (0, i)).collect();
        for _ in 0..20 {
            let u = rng.gen_range(1..30);
            let v = rng.gen_range(1..30);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = Csr::from_edges(30, &edges);
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        assert_eq!(argmax(&closeness(&g)), 0);
        assert_eq!(argmax(&harmonic(&g)), 0);
        assert_eq!(argmax(&eigenvector(&g, 1000, 1e-10).expect("converges")), 0);
    }
}
