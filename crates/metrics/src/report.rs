//! One-call aggregate report of the headline topology scalars.

use crate::clustering::ClusteringStats;
use crate::degree::DegreeStats;
use crate::engine::paths_and_betweenness;
use crate::kcore::KCoreDecomposition;
use crate::knn::KnnStats;
use inet_graph::traversal::giant_fraction;
use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Aggregated headline measures of a topology — the row a comparison table
/// prints per network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyReport {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// Mean degree `⟨k⟩`.
    pub mean_degree: f64,
    /// Largest degree.
    pub max_degree: u64,
    /// Power-law tail exponent `γ` from the CSN automatic fit (`None` when
    /// unfittable).
    pub gamma: Option<f64>,
    /// Mean local clustering (degree ≥ 2 nodes).
    pub mean_clustering: f64,
    /// Global transitivity.
    pub transitivity: f64,
    /// Newman assortativity coefficient.
    pub assortativity: f64,
    /// Mean shortest path length (sampled for big graphs).
    pub mean_path_length: f64,
    /// Largest sampled shortest-path distance.
    pub diameter: u32,
    /// Maximum core number.
    pub coreness: u32,
    /// Fraction of nodes in the giant component.
    pub giant_fraction: f64,
    /// Total number of triangles.
    pub triangles: u64,
    /// Maximum betweenness value (sampled estimate).
    pub max_betweenness: f64,
}

/// Sampling effort for [`TopologyReport::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportOptions {
    /// BFS sources used for path statistics (exact if ≥ node count).
    pub path_sources: usize,
    /// Sources for the betweenness estimate (exact if ≥ node count).
    pub betweenness_sources: usize,
    /// Worker threads for the parallelized measures. The default is the
    /// machine's available parallelism (clamped to at least 1), not a
    /// hardcoded constant; results are bit-identical for any value.
    pub threads: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            path_sources: 400,
            betweenness_sources: 200,
            threads: inet_graph::parallel::default_threads(),
        }
    }
}

impl TopologyReport {
    /// Measures everything with default sampling effort.
    pub fn measure(g: &Csr) -> Self {
        Self::measure_with(g, ReportOptions::default())
    }

    /// Measures everything with explicit effort options.
    ///
    /// Path statistics and betweenness come from **one** fused BFS sweep
    /// over the union of the two source sets
    /// ([`crate::engine::paths_and_betweenness`]); clustering and degree
    /// correlations fan out over the same work-stealing pool.
    pub fn measure_with(g: &Csr, opt: ReportOptions) -> Self {
        let degree = DegreeStats::measure(g);
        let clustering = ClusteringStats::measure_threaded(g, opt.threads);
        let knn = KnnStats::measure_threaded(g, opt.threads);
        let kcore = KCoreDecomposition::measure(g);
        let fused =
            paths_and_betweenness(g, opt.path_sources, opt.betweenness_sources, opt.threads);
        let (paths, bc) = (fused.paths, fused.betweenness);
        TopologyReport {
            nodes: g.node_count(),
            edges: g.edge_count(),
            mean_degree: degree.mean,
            max_degree: degree.max,
            gamma: degree.powerlaw_fit().map(|f| f.gamma),
            mean_clustering: clustering.mean_local,
            transitivity: clustering.transitivity,
            assortativity: knn.assortativity,
            mean_path_length: paths.mean,
            diameter: paths.diameter,
            coreness: kcore.coreness(),
            giant_fraction: giant_fraction(g),
            triangles: clustering.triangle_count,
            max_betweenness: bc.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Renders the report as aligned `name: value` lines.
    pub fn render(&self) -> String {
        let gamma = self
            .gamma
            .map(|g| format!("{g:.2}"))
            .unwrap_or_else(|| "n/a".to_string());
        format!(
            "nodes            : {}\n\
             edges            : {}\n\
             mean degree      : {:.3}\n\
             max degree       : {}\n\
             gamma (P(k) tail): {}\n\
             mean clustering  : {:.4}\n\
             transitivity     : {:.4}\n\
             assortativity    : {:+.4}\n\
             mean path length : {:.3}\n\
             diameter (est)   : {}\n\
             coreness         : {}\n\
             giant fraction   : {:.4}\n\
             triangles        : {}\n\
             max betweenness  : {:.1}",
            self.nodes,
            self.edges,
            self.mean_degree,
            self.max_degree,
            gamma,
            self.mean_clustering,
            self.transitivity,
            self.assortativity,
            self.mean_path_length,
            self.diameter,
            self.coreness,
            self.giant_fraction,
            self.triangles,
            self.max_betweenness,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn er_graph(n: usize, p: f64, seed: u64) -> Csr {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < p {
                    edges.push((i, j));
                }
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn report_on_er_graph_is_sane() {
        let g = er_graph(300, 0.03, 1);
        let r = TopologyReport::measure(&g);
        assert_eq!(r.nodes, 300);
        assert!(r.edges > 0);
        assert!((r.mean_degree - 2.0 * r.edges as f64 / 300.0).abs() < 1e-12);
        assert!(r.mean_clustering >= 0.0 && r.mean_clustering <= 1.0);
        assert!(r.mean_path_length > 1.0);
        assert!(r.coreness >= 1);
        assert!(r.giant_fraction > 0.5);
        assert!(r.max_betweenness > 0.0);
    }

    #[test]
    fn exact_options_on_small_graph() {
        let g = er_graph(40, 0.15, 2);
        let exact = TopologyReport::measure_with(
            &g,
            ReportOptions {
                path_sources: 1000,
                betweenness_sources: 1000,
                threads: 1,
            },
        );
        let threaded = TopologyReport::measure_with(
            &g,
            ReportOptions {
                path_sources: 1000,
                betweenness_sources: 1000,
                threads: 4,
            },
        );
        // All discrete fields must be identical; float accumulations may
        // differ in the last bits with a different thread split.
        assert_eq!(exact.nodes, threaded.nodes);
        assert_eq!(exact.edges, threaded.edges);
        assert_eq!(exact.max_degree, threaded.max_degree);
        assert_eq!(exact.diameter, threaded.diameter);
        assert_eq!(exact.coreness, threaded.coreness);
        assert_eq!(exact.triangles, threaded.triangles);
        assert!((exact.mean_path_length - threaded.mean_path_length).abs() < 1e-9);
        assert!((exact.max_betweenness - threaded.max_betweenness).abs() < 1e-9);
    }

    #[test]
    fn fused_report_matches_seed_two_pass() {
        // Acceptance check: the single fused sweep behind measure_with must
        // reproduce the seed's two independent passes (paths, then Brandes).
        let g = er_graph(120, 0.05, 7);
        let opt = ReportOptions {
            path_sources: 24,
            betweenness_sources: 12,
            threads: 3,
        };
        let r = TopologyReport::measure_with(&g, opt);
        let paths = crate::paths::PathStats::measure_sampled_unfused(&g, opt.path_sources);
        let bc = crate::betweenness::betweenness_sampled_unfused(&g, opt.betweenness_sources);
        assert!((r.mean_path_length - paths.mean).abs() < 1e-12);
        assert_eq!(r.diameter, paths.diameter);
        let max_bc = bc.iter().copied().fold(0.0, f64::max);
        assert!((r.max_betweenness - max_bc).abs() < 1e-9);
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let g = er_graph(150, 0.04, 4);
        let base = TopologyReport::measure_with(
            &g,
            ReportOptions {
                path_sources: 30,
                betweenness_sources: 15,
                threads: 1,
            },
        );
        for threads in [2, 7] {
            let other = TopologyReport::measure_with(
                &g,
                ReportOptions {
                    path_sources: 30,
                    betweenness_sources: 15,
                    threads,
                },
            );
            assert_eq!(base, other, "threads {threads}");
        }
    }

    #[test]
    fn default_threads_tracks_available_parallelism() {
        let opt = ReportOptions::default();
        assert!(opt.threads >= 1);
        assert_eq!(opt.threads, inet_graph::parallel::default_threads());
    }

    #[test]
    fn render_contains_all_fields() {
        let g = er_graph(50, 0.1, 3);
        let text = TopologyReport::measure(&g).render();
        for needle in [
            "nodes",
            "edges",
            "mean degree",
            "gamma",
            "clustering",
            "assortativity",
            "path length",
            "coreness",
            "giant fraction",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_graph_report() {
        let r = TopologyReport::measure(&Csr::from_edges(0, &[]));
        assert_eq!(r.nodes, 0);
        assert_eq!(r.edges, 0);
        assert_eq!(r.gamma, None);
        assert!(r.render().contains("n/a"));
    }

    /// Every float field of a report — all measures have divide-by-count
    /// denominators somewhere.
    fn float_fields(r: &TopologyReport) -> [(&'static str, f64); 7] {
        [
            ("mean_degree", r.mean_degree),
            ("mean_clustering", r.mean_clustering),
            ("transitivity", r.transitivity),
            ("assortativity", r.assortativity),
            ("mean_path_length", r.mean_path_length),
            ("giant_fraction", r.giant_fraction),
            ("max_betweenness", r.max_betweenness),
        ]
    }

    #[test]
    fn empty_graph_report_is_zero_not_nan() {
        // Regression: the percolation engine hands `measure` exactly these
        // degenerate graphs. Every float must be finite (no 0/0), and the
        // natural zeros must actually be zero.
        let r = TopologyReport::measure(&Csr::from_edges(0, &[]));
        for (name, v) in float_fields(&r) {
            assert!(v.is_finite(), "{name} = {v} on the empty graph");
        }
        assert_eq!(r.mean_degree, 0.0);
        assert_eq!(r.mean_path_length, 0.0);
        assert_eq!(r.max_betweenness, 0.0);
        assert_eq!(r.diameter, 0);
        assert_eq!(r.coreness, 0);
        assert!(!r.render().contains("NaN"));
    }

    #[test]
    fn fully_disconnected_graph_report_is_zero_not_nan() {
        // 40 isolated nodes: no edges, no paths, no triangles, no core.
        let r = TopologyReport::measure(&Csr::from_edges(40, &[]));
        assert_eq!(r.nodes, 40);
        assert_eq!(r.edges, 0);
        for (name, v) in float_fields(&r) {
            assert!(v.is_finite(), "{name} = {v} on the edgeless graph");
        }
        assert_eq!(r.mean_degree, 0.0);
        assert_eq!(r.mean_clustering, 0.0);
        assert_eq!(r.transitivity, 0.0);
        assert_eq!(r.mean_path_length, 0.0);
        assert_eq!(r.triangles, 0);
        assert_eq!(r.gamma, None);
        assert!(!r.render().contains("NaN"));
    }

    #[test]
    fn disconnected_components_report_stays_finite() {
        // Two components + isolated nodes, measured WITHOUT extracting the
        // giant first — unreachable BFS targets must not poison the means.
        let g = Csr::from_edges(12, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7)]);
        for threads in [1, 3] {
            let r = TopologyReport::measure_with(
                &g,
                ReportOptions {
                    path_sources: 100,
                    betweenness_sources: 100,
                    threads,
                },
            );
            for (name, v) in float_fields(&r) {
                assert!(v.is_finite(), "{name} = {v} on the disconnected graph");
            }
            assert!(r.mean_path_length >= 1.0, "paths exist within components");
            assert!((r.giant_fraction - 4.0 / 12.0).abs() < 1e-12);
            assert!(!r.render().contains("NaN"));
        }
    }
}
