//! Triangles and clustering coefficients.
//!
//! The clustering spectrum `c(k)` — mean local clustering of degree-`k`
//! nodes — is one of the discriminating observables for Internet models: the
//! AS map shows high clustering with a decaying, roughly power-law `c(k)`,
//! the signature of degree hierarchy.

use inet_exec::Executor;
use inet_graph::Csr;
use inet_stats::binned::{binned_mean_by_int, BinnedSpectrum};
use serde::{Deserialize, Serialize};

/// Triangle and clustering statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Number of triangles through each node.
    pub triangles: Vec<u64>,
    /// Local clustering coefficient of each node (0 for degree < 2).
    pub local: Vec<f64>,
    /// Total number of distinct triangles in the graph.
    pub triangle_count: u64,
    /// Average of the local coefficients over nodes with degree ≥ 2.
    pub mean_local: f64,
    /// Global transitivity: `3 × triangles / paths of length 2`.
    pub transitivity: f64,
}

impl ClusteringStats {
    /// Counts triangles with the forward (degree-ordered) algorithm and
    /// derives the clustering coefficients.
    pub fn measure(g: &Csr) -> Self {
        Self::measure_threaded(g, 1)
    }

    /// [`ClusteringStats::measure`] with the triangle pass fanned out over
    /// `threads` work-stealing workers (node ranges). Triangle counts are
    /// integers, so the merged result is identical for any thread count.
    ///
    /// Edges are oriented from lower to higher degree rank, so each
    /// triangle `r < s < t` is discovered exactly once by intersecting the
    /// out-lists of `r` and `s`. Hubs end up with tiny out-lists, which
    /// turns the seed's `O(Σ_v d_v²)` edge-merge — dominated by hub rows on
    /// heavy-tailed graphs — into roughly `O(E^{3/2})` with small
    /// constants. The per-node counts are identical integers, so every
    /// derived coefficient matches the seed bit-for-bit.
    pub fn measure_threaded(g: &Csr, threads: usize) -> Self {
        let n = g.node_count();
        // rank r of node v: position in (degree asc, id asc) order. The
        // oriented adjacency lives entirely in rank space.
        let mut by_rank: Vec<u32> = (0..n as u32).collect();
        by_rank.sort_by_key(|&v| (g.degree(v as usize), v));
        let mut rank_of = vec![0u32; n];
        for (r, &v) in by_rank.iter().enumerate() {
            rank_of[v as usize] = r as u32;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            let rv = rank_of[v];
            offsets[rv as usize + 1] = g
                .neighbors(v)
                .iter()
                .filter(|&&u| rank_of[u as usize] > rv)
                .count();
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut out = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for v in 0..n {
            let rv = rank_of[v] as usize;
            for &u in g.neighbors(v) {
                let ru = rank_of[u as usize];
                if ru as usize > rv {
                    out[cursor[rv]] = ru;
                    cursor[rv] += 1;
                }
            }
            out[offsets[rv]..cursor[rv]].sort_unstable();
        }
        let out = &out[..];
        let offsets = &offsets[..];

        // Every corner of a found triangle can be any rank, so each chunk
        // accumulates into a full-length partial, merged after the fan-out.
        let partials = Executor::new(threads).map_ordered(
            n,
            || (),
            |(), range| {
                let mut tri = vec![0u64; n];
                for r in range {
                    let a = &out[offsets[r]..offsets[r + 1]];
                    for (ai, &s) in a.iter().enumerate() {
                        let b = &out[offsets[s as usize]..offsets[s as usize + 1]];
                        // Common out-neighbors t satisfy t > s, so skip the
                        // prefix of `a` up to and including s.
                        let (mut i, mut j) = (ai + 1, 0usize);
                        while i < a.len() && j < b.len() {
                            match a[i].cmp(&b[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    tri[r] += 1;
                                    tri[s as usize] += 1;
                                    tri[a[i] as usize] += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                tri
            },
        );
        let mut tri_rank = vec![0u64; n];
        for part in partials {
            for (slot, t) in tri_rank.iter_mut().zip(part) {
                *slot += t;
            }
        }
        let triangles: Vec<u64> = (0..n).map(|v| tri_rank[rank_of[v] as usize]).collect();
        let triangle_count: u64 = triangles.iter().sum::<u64>() / 3;
        Self::derive(g, triangles, triangle_count)
    }

    /// Derives the coefficient fields from per-node triangle counts.
    fn derive(g: &Csr, triangles: Vec<u64>, triangle_count: u64) -> Self {
        let n = g.node_count();
        let mut local = vec![0.0f64; n];
        let mut sum_local = 0.0;
        let mut n_eligible = 0usize;
        let mut paths2: u64 = 0;
        for v in 0..n {
            let d = g.degree(v) as u64;
            paths2 += d * d.saturating_sub(1) / 2;
            if d >= 2 {
                local[v] = 2.0 * triangles[v] as f64 / (d * (d - 1)) as f64;
                sum_local += local[v];
                n_eligible += 1;
            }
        }
        let mean_local = if n_eligible > 0 {
            sum_local / n_eligible as f64
        } else {
            0.0
        };
        let transitivity = if paths2 > 0 {
            3.0 * triangle_count as f64 / paths2 as f64
        } else {
            0.0
        };
        ClusteringStats {
            triangles,
            local,
            triangle_count,
            mean_local,
            transitivity,
        }
    }

    /// The seed's sequential edge-iterator merge algorithm
    /// (`O(Σ_(u,v)∈E (d_u + d_v))` on sorted CSR rows). Kept as the
    /// benchmark baseline and as the oracle for forward-equals-seed tests.
    #[doc(hidden)]
    pub fn measure_unfused(g: &Csr) -> Self {
        let n = g.node_count();
        let mut triangles = vec![0u64; n];
        for u in 0..n {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if v <= u {
                    continue;
                }
                // For every edge (u, v) with u < v, every common neighbor x
                // closes one triangle {u, v, x}; crediting only x makes each
                // triangle credit each of its corners exactly once (via its
                // opposite edge).
                let (a, b) = (g.neighbors(u), g.neighbors(v));
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            triangles[a[i] as usize] += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        let triangle_count: u64 = triangles.iter().sum::<u64>() / 3;
        Self::derive(g, triangles, triangle_count)
    }

    /// Clustering spectrum `c(k)`: mean local clustering per exact degree
    /// value, for `k ≥ 2`.
    pub fn spectrum(&self, g: &Csr) -> BinnedSpectrum {
        let (ks, cs): (Vec<u64>, Vec<f64>) = (0..g.node_count())
            .filter(|&v| g.degree(v) >= 2)
            .map(|v| (g.degree(v) as u64, self.local[v]))
            .unzip();
        binned_mean_by_int(&ks, &cs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let c = ClusteringStats::measure(&g);
        assert_eq!(c.triangle_count, 1);
        assert_eq!(c.triangles, vec![1, 1, 1]);
        assert_eq!(c.local, vec![1.0, 1.0, 1.0]);
        assert!((c.mean_local - 1.0).abs() < 1e-12);
        assert!((c.transitivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = ClusteringStats::measure(&g);
        assert_eq!(c.triangle_count, 0);
        assert!(c.local.iter().all(|&x| x == 0.0));
        assert_eq!(c.transitivity, 0.0);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let c = ClusteringStats::measure(&Csr::from_edges(5, &edges));
        assert_eq!(c.triangle_count, 10); // C(5,3)
        assert!(c.triangles.iter().all(|&t| t == 6)); // C(4,2)
        assert!((c.mean_local - 1.0).abs() < 1e-12);
        assert!((c.transitivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_with_tail_mixes_values() {
        // Triangle 0-1-2 plus tail 2-3.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let c = ClusteringStats::measure(&g);
        assert_eq!(c.triangle_count, 1);
        assert_eq!(c.local[0], 1.0);
        assert_eq!(c.local[1], 1.0);
        assert!((c.local[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            c.local[3], 0.0,
            "degree-1 node has clustering 0 by convention"
        );
        // mean over eligible (deg >= 2) nodes: (1 + 1 + 1/3)/3.
        assert!((c.mean_local - (7.0 / 3.0) / 3.0).abs() < 1e-12);
        // transitivity: 3*1 / (1 + 1 + 3 + 0) = 3/5.
        assert!((c.transitivity - 0.6).abs() < 1e-12);
    }

    #[test]
    fn spectrum_groups_by_degree() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let c = ClusteringStats::measure(&g);
        let s = c.spectrum(&g);
        assert_eq!(s.x, vec![2.0, 3.0]);
        assert_eq!(s.y[0], 1.0);
        assert!((s.y[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_node() {
        let c = ClusteringStats::measure(&Csr::from_edges(0, &[]));
        assert_eq!(c.triangle_count, 0);
        assert_eq!(c.mean_local, 0.0);
        let c = ClusteringStats::measure(&Csr::from_edges(1, &[]));
        assert_eq!(c.local, vec![0.0]);
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(31);
        let n = 80;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.1 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let serial = ClusteringStats::measure(&g);
        for threads in [2, 5] {
            assert_eq!(serial, ClusteringStats::measure_threaded(&g, threads));
        }
    }

    #[test]
    fn forward_matches_seed_edge_merge_exactly() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(41);
        for (n, p) in [(60, 0.08), (40, 0.2), (25, 0.5)] {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_range(0.0..1.0) < p {
                        edges.push((i, j));
                    }
                }
            }
            let g = Csr::from_edges(n, &edges);
            // Integer triangle counts, so full struct equality — not just
            // approximate coefficients.
            assert_eq!(
                ClusteringStats::measure(&g),
                ClusteringStats::measure_unfused(&g)
            );
        }
    }

    /// Brute-force cross-check on a random graph.
    #[test]
    fn matches_brute_force_enumeration() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(77);
        let n = 30;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.2 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let c = ClusteringStats::measure(&g);
        let mut brute = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    if g.has_edge(i, j) && g.has_edge(j, k) && g.has_edge(i, k) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(c.triangle_count, brute);
    }
}
