//! Betweenness centrality (Freeman) via Brandes' algorithm.
//!
//! `b(v) = Σ_{s≠t≠v} σ_st(v) / σ_st`, where `σ_st` counts shortest paths.
//! Exact computation runs one BFS + dependency accumulation per source
//! (`O(N·E)` total); for large graphs a uniformly sampled subset of sources
//! gives an unbiased estimate scaled by `N / |sources|`.
//!
//! The traversals run through the fused engine in [`mod@crate::engine`]:
//! hub-first relabeled, work-stealing fan-out, merged in fixed chunk order
//! so the result is bit-identical for any thread count.
//! When paths and betweenness are both wanted, use
//! [`crate::engine::paths_and_betweenness`] to get both from one sweep.

use crate::engine;
use inet_graph::Csr;

/// Exact betweenness centrality of every node (unnormalized pair counts;
/// each unordered pair `{s, t}` contributes a total of 1 across the interior
/// vertices of its shortest paths).
pub fn betweenness(g: &Csr) -> Vec<f64> {
    betweenness_parallel(g, 1)
}

/// Exact betweenness with BFS sources distributed over `threads` threads.
pub fn betweenness_parallel(g: &Csr, threads: usize) -> Vec<f64> {
    let sources: Vec<u32> = (0..g.node_count() as u32).collect();
    // Brandes on an undirected graph counts each pair in both directions.
    engine::betweenness_from_sources(g, &sources, 0.5, threads)
}

/// Estimated betweenness from `k` uniformly spaced sources, scaled to the
/// full-graph value. With `k >= node_count` this equals [`betweenness`].
pub fn betweenness_sampled(g: &Csr, k: usize, threads: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 || k == 0 {
        return vec![0.0; n];
    }
    // Deterministic uniform spread of sources (stride sampling): unbiased
    // for exchangeable node labelings and reproducible without an RNG.
    let (sources, scale) = engine::betweenness_source_set(n, k);
    engine::betweenness_from_sources(g, &sources, scale, threads)
}

/// The seed's sequential implementation with per-node `Vec<Vec<u32>>`
/// predecessor lists and full `O(n)` workspace resets. Kept as the benchmark
/// baseline and as the oracle for fused-equals-unfused tests.
#[doc(hidden)]
pub fn betweenness_sampled_unfused(g: &Csr, k: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 || k == 0 {
        return vec![0.0; n];
    }
    let (sources, scale) = if k >= n {
        ((0..n).collect::<Vec<usize>>(), 0.5)
    } else {
        let sources: Vec<usize> = (0..k).map(|i| i * n / k).collect();
        let scale = n as f64 / sources.len() as f64 / 2.0;
        (sources, scale)
    };
    let mut bc = vec![0.0f64; n];
    let mut ws = Workspace::new(n);
    for &s in &sources {
        brandes_source(g, s, &mut bc, &mut ws);
    }
    for b in &mut bc {
        *b *= scale;
    }
    bc
}

/// Reusable buffers for one seed-style Brandes source iteration.
struct Workspace {
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    stack: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
    preds: Vec<Vec<u32>>,
}

impl Workspace {
    fn new(n: usize) -> Self {
        Workspace {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            stack: Vec::with_capacity(n),
            queue: std::collections::VecDeque::with_capacity(n),
            preds: vec![Vec::new(); n],
        }
    }

    fn reset(&mut self) {
        self.dist.iter_mut().for_each(|d| *d = -1);
        self.sigma.iter_mut().for_each(|s| *s = 0.0);
        self.delta.iter_mut().for_each(|d| *d = 0.0);
        self.stack.clear();
        self.queue.clear();
        self.preds.iter_mut().for_each(Vec::clear);
    }
}

/// One source iteration of Brandes' algorithm, accumulating into `bc`
/// (seed-style, used only by the unfused baseline).
fn brandes_source(g: &Csr, s: usize, bc: &mut [f64], ws: &mut Workspace) {
    ws.reset();
    ws.dist[s] = 0;
    ws.sigma[s] = 1.0;
    ws.queue.push_back(s as u32);
    while let Some(v) = ws.queue.pop_front() {
        ws.stack.push(v);
        let dv = ws.dist[v as usize];
        for &w in g.neighbors(v as usize) {
            let wi = w as usize;
            if ws.dist[wi] < 0 {
                ws.dist[wi] = dv + 1;
                ws.queue.push_back(w);
            }
            if ws.dist[wi] == dv + 1 {
                ws.sigma[wi] += ws.sigma[v as usize];
                ws.preds[wi].push(v);
            }
        }
    }
    while let Some(w) = ws.stack.pop() {
        let wi = w as usize;
        for i in 0..ws.preds[wi].len() {
            let v = ws.preds[wi][i] as usize;
            let contrib = ws.sigma[v] / ws.sigma[wi] * (1.0 + ws.delta[wi]);
            ws.delta[v] += contrib;
        }
        if wi != s {
            bc[wi] += ws.delta[wi];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn path_betweenness_closed_form() {
        // Path of n nodes: b(v_i) = i * (n-1-i) (pairs separated by v_i).
        let g = path(6);
        let bc = betweenness(&g);
        for (i, &b) in bc.iter().enumerate() {
            let expect = (i * (5 - i)) as f64;
            assert!((b - expect).abs() < 1e-9, "node {i}: {b} vs {expect}");
        }
    }

    #[test]
    fn star_center_carries_all_pairs() {
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        let g = Csr::from_edges(6, &edges);
        let bc = betweenness(&g);
        // Center: C(5,2) = 10 pairs; leaves: 0.
        assert!((bc[0] - 10.0).abs() < 1e-9);
        assert!(bc[1..].iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn cycle_splits_shortest_paths() {
        // 4-cycle: each pair of opposite nodes has 2 shortest paths, each
        // interior node gets 1/2 from that one pair.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = betweenness(&g);
        for &b in &bc {
            assert!((b - 0.5).abs() < 1e-9, "b = {b}");
        }
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let bc = betweenness(&g);
        assert!((bc[1] - 1.0).abs() < 1e-9);
        assert!((bc[4] - 1.0).abs() < 1e-9);
        assert!(bc[0].abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(5);
        let n = 60;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.1 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let serial = betweenness(&g);
        let parallel = betweenness_parallel(&g, 4);
        // Fixed chunk grid + in-order merge: bit-identical, not just close.
        let a: Vec<u64> = serial.iter().map(|b| b.to_bits()).collect();
        let b: Vec<u64> = parallel.iter().map(|b| b.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_seed_unfused_implementation() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(21);
        let n = 50;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.12 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        for k in [7, 20, 1000] {
            let fused = betweenness_sampled(&g, k, 3);
            let seed = betweenness_sampled_unfused(&g, k);
            for (v, (a, b)) in fused.iter().zip(&seed).enumerate() {
                assert!((a - b).abs() < 1e-9, "k {k} node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sampled_with_full_k_is_exact() {
        let g = path(8);
        let exact = betweenness(&g);
        let sampled = betweenness_sampled(&g, 100, 2);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_estimate_preserves_mean_on_symmetric_graph() {
        // Cycle graph is vertex-transitive: every source contributes the
        // same *total* dependency, so the scaled estimate has exactly the
        // right mean (individual nodes still fluctuate with the source set).
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Csr::from_edges(n, &edges);
        let exact = betweenness(&g);
        let est = betweenness_sampled(&g, 10, 1);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&exact) - mean(&est)).abs() < 1e-9);
        // And the estimate is within a sane band per node.
        for (a, b) in exact.iter().zip(&est) {
            assert!((a - b).abs() < 0.5 * a.max(1.0), "exact {a}, est {b}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let g = Csr::from_edges(0, &[]);
        assert!(betweenness(&g).is_empty());
        let g = Csr::from_edges(2, &[(0, 1)]);
        assert_eq!(betweenness(&g), vec![0.0, 0.0]);
        assert_eq!(betweenness_sampled(&g, 0, 1), vec![0.0, 0.0]);
    }

    /// Brute-force cross-check: enumerate all shortest paths explicitly on a
    /// small random graph.
    #[test]
    fn matches_brute_force() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(11);
        let n = 14;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.3 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let bc = betweenness(&g);

        // Brute force: count shortest paths through each vertex by DFS over
        // BFS DAGs.
        let mut brute = vec![0.0f64; n];
        for s in 0..n {
            for t in 0..n {
                if s >= t {
                    continue;
                }
                let dist = inet_graph::traversal::bfs_distances(&g, s);
                if dist[t] == inet_graph::traversal::UNREACHABLE {
                    continue;
                }
                // Enumerate all shortest s-t paths.
                let mut paths: Vec<Vec<usize>> = Vec::new();
                let mut stack = vec![vec![t]];
                while let Some(partial) = stack.pop() {
                    let head = *partial.last().expect("non-empty");
                    if head == s {
                        paths.push(partial);
                        continue;
                    }
                    for &u in g.neighbors(head) {
                        if dist[u as usize] + 1 == dist[head] {
                            let mut next = partial.clone();
                            next.push(u as usize);
                            stack.push(next);
                        }
                    }
                }
                let sigma = paths.len() as f64;
                for p in &paths {
                    for &v in &p[1..p.len() - 1] {
                        brute[v] += 1.0 / sigma;
                    }
                }
            }
        }
        for (v, (&a, &b)) in bc.iter().zip(&brute).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {v}: brandes {a}, brute {b}");
        }
    }
}
