//! Fused per-source BFS engine: one traversal feeds paths, betweenness and
//! closeness.
//!
//! The seed measurement pipeline ran **two** independent BFS sweeps over the
//! sampled sources — one for the shortest-path statistics, one for Brandes
//! betweenness — even though both start from the same stride-sampled source
//! sets (and the betweenness strides are usually a subset of the path
//! strides). This module fuses them: each source is traversed once, and
//! per-source flags say which observables that traversal feeds.
//!
//! Per-source cost is kept minimal:
//!
//! * Sources that only feed the path-length histogram are traversed in
//!   **bit-parallel batches of 64**: each node carries a `u64` of
//!   per-source visited bits, so one pass over the edges advances 64 BFS
//!   frontiers at once and a popcount per node yields the histogram. This
//!   replaces 64 scattered `dist[w]` probes per edge with one word OR.
//! * Brandes sources run level by level over a single `order` vector that
//!   doubles as the FIFO queue and, read backwards, as the dependency-pass
//!   stack — no separate `VecDeque`/stack allocations.
//! * Brandes path counts `σ` are written on a node's discovery instead of
//!   being reset between sources, and `dist`/`δ`/predecessor lists are
//!   reset touched-only. Predecessors stay in per-node lists like the
//!   seed's: both a flat CSR-shaped predecessor arena and a pred-less CSR
//!   rescan of the dependency condition were measured *slower* on
//!   heavy-tailed graphs (extra random cache lines per DAG edge).
//! * The path-length histogram is updated **once per BFS level** (level
//!   width added to `counts[d]`), not once per visited node, and the
//!   efficiency sum `Σ 1/d` is derived from the final histogram instead of
//!   doing one float division per reachable pair.
//! * Between sources only the entries actually touched (those in `order`)
//!   are reset.
//!
//! Batches and sources fan out over the deterministic pool behind
//! [`inet_exec::Executor::map_ordered`]; per-chunk partials are merged in
//! chunk order, so every result is **bit-identical for any thread
//! count**.

use crate::paths::PathStats;
use inet_exec::Executor;
use inet_graph::traversal::UNREACHABLE;
use inet_graph::Csr;

/// What one source's traversal should feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSpec {
    /// The BFS source node.
    pub node: u32,
    /// Accumulate the shortest-path-length histogram from this source.
    pub paths: bool,
    /// Run the Brandes dependency pass from this source.
    pub betweenness: bool,
    /// Record the source's closeness centrality.
    pub closeness: bool,
}

/// Raw, unscaled accumulations of one fused sweep.
pub(crate) struct SweepTotals {
    /// `counts[d]` = reachable ordered pairs at distance `d` over the
    /// paths-flagged sources.
    pub counts: Vec<u64>,
    /// Unreachable ordered pairs over the paths-flagged sources.
    pub unreachable_pairs: u64,
    /// Unscaled Brandes dependency sums (both pair directions counted when
    /// every node is a source).
    pub betweenness: Vec<f64>,
    /// Closeness of each closeness-flagged source (0 elsewhere).
    pub closeness: Vec<f64>,
}

/// Result of [`paths_and_betweenness`]: both headline BFS observables from a
/// single sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedReport {
    /// Shortest-path statistics over the path source set.
    pub paths: PathStats,
    /// Betweenness estimate, scaled like
    /// [`crate::betweenness::betweenness_sampled`].
    pub betweenness: Vec<f64>,
}

/// Measures path statistics (from `path_sources` stride-sampled sources,
/// exact when `path_sources ≥ n`) and sampled betweenness (from
/// `betweenness_sources`) in **one** BFS sweep over the union of the two
/// source sets. Sources appearing in both sets are traversed once.
///
/// Output is identical (up to float summation order) to running
/// [`PathStats::measure_sampled`] and
/// [`crate::betweenness::betweenness_sampled`] separately, and bit-identical
/// across thread counts.
pub fn paths_and_betweenness(
    g: &Csr,
    path_sources: usize,
    betweenness_sources: usize,
    threads: usize,
) -> FusedReport {
    let n = g.node_count();
    let (path_set, exact) = path_source_set(n, path_sources);
    let (bc_set, scale) = betweenness_source_set(n, betweenness_sources);
    let specs = union_specs(&path_set, &bc_set);
    let totals = sweep(g, &specs, threads);
    let paths = PathStats::from_histogram(
        totals.counts,
        totals.unreachable_pairs,
        path_set.len(),
        exact,
    );
    let mut betweenness = totals.betweenness;
    for b in &mut betweenness {
        *b *= scale;
    }
    FusedReport { paths, betweenness }
}

/// Path source set (stride-sampled like the seed: `i·n/k`) and whether it is
/// exact (every node a source).
pub(crate) fn path_source_set(n: usize, k: usize) -> (Vec<u32>, bool) {
    if n == 0 {
        return (Vec::new(), true);
    }
    if k >= n {
        return ((0..n as u32).collect(), true);
    }
    let k = k.max(1);
    ((0..k).map(|i| (i * n / k) as u32).collect(), false)
}

/// Betweenness source set and the scale factor that turns raw dependency
/// sums into the estimate of `betweenness_sampled`.
pub(crate) fn betweenness_source_set(n: usize, k: usize) -> (Vec<u32>, f64) {
    if n == 0 || k == 0 {
        return (Vec::new(), 1.0);
    }
    if k >= n {
        return ((0..n as u32).collect(), 0.5);
    }
    let sources: Vec<u32> = (0..k).map(|i| (i * n / k) as u32).collect();
    let scale = n as f64 / sources.len() as f64 / 2.0;
    (sources, scale)
}

/// Merges two ascending source lists into flagged specs (two-pointer union).
fn union_specs(path_set: &[u32], bc_set: &[u32]) -> Vec<SourceSpec> {
    let mut specs = Vec::with_capacity(path_set.len() + bc_set.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < path_set.len() || j < bc_set.len() {
        let p = path_set.get(i).copied();
        let b = bc_set.get(j).copied();
        let (node, paths, betweenness) = match (p, b) {
            (Some(p), Some(b)) if p == b => {
                i += 1;
                j += 1;
                (p, true, true)
            }
            (Some(p), Some(b)) if p < b => {
                i += 1;
                (p, true, false)
            }
            (Some(_), Some(b)) => {
                j += 1;
                (b, false, true)
            }
            (Some(p), None) => {
                i += 1;
                (p, true, false)
            }
            (None, Some(b)) => {
                j += 1;
                (b, false, true)
            }
            (None, None) => unreachable!(),
        };
        specs.push(SourceSpec {
            node,
            paths,
            betweenness,
            closeness: false,
        });
    }
    specs
}

/// Betweenness-only sweep used by the thin wrappers in
/// [`mod@crate::betweenness`].
pub(crate) fn betweenness_from_sources(
    g: &Csr,
    sources: &[u32],
    scale: f64,
    threads: usize,
) -> Vec<f64> {
    let specs: Vec<SourceSpec> = sources
        .iter()
        .map(|&node| SourceSpec {
            node,
            paths: false,
            betweenness: true,
            closeness: false,
        })
        .collect();
    let mut bc = sweep(g, &specs, threads).betweenness;
    for b in &mut bc {
        *b *= scale;
    }
    bc
}

/// Paths-only sweep used by the thin wrappers in [`mod@crate::paths`].
pub(crate) fn paths_from_sources(
    g: &Csr,
    sources: &[u32],
    exact: bool,
    threads: usize,
) -> PathStats {
    let specs: Vec<SourceSpec> = sources
        .iter()
        .map(|&node| SourceSpec {
            node,
            paths: true,
            betweenness: false,
            closeness: false,
        })
        .collect();
    let totals = sweep(g, &specs, threads);
    PathStats::from_histogram(
        totals.counts,
        totals.unreachable_pairs,
        sources.len(),
        exact,
    )
}

/// Closeness of every node, computed with BFS sources fanned out over
/// `threads` workers. Values are identical to the sequential definition
/// (each node's closeness depends only on its own traversal).
pub(crate) fn closeness_values(g: &Csr, threads: usize) -> Vec<f64> {
    let specs: Vec<SourceSpec> = (0..g.node_count() as u32)
        .map(|node| SourceSpec {
            node,
            paths: false,
            betweenness: false,
            closeness: true,
        })
        .collect();
    sweep(g, &specs, threads).closeness
}

/// Per-worker reusable buffers. Betweenness arrays are only allocated when
/// the sweep contains betweenness sources. `sigma` is (over)written on a
/// node's discovery, so it needs no reset between sources; `dist`, `delta`
/// and the predecessor lists are reset touched-only.
struct Workspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    /// Per-node predecessor lists, cleared touched-only between sources.
    preds: Vec<Vec<u32>>,
    /// BFS visitation order; doubles as the FIFO queue during traversal and
    /// as the reverse-iteration stack of the dependency pass.
    order: Vec<u32>,
}

impl Workspace {
    fn new(n: usize, betweenness: bool) -> Self {
        Workspace {
            dist: vec![UNREACHABLE; n],
            sigma: if betweenness {
                vec![0.0; n]
            } else {
                Vec::new()
            },
            delta: if betweenness {
                vec![0.0; n]
            } else {
                Vec::new()
            },
            preds: if betweenness {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            },
            order: Vec::with_capacity(n),
        }
    }
}

/// Per-chunk partial accumulations, merged in chunk order by [`sweep`].
struct Partial {
    counts: Vec<u64>,
    unreachable: u64,
    bc: Option<Vec<f64>>,
    closeness: Vec<(u32, f64)>,
}

impl Partial {
    fn empty() -> Self {
        Partial {
            counts: Vec::new(),
            unreachable: 0,
            bc: None,
            closeness: Vec::new(),
        }
    }
}

/// Runs the fused traversal for every spec, fanning sources out over
/// `threads` work-stealing workers, and merges the partials in chunk order.
///
/// The graph is first relabeled **hub-first** (degree descending): on
/// heavy-tailed graphs most shortest-path hops pass through the high-degree
/// core, so packing those nodes into the low indices keeps the hot prefix
/// of the `dist`/`σ`/`δ` arrays cache-resident. Relabeling permutes only
/// *which slot* each node's sums land in, not the order the sums are taken
/// in, for everything except the Brandes visitation order — whose deviation
/// from the seed is a couple of ulp, checked by the cross-check tests.
/// Results are scattered back to the caller's node ids.
///
/// Sources that only feed the path-length histogram are traversed in
/// bit-parallel batches of 64 (histogram counts are integers, so the
/// batched order changes nothing); sources that feed betweenness or
/// closeness take the per-source [`fused_source`] path.
pub(crate) fn sweep(g: &Csr, specs: &[SourceSpec], threads: usize) -> SweepTotals {
    let n = g.node_count();
    if n == 0 || specs.is_empty() {
        return SweepTotals {
            counts: Vec::new(),
            unreachable_pairs: 0,
            betweenness: vec![0.0; n],
            closeness: vec![0.0; n],
        };
    }

    // old_of[new] = old id, nodes sorted by (degree desc, id asc);
    // new_of[old] inverts it.
    let mut old_of: Vec<u32> = (0..n as u32).collect();
    old_of.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v as usize)), v));
    let mut new_of = vec![0u32; n];
    for (new, &old) in old_of.iter().enumerate() {
        new_of[old as usize] = new as u32;
    }
    let mut edges = Vec::with_capacity(g.edge_count());
    for u in 0..n {
        for &v in g.neighbors(u) {
            if (v as usize) > u {
                edges.push((new_of[u] as usize, new_of[v as usize] as usize));
            }
        }
    }
    let gp = Csr::from_edges(n, &edges);
    let specs: Vec<SourceSpec> = specs
        .iter()
        .map(|s| SourceSpec {
            node: new_of[s.node as usize],
            ..*s
        })
        .collect();

    let mut totals = sweep_relabeled(&gp, &specs, threads);
    // Each `(new, old)` pair scatters the permuted slot straight back.
    let mut betweenness = vec![0.0; n];
    let mut closeness = vec![0.0; n];
    for (new, &old) in old_of.iter().enumerate() {
        betweenness[old as usize] = totals.betweenness[new];
        closeness[old as usize] = totals.closeness[new];
    }
    totals.betweenness = betweenness;
    totals.closeness = closeness;
    totals
}

/// [`sweep`] body, operating on the hub-first relabeled graph.
fn sweep_relabeled(g: &Csr, specs: &[SourceSpec], threads: usize) -> SweepTotals {
    let n = g.node_count();
    let light: Vec<u32> = specs
        .iter()
        .filter(|s| s.paths && !s.betweenness && !s.closeness)
        .map(|s| s.node)
        .collect();
    let heavy: Vec<SourceSpec> = specs
        .iter()
        .copied()
        .filter(|s| s.betweenness || s.closeness)
        .collect();
    let needs_bc = heavy.iter().any(|s| s.betweenness);

    let mut totals = SweepTotals {
        counts: Vec::new(),
        unreachable_pairs: 0,
        betweenness: vec![0.0; n],
        closeness: vec![0.0; n],
    };

    let pool = Executor::new(threads);
    let heavy_partials = pool.map_ordered(
        heavy.len(),
        || Workspace::new(n, needs_bc),
        |ws, range| {
            let mut part = Partial::empty();
            for spec in &heavy[range] {
                fused_source(g, *spec, ws, &mut part);
            }
            part
        },
    );
    let batches = light.len().div_ceil(BATCH);
    let light_partials = pool.map_ordered(
        batches,
        || BatchWorkspace::new(n),
        |ws, range| {
            let mut part = Partial::empty();
            for b in range {
                let batch = &light[b * BATCH..light.len().min((b + 1) * BATCH)];
                batched_paths(g, batch, ws, &mut part);
            }
            part
        },
    );

    for part in heavy_partials.into_iter().chain(light_partials) {
        if part.counts.len() > totals.counts.len() {
            totals.counts.resize(part.counts.len(), 0);
        }
        for (slot, c) in totals.counts.iter_mut().zip(part.counts) {
            *slot += c;
        }
        totals.unreachable_pairs += part.unreachable;
        if let Some(pbc) = part.bc {
            for (slot, b) in totals.betweenness.iter_mut().zip(pbc) {
                *slot += b;
            }
        }
        for (node, value) in part.closeness {
            totals.closeness[node as usize] = value;
        }
    }
    totals
}

/// Sources per bit-parallel BFS batch: one visited bit per `u64` lane.
const BATCH: usize = 64;

/// Per-worker frontier bitsets for the batched paths-only traversal.
struct BatchWorkspace {
    visited: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

impl BatchWorkspace {
    fn new(n: usize) -> Self {
        BatchWorkspace {
            visited: vec![0; n],
            frontier: vec![0; n],
            next: vec![0; n],
        }
    }
}

/// Advances up to 64 BFS frontiers at once: each node holds a `u64` whose
/// bit *i* means "visited from `sources[i]`". One pass over the edges per
/// level ORs frontier words into neighbours, and the per-level popcount sum
/// is exactly the histogram width contributed by the whole batch.
fn batched_paths(g: &Csr, sources: &[u32], ws: &mut BatchWorkspace, out: &mut Partial) {
    let n = g.node_count();
    for x in ws.visited.iter_mut() {
        *x = 0;
    }
    for x in ws.frontier.iter_mut() {
        *x = 0;
    }
    for (i, &s) in sources.iter().enumerate() {
        ws.visited[s as usize] |= 1u64 << i;
        ws.frontier[s as usize] |= 1u64 << i;
    }
    // (source, source) pairs count as reached at distance 0.
    let mut reached = sources.len() as u64;
    let mut d = 0usize;
    loop {
        for v in 0..n {
            let f = ws.frontier[v];
            if f != 0 {
                for &w in g.neighbors(v) {
                    ws.next[w as usize] |= f;
                }
            }
        }
        d += 1;
        let mut width = 0u64;
        for v in 0..n {
            let new = ws.next[v] & !ws.visited[v];
            ws.visited[v] |= new;
            ws.frontier[v] = new;
            ws.next[v] = 0;
            width += new.count_ones() as u64;
        }
        if width == 0 {
            break;
        }
        if d >= out.counts.len() {
            out.counts.resize(d + 1, 0);
        }
        out.counts[d] += width;
        reached += width;
    }
    out.unreachable += n as u64 * sources.len() as u64 - reached;
}

/// One fused source traversal: level-by-level BFS with optional Brandes
/// path counting, followed by the optional dependency pass, then a
/// touched-only workspace reset.
fn fused_source(g: &Csr, spec: SourceSpec, ws: &mut Workspace, out: &mut Partial) {
    let n = g.node_count();
    let s = spec.node as usize;
    let bc_pass = spec.betweenness;

    ws.order.clear();
    ws.dist[s] = 0;
    ws.order.push(spec.node);
    if bc_pass {
        ws.sigma[s] = 1.0;
    }

    let mut close_sum = 0u64;
    let mut level_start = 0usize;
    let mut d = 0u32;
    while level_start < ws.order.len() {
        let level_end = ws.order.len();
        if d >= 1 {
            let width = (level_end - level_start) as u64;
            if spec.paths {
                let di = d as usize;
                if di >= out.counts.len() {
                    out.counts.resize(di + 1, 0);
                }
                out.counts[di] += width;
            }
            if spec.closeness {
                close_sum += d as u64 * width;
            }
        }
        for idx in level_start..level_end {
            let v = ws.order[idx] as usize;
            if bc_pass {
                let sv = ws.sigma[v];
                for &w in g.neighbors(v) {
                    let wi = w as usize;
                    let dw = ws.dist[wi];
                    if dw == UNREACHABLE {
                        ws.dist[wi] = d + 1;
                        // First touch: `σ = sv` is bitwise `0.0 + sv`, so σ
                        // never needs a reset between sources.
                        ws.sigma[wi] = sv;
                        ws.order.push(w);
                        ws.preds[wi].push(v as u32);
                    } else if dw == d + 1 {
                        ws.sigma[wi] += sv;
                        ws.preds[wi].push(v as u32);
                    }
                }
            } else {
                for &w in g.neighbors(v) {
                    let wi = w as usize;
                    if ws.dist[wi] == UNREACHABLE {
                        ws.dist[wi] = d + 1;
                        ws.order.push(w);
                    }
                }
            }
        }
        level_start = level_end;
        d += 1;
    }

    if spec.paths {
        out.unreachable += (n - ws.order.len()) as u64;
    }
    if spec.closeness {
        // Wasserman–Faust component-aware closeness, exactly as in
        // `centrality::closeness`.
        let reachable = (ws.order.len() - 1) as u64;
        let value = if close_sum > 0 && n > 1 {
            let frac = reachable as f64 / (n as f64 - 1.0);
            frac * reachable as f64 / close_sum as f64
        } else {
            0.0
        };
        out.closeness.push((spec.node, value));
    }

    if bc_pass {
        // Dependency pass in reverse visitation order. `order[0]` is the
        // source, which has no predecessors and accumulates no betweenness,
        // so it is skipped. The per-node coefficient `(1 + δ_w) / σ_w` is
        // hoisted so each predecessor costs one multiply instead of a
        // divide and a multiply; this deviates from the seed's per-edge
        // `σ_v / σ_w · (1 + δ_w)` by at most a couple of ulp (the
        // cross-check tests compare at 1e-9) and stays bit-identical
        // across thread counts, which is the contract that matters.
        let bc = out.bc.get_or_insert_with(|| vec![0.0; n]);
        for idx in (1..ws.order.len()).rev() {
            let w = ws.order[idx] as usize;
            let coeff = (1.0 + ws.delta[w]) / ws.sigma[w];
            for &v in &ws.preds[w] {
                let vi = v as usize;
                ws.delta[vi] += ws.sigma[vi] * coeff;
            }
            bc[w] += ws.delta[w];
        }
    }

    // Reset for the next source. When the traversal covered most of the
    // graph (the usual case on a giant component), sequential fills beat
    // touching the same entries in random BFS order; the touched-only path
    // wins on small components.
    if ws.order.len() * 4 >= n {
        ws.dist.iter_mut().for_each(|x| *x = UNREACHABLE);
        if bc_pass {
            ws.delta.iter_mut().for_each(|x| *x = 0.0);
            ws.preds.iter_mut().for_each(Vec::clear);
        }
    } else {
        for &v in &ws.order {
            let vi = v as usize;
            ws.dist[vi] = UNREACHABLE;
            if bc_pass {
                ws.delta[vi] = 0.0;
                ws.preds[vi].clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Csr::from_edges(n, &edges)
    }

    fn er_graph(n: usize, p: f64, seed: u64) -> Csr {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < p {
                    edges.push((i, j));
                }
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn fused_path_graph_closed_forms() {
        let g = path(6);
        let fused = paths_and_betweenness(&g, usize::MAX, usize::MAX, 1);
        // Path stats: same counts as PathStats::measure.
        assert_eq!(fused.paths.counts, vec![0, 10, 8, 6, 4, 2]);
        assert_eq!(fused.paths.diameter, 5);
        assert!(fused.paths.exact);
        // Betweenness: b(v_i) = i (n-1-i).
        for (i, &b) in fused.betweenness.iter().enumerate() {
            let expect = (i * (5 - i)) as f64;
            assert!((b - expect).abs() < 1e-9, "node {i}: {b} vs {expect}");
        }
    }

    #[test]
    fn fused_matches_unfused_two_pass() {
        // The acceptance check of the fusion: one sweep must reproduce the
        // seed's separate paths + betweenness passes.
        for (n, p, seed) in [(60, 0.08, 4u64), (40, 0.05, 9), (30, 0.3, 2)] {
            let g = er_graph(n, p, seed);
            for (kp, kb) in [(usize::MAX, usize::MAX), (17, 9), (9, 17), (5, 0)] {
                let fused = paths_and_betweenness(&g, kp, kb, 2);
                let paths = crate::paths::PathStats::measure_sampled_unfused(&g, kp);
                let bc = crate::betweenness::betweenness_sampled_unfused(&g, kb);
                assert_eq!(fused.paths.counts, paths.counts, "n {n} kp {kp}");
                assert_eq!(fused.paths.diameter, paths.diameter);
                assert_eq!(fused.paths.sources, paths.sources);
                assert_eq!(fused.paths.exact, paths.exact);
                assert!((fused.paths.mean - paths.mean).abs() < 1e-12);
                assert!((fused.paths.efficiency - paths.efficiency).abs() < 1e-9);
                for (v, (a, b)) in fused.betweenness.iter().zip(&bc).enumerate() {
                    assert!((a - b).abs() < 1e-9, "node {v}: fused {a}, unfused {b}");
                }
            }
        }
    }

    #[test]
    fn fused_engine_on_disconnected_multi_component_graphs() {
        // The percolation engine feeds the metrics exactly these: damaged
        // graphs with several components and isolated nodes. The fused
        // sweep must stay finite, count unreachable pairs instead of
        // poisoning the means, match the unfused two-pass on every
        // component, and stay bit-identical across thread counts.
        let mut edges = vec![(0, 1), (1, 2), (2, 0)]; // triangle
        edges.extend((4..9).map(|i| (i, i + 1))); // path 4..=9
        edges.extend([(11, 12), (12, 13), (11, 13), (11, 14)]); // tailed triangle
        let g = Csr::from_edges(16, &edges); // 3, 10, 15 isolated
        for (kp, kb) in [(usize::MAX, usize::MAX), (7, 3)] {
            let fused = paths_and_betweenness(&g, kp, kb, 1);
            let paths = crate::paths::PathStats::measure_sampled_unfused(&g, kp);
            let bc = crate::betweenness::betweenness_sampled_unfused(&g, kb);
            assert_eq!(fused.paths.counts, paths.counts, "kp {kp}");
            assert_eq!(fused.paths.diameter, paths.diameter);
            assert!(fused.paths.mean.is_finite());
            assert!(fused.paths.efficiency.is_finite());
            for (v, (a, b)) in fused.betweenness.iter().zip(&bc).enumerate() {
                assert!(a.is_finite(), "node {v}");
                assert!((a - b).abs() < 1e-9, "node {v}: fused {a}, unfused {b}");
            }
            for threads in [2, 7] {
                let other = paths_and_betweenness(&g, kp, kb, threads);
                assert_eq!(other.paths, fused.paths, "threads {threads}");
                assert_eq!(other.betweenness, fused.betweenness, "threads {threads}");
            }
        }
        // Exact run: the longest path lives in the 4..=9 chain (length 5),
        // and cross-component pairs count as unreachable, not distance 0.
        let exact = paths_and_betweenness(&g, usize::MAX, usize::MAX, 1);
        assert_eq!(exact.paths.diameter, 5);
        let reachable: u64 = exact.paths.counts.iter().sum();
        assert!(
            reachable < 16 * 15,
            "cross-component pairs must be unreachable, not distance 0"
        );
        // Isolated nodes carry zero betweenness.
        for v in [3usize, 10, 15] {
            assert_eq!(exact.betweenness[v], 0.0, "isolated node {v}");
        }
    }

    #[test]
    fn union_source_sets_share_traversals() {
        // kb strides are a subset of kp strides when kp is a multiple of kb,
        // so the union must be exactly the path set.
        let (pset, _) = path_source_set(1000, 100);
        let (bset, _) = betweenness_source_set(1000, 50);
        let specs = union_specs(&pset, &bset);
        assert_eq!(
            specs.len(),
            pset.len(),
            "betweenness sources must fold into path sources"
        );
        assert_eq!(specs.iter().filter(|s| s.betweenness).count(), bset.len());
        assert!(specs.iter().all(|s| s.paths || s.betweenness));
        // Specs stay sorted and unique.
        for pair in specs.windows(2) {
            assert!(pair[0].node < pair[1].node);
        }
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        let g = er_graph(80, 0.06, 12);
        let base = paths_and_betweenness(&g, 23, 11, 1);
        for threads in [2, 3, 7] {
            let other = paths_and_betweenness(&g, 23, 11, threads);
            assert_eq!(base.paths, other.paths, "threads {threads}");
            let a: Vec<u64> = base.betweenness.iter().map(|b| b.to_bits()).collect();
            let b: Vec<u64> = other.betweenness.iter().map(|b| b.to_bits()).collect();
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn degenerate_graphs() {
        let empty = paths_and_betweenness(&Csr::from_edges(0, &[]), 10, 10, 4);
        assert!(empty.paths.counts.is_empty());
        assert!(empty.betweenness.is_empty());
        let single = paths_and_betweenness(&Csr::from_edges(1, &[]), 10, 10, 4);
        assert_eq!(single.paths.mean, 0.0);
        assert_eq!(single.betweenness, vec![0.0]);
        let pair = paths_and_betweenness(&Csr::from_edges(2, &[(0, 1)]), 10, 0, 1);
        assert_eq!(pair.betweenness, vec![0.0, 0.0]);
        assert_eq!(pair.paths.counts, vec![0, 2]);
    }

    #[test]
    fn closeness_matches_star_closed_form() {
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        let g = Csr::from_edges(6, &edges);
        for threads in [1, 3] {
            let c = closeness_values(&g, threads);
            assert!((c[0] - 1.0).abs() < 1e-12);
            for &leaf in &c[1..] {
                assert!((leaf - 5.0 / 9.0).abs() < 1e-12);
            }
        }
    }
}
