//! Degree–degree correlations: average nearest-neighbors degree and the
//! assortativity coefficient.
//!
//! The Internet AS map is **disassortative**: high-degree providers connect
//! predominantly to low-degree customers, so `k̄_nn(k)` decays with `k` and
//! Newman's assortativity coefficient is negative (≈ −0.19 for the 2001 AS
//! map). Papers usually plot the *normalized* spectrum
//! `k̄_nn(k) ⟨k⟩ / ⟨k²⟩`, which is flat at 1 for uncorrelated networks.

use inet_exec::Executor;
use inet_graph::Csr;
use inet_stats::binned::{binned_mean_by_int, BinnedSpectrum};
use serde::{Deserialize, Serialize};

/// Degree-correlation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnStats {
    /// Per-node average degree of neighbors (0 for isolated nodes).
    pub knn: Vec<f64>,
    /// Newman assortativity coefficient `r ∈ [−1, 1]`; 0 when undefined
    /// (fewer than 2 edges or zero variance).
    pub assortativity: f64,
    /// `⟨k⟩ / ⟨k²⟩` normalization constant for the spectrum.
    pub normalization: f64,
}

impl KnnStats {
    /// Measures degree correlations of `g`.
    pub fn measure(g: &Csr) -> Self {
        Self::measure_threaded(g, 1)
    }

    /// [`KnnStats::measure`] with the per-node and per-edge passes fanned
    /// out over `threads` work-stealing workers. Chunk partials merge in
    /// chunk order, so results are bit-identical for any thread count.
    pub fn measure_threaded(g: &Csr, threads: usize) -> Self {
        let n = g.node_count();
        let deg: Vec<f64> = (0..n).map(|v| g.degree(v) as f64).collect();
        // Each chunk produces its own slice of knn (per-node, independent)
        // plus Newman edge sums over the edges (u, v) with u in the chunk
        // and v > u (each edge owned by its smaller endpoint exactly once).
        let partials = Executor::new(threads).map_ordered(
            n,
            || (),
            |(), range| {
                let mut knn_seg = Vec::with_capacity(range.len());
                let (mut m2, mut sum_prod, mut sum_mean, mut sum_sq) = (0.0f64, 0.0, 0.0, 0.0);
                for v in range {
                    knn_seg.push(if deg[v] > 0.0 {
                        let sum: f64 = g.neighbors(v).iter().map(|&u| deg[u as usize]).sum();
                        sum / deg[v]
                    } else {
                        0.0
                    });
                    for &w in g.neighbors(v) {
                        let w = w as usize;
                        if w <= v {
                            continue;
                        }
                        // Newman's r over edges (both orientations counted).
                        let (ju, kv) = (deg[v], deg[w]);
                        m2 += 2.0;
                        sum_prod += 2.0 * ju * kv;
                        sum_mean += ju + kv;
                        sum_sq += ju * ju + kv * kv;
                    }
                }
                (knn_seg, m2, sum_prod, sum_mean, sum_sq)
            },
        );
        let mut knn = Vec::with_capacity(n);
        let (mut m2, mut sum_prod, mut sum_mean, mut sum_sq) = (0.0f64, 0.0, 0.0, 0.0);
        for (seg, pm2, pprod, pmean, psq) in partials {
            knn.extend(seg);
            m2 += pm2;
            sum_prod += pprod;
            sum_mean += pmean;
            sum_sq += psq;
        }
        let assortativity = if m2 >= 4.0 {
            let mean = sum_mean / m2;
            let num = sum_prod / m2 - mean * mean;
            let den = sum_sq / m2 - mean * mean;
            if den.abs() < 1e-12 {
                0.0
            } else {
                num / den
            }
        } else {
            0.0
        };
        let mean_k = deg.iter().sum::<f64>() / n.max(1) as f64;
        let mean_k2 = deg.iter().map(|&d| d * d).sum::<f64>() / n.max(1) as f64;
        let normalization = if mean_k2 > 0.0 { mean_k / mean_k2 } else { 0.0 };
        KnnStats {
            knn,
            assortativity,
            normalization,
        }
    }

    /// Spectrum `k̄_nn(k)`: mean neighbor degree per exact degree value
    /// (`k ≥ 1`).
    pub fn spectrum(&self, g: &Csr) -> BinnedSpectrum {
        let (ks, ys): (Vec<u64>, Vec<f64>) = (0..g.node_count())
            .filter(|&v| g.degree(v) >= 1)
            .map(|v| (g.degree(v) as u64, self.knn[v]))
            .unzip();
        binned_mean_by_int(&ks, &ys)
    }

    /// Normalized spectrum `k̄_nn(k)·⟨k⟩/⟨k²⟩` (flat ≈ 1 for an
    /// uncorrelated network).
    pub fn normalized_spectrum(&self, g: &Csr) -> BinnedSpectrum {
        let mut s = self.spectrum(g);
        for y in &mut s.y {
            *y *= self.normalization;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_maximally_disassortative() {
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        let g = Csr::from_edges(6, &edges);
        let s = KnnStats::measure(&g);
        // Center sees only degree-1 leaves; leaves see only the degree-5 hub.
        assert_eq!(s.knn[0], 1.0);
        assert!(s.knn[1..].iter().all(|&x| x == 5.0));
        assert!(
            (s.assortativity + 1.0).abs() < 1e-9,
            "r = {}",
            s.assortativity
        );
    }

    #[test]
    fn regular_graph_r_is_zero_degenerate() {
        // Cycle: all degrees equal, correlation undefined -> 0 by convention.
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let s = KnnStats::measure(&g);
        assert_eq!(s.assortativity, 0.0);
        assert!(s.knn.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn assortative_pairing_is_positive() {
        // Two K3s joined weakly vs star: here two triangles plus a 2-chain.
        // Triangle of degree-2 nodes and path attaching degree-1 to degree-1:
        // Use: K4 (degrees 3) + K2 (degrees 1), disconnected: like-with-like.
        let mut edges = vec![(4, 5)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let g = Csr::from_edges(6, &edges);
        let s = KnnStats::measure(&g);
        assert!(
            (s.assortativity - 1.0).abs() < 1e-9,
            "r = {}",
            s.assortativity
        );
    }

    #[test]
    fn knn_values_on_path() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let s = KnnStats::measure(&g);
        assert_eq!(s.knn, vec![2.0, 1.0, 2.0]);
        // <k> = 4/3, <k^2> = 2 -> normalization = 2/3.
        assert!((s.normalization - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spectrum_and_normalized() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let s = KnnStats::measure(&g);
        let sp = s.spectrum(&g);
        assert_eq!(sp.x, vec![1.0, 2.0]);
        assert_eq!(sp.y, vec![2.0, 1.0]);
        let ns = s.normalized_spectrum(&g);
        assert!((ns.y[0] - 2.0 * 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(13);
        let n = 90;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.08 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let serial = KnnStats::measure(&g);
        for threads in [2, 7] {
            let par = KnnStats::measure_threaded(&g, threads);
            assert_eq!(serial.assortativity.to_bits(), par.assortativity.to_bits());
            let a: Vec<u64> = serial.knn.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = par.knn.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn empty_graph_defaults() {
        let s = KnnStats::measure(&Csr::from_edges(0, &[]));
        assert_eq!(s.assortativity, 0.0);
        assert_eq!(s.normalization, 0.0);
        assert!(s.knn.is_empty());
    }

    #[test]
    fn isolated_nodes_have_zero_knn() {
        let g = Csr::from_edges(3, &[(0, 1)]);
        let s = KnnStats::measure(&g);
        assert_eq!(s.knn[2], 0.0);
    }
}
