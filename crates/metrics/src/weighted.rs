//! Weighted (bandwidth) observables.
//!
//! In weighted Internet models each node carries a *strength* `b_v` (total
//! incident edge weight — its provisioned bandwidth). The key scaling ansatz
//! of competition–adaptation models is `k ∝ b^μ` with `μ < 1`: bandwidth
//! grows faster than the number of distinct peers, so rich ASs hold multiple
//! parallel connections. This module measures that relation.

use inet_graph::Csr;
use inet_stats::binned::{binned_mean_log, BinnedSpectrum};
use inet_stats::ccdf::{ccdf_u64, Ccdf};
use inet_stats::regression::{loglog_fit, LinearFit};
use serde::{Deserialize, Serialize};

/// Strength/bandwidth statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedStats {
    /// Strength (total incident weight) per node.
    pub strengths: Vec<u64>,
    /// Mean strength `⟨b⟩`.
    pub mean_strength: f64,
    /// Largest strength.
    pub max_strength: u64,
    /// Ratio of total weight to edge count (mean edge multiplicity ≥ 1).
    pub mean_multiplicity: f64,
}

impl WeightedStats {
    /// Measures strength statistics of `g`.
    pub fn measure(g: &Csr) -> Self {
        let strengths = g.strengths();
        let n = strengths.len().max(1) as f64;
        let mean_strength = strengths.iter().sum::<u64>() as f64 / n;
        let max_strength = strengths.iter().copied().max().unwrap_or(0);
        let mean_multiplicity = if g.edge_count() > 0 {
            g.total_weight() as f64 / g.edge_count() as f64
        } else {
            0.0
        };
        WeightedStats {
            strengths,
            mean_strength,
            max_strength,
            mean_multiplicity,
        }
    }

    /// CCDF of node strengths.
    pub fn strength_ccdf(&self) -> Ccdf {
        ccdf_u64(&self.strengths)
    }
}

/// Log-binned spectrum of mean degree versus strength — the empirical
/// `k(b)` curve (plotted as the Fig. 2 inset of the source text).
pub fn degree_vs_strength(g: &Csr, bins_per_decade: usize) -> BinnedSpectrum {
    let (b, k): (Vec<f64>, Vec<f64>) = (0..g.node_count())
        .filter(|&v| g.degree(v) > 0)
        .map(|v| (g.strength(v) as f64, g.degree(v) as f64))
        .unzip();
    binned_mean_log(&b, &k, bins_per_decade)
}

/// Fits the scaling exponent `μ` of `k ∝ b^μ` by log–log regression on the
/// binned `k(b)` spectrum. `None` when there is not enough spread in `b`.
pub fn fit_mu(g: &Csr, bins_per_decade: usize) -> Option<LinearFit> {
    let spectrum = degree_vs_strength(g, bins_per_decade);
    if spectrum.x.len() < 3 {
        return None;
    }
    loglog_fit(&spectrum.x, &spectrum.y)
}

/// Barrat weighted clustering coefficient per node
/// (Barrat, Barthélemy, Pastor-Satorras & Vespignani, PNAS 101, 3747):
///
/// ```text
/// c^w(v) = 1 / (s_v (k_v − 1)) · Σ_{(u,x) triangle at v} (w_vu + w_vx) / 2
/// ```
///
/// Reduces to the topological coefficient on an unweighted graph. Nodes of
/// degree < 2 get 0.
pub fn weighted_clustering(g: &Csr) -> Vec<f64> {
    let n = g.node_count();
    let mut cw = vec![0.0f64; n];
    for (v, slot) in cw.iter_mut().enumerate() {
        let k = g.degree(v);
        if k < 2 {
            continue;
        }
        let s = g.strength(v) as f64;
        if s <= 0.0 {
            continue;
        }
        let neighbors = g.neighbors(v);
        let weights = g.neighbor_weights(v);
        let mut acc = 0.0f64;
        for i in 0..neighbors.len() {
            for j in (i + 1)..neighbors.len() {
                let (u, x) = (neighbors[i] as usize, neighbors[j] as usize);
                if g.has_edge(u, x) {
                    // Barrat's sum runs over ordered neighbor pairs; the
                    // weight term is symmetric, so count unordered pairs
                    // twice.
                    acc += (weights[i] + weights[j]) as f64;
                }
            }
        }
        *slot = acc / (s * (k as f64 - 1.0));
    }
    cw
}

/// Barrat weighted average nearest-neighbors degree per node:
///
/// ```text
/// k̄ⁿⁿ_w(v) = (1/s_v) Σ_{u ∈ N(v)} w_vu · k_u
/// ```
///
/// Weighs each neighbor's degree by the bandwidth committed to it — the
/// natural correlation measure for a multigraph Internet.
pub fn weighted_knn(g: &Csr) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0f64; n];
    for (v, slot) in out.iter_mut().enumerate() {
        let s = g.strength(v) as f64;
        if s <= 0.0 {
            continue;
        }
        let sum: f64 = g
            .neighbors(v)
            .iter()
            .zip(g.neighbor_weights(v))
            .map(|(&u, &w)| w as f64 * g.degree(u as usize) as f64)
            .sum();
        *slot = sum / s;
    }
    out
}

/// Weight disparity `Y(v) = Σ_u (w_vu / s_v)²` (Barthélemy et al.):
/// `Y ≈ 1/k` when a node spreads bandwidth evenly over its peers and
/// `Y → 1` when a single fat pipe dominates. The product `k·Y(k)` spectrum
/// discriminates "many equal customers" hubs from "one big transit" nodes.
/// Isolated nodes get 0.
pub fn disparity(g: &Csr) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0f64; n];
    for (v, slot) in out.iter_mut().enumerate() {
        let s = g.strength(v) as f64;
        if s <= 0.0 {
            continue;
        }
        *slot = g
            .neighbor_weights(v)
            .iter()
            .map(|&w| {
                let f = w as f64 / s;
                f * f
            })
            .sum();
    }
    out
}

/// Mean Barrat weighted clustering over nodes of degree ≥ 2; 0 when none.
pub fn mean_weighted_clustering(g: &Csr) -> f64 {
    let cw = weighted_clustering(g);
    let eligible: Vec<f64> = (0..g.node_count())
        .filter(|&v| g.degree(v) >= 2)
        .map(|v| cw[v])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_graph::{MultiGraph, NodeId};

    #[test]
    fn unweighted_graph_strength_equals_degree() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = WeightedStats::measure(&g);
        assert_eq!(w.strengths, vec![1, 2, 2, 1]);
        assert_eq!(w.mean_multiplicity, 1.0);
        assert_eq!(w.max_strength, 2);
    }

    #[test]
    fn multiplicities_raise_strength_not_degree() {
        let mut g = MultiGraph::new();
        g.add_nodes(3);
        let n = NodeId::new;
        g.add_edge_weighted(n(0), n(1), 5).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        let csr = g.to_csr();
        let w = WeightedStats::measure(&csr);
        assert_eq!(w.strengths, vec![5, 6, 1]);
        assert_eq!(w.mean_multiplicity, 3.0);
        assert_eq!(csr.degree(1), 2);
    }

    #[test]
    fn mu_recovered_from_planted_scaling() {
        // Construct a graph family where k = b^0.75 exactly: node i gets
        // degree k_i toward fresh leaves and one heavy edge making up the
        // remaining bandwidth.
        let mut g = MultiGraph::new();
        let hubs = 30usize;
        g.add_nodes(hubs);
        for i in 0..hubs {
            let b = (i + 2).pow(2) as u64; // strengths 4..1024
            let k = (b as f64).powf(0.75).round().max(2.0) as u64;
            // k - 1 unit edges to fresh leaves.
            for _ in 0..(k - 1) {
                let leaf = g.add_node();
                g.add_edge(NodeId::new(i), leaf).unwrap();
            }
            // One fat edge with the remaining weight.
            let leaf = g.add_node();
            g.add_edge_weighted(NodeId::new(i), leaf, b - (k - 1))
                .unwrap();
        }
        let csr = g.to_csr();
        let fit = fit_mu(&csr, 6).unwrap();
        assert!((fit.slope - 0.75).abs() < 0.12, "mu = {}", fit.slope);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = Csr::from_edges(0, &[]);
        let w = WeightedStats::measure(&empty);
        assert_eq!(w.mean_strength, 0.0);
        assert_eq!(w.mean_multiplicity, 0.0);
        assert!(fit_mu(&empty, 5).is_none());

        let single = Csr::from_edges(2, &[(0, 1)]);
        assert!(fit_mu(&single, 5).is_none(), "no spread in b");
    }

    #[test]
    fn weighted_clustering_reduces_to_topological_on_unit_weights() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cw = weighted_clustering(&g);
        let topo = crate::clustering::ClusteringStats::measure(&g).local;
        for (a, b) in cw.iter().zip(&topo) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn weighted_clustering_emphasizes_heavy_triangles() {
        // Node 0 sits in one triangle (with 1, 2) and has a heavy edge to a
        // non-triangle neighbor 3: the heavy non-triangle edge dilutes c^w
        // below the topological value.
        let mut g = MultiGraph::new();
        g.add_nodes(4);
        let n = NodeId::new;
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge_weighted(n(0), n(3), 10).unwrap();
        let csr = g.to_csr();
        let cw = weighted_clustering(&csr);
        let topo = crate::clustering::ClusteringStats::measure(&csr).local;
        assert!(cw[0] < topo[0], "cw {} !< topo {}", cw[0], topo[0]);
        // Conversely, making the triangle edges heavy raises c^w above topo.
        let mut g2 = MultiGraph::new();
        g2.add_nodes(4);
        g2.add_edge_weighted(n(0), n(1), 10).unwrap();
        g2.add_edge_weighted(n(0), n(2), 10).unwrap();
        g2.add_edge(n(1), n(2)).unwrap();
        g2.add_edge(n(0), n(3)).unwrap();
        let csr2 = g2.to_csr();
        let cw2 = weighted_clustering(&csr2);
        let topo2 = crate::clustering::ClusteringStats::measure(&csr2).local;
        assert!(cw2[0] > topo2[0], "cw {} !> topo {}", cw2[0], topo2[0]);
    }

    #[test]
    fn weighted_clustering_bounds() {
        // c^w lies in [0, 1] like its topological counterpart.
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(9);
        let mut g = MultiGraph::new();
        g.add_nodes(30);
        for _ in 0..120 {
            let u = rng.gen_range(0..30);
            let v = rng.gen_range(0..30);
            if u != v {
                let _ = g.add_edge_weighted(NodeId::new(u), NodeId::new(v), rng.gen_range(1..5));
            }
        }
        let csr = g.to_csr();
        for &c in &weighted_clustering(&csr) {
            assert!((0.0..=1.0 + 1e-12).contains(&c), "c^w = {c}");
        }
    }

    #[test]
    fn weighted_knn_weights_neighbors_by_bandwidth() {
        // Node 0: light edge to a hub (degree 3), heavy edge to a leaf.
        let mut g = MultiGraph::new();
        g.add_nodes(6);
        let n = NodeId::new;
        g.add_edge(n(0), n(1)).unwrap(); // 1 is the hub
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(1), n(3)).unwrap();
        g.add_edge_weighted(n(0), n(4), 9).unwrap(); // 4 is a leaf
        let csr = g.to_csr();
        let knn_w = weighted_knn(&csr);
        // Unweighted knn of 0 = (3 + 1)/2 = 2; weighted = (1*3 + 9*1)/10 = 1.2.
        assert!((knn_w[0] - 1.2).abs() < 1e-12, "knn_w = {}", knn_w[0]);
        let knn_topo = crate::knn::KnnStats::measure(&csr).knn[0];
        assert!((knn_topo - 2.0).abs() < 1e-12);
        // Isolated node 5 stays 0.
        assert_eq!(knn_w[5], 0.0);
    }

    #[test]
    fn mean_weighted_clustering_handles_degenerates() {
        assert_eq!(mean_weighted_clustering(&Csr::from_edges(0, &[])), 0.0);
        assert_eq!(
            mean_weighted_clustering(&Csr::from_edges(3, &[(0, 1)])),
            0.0
        );
        let tri = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((mean_weighted_clustering(&tri) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disparity_even_vs_dominated() {
        // Even split over 4 unit edges: Y = 4 * (1/4)^2 = 1/4 = 1/k.
        let mut g = MultiGraph::new();
        g.add_nodes(6);
        let n = NodeId::new;
        for i in 1..=4 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        let even = disparity(&g.to_csr());
        assert!((even[0] - 0.25).abs() < 1e-12);
        // One dominating fat pipe: Y -> close to 1.
        let mut g2 = MultiGraph::new();
        g2.add_nodes(6);
        g2.add_edge_weighted(n(0), n(1), 97).unwrap();
        for i in 2..=4 {
            g2.add_edge(n(0), n(i)).unwrap();
        }
        let dom = disparity(&g2.to_csr());
        assert!(dom[0] > 0.9, "Y = {}", dom[0]);
        // Isolated node: 0.
        assert_eq!(even[5], 0.0);
    }

    #[test]
    fn disparity_bounds() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(19);
        let mut g = MultiGraph::new();
        g.add_nodes(25);
        for _ in 0..80 {
            let u = rng.gen_range(0..25);
            let v = rng.gen_range(0..25);
            if u != v {
                let _ = g.add_edge_weighted(NodeId::new(u), NodeId::new(v), rng.gen_range(1..9));
            }
        }
        let csr = g.to_csr();
        for (v, &y) in disparity(&csr).iter().enumerate() {
            let k = csr.degree(v);
            if k > 0 {
                assert!(y >= 1.0 / k as f64 - 1e-12, "Y below 1/k at {v}");
                assert!(y <= 1.0 + 1e-12, "Y above 1 at {v}");
            }
        }
    }

    #[test]
    fn strength_ccdf_shape() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let c = WeightedStats::measure(&g).strength_ccdf();
        assert_eq!(c.values, vec![1.0, 2.0]);
        assert_eq!(c.ccdf, vec![1.0, 1.0 / 3.0]);
    }
}
