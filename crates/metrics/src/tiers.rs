//! Heuristic AS-tier classification from the k-core hierarchy.
//!
//! Operationally the AS ecosystem is stratified: a small clique of tier-1
//! transit-free backbones, a band of regional transit providers, and a
//! customer fringe. With no routing-policy data (customer/provider edges are
//! not modeled — see DESIGN.md §6), the standard structural proxy is the
//! k-core index (Carmi et al., PNAS 2007: "medusa" decomposition): the
//! innermost core is the backbone, the 1-shell (plus isolated leaves) is
//! the fringe, everything in between is transit.

use crate::kcore::KCoreDecomposition;
use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Structural tier of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Innermost-core member (backbone / tier-1 proxy).
    Backbone,
    /// Intermediate shells (transit / tier-2 proxy).
    Transit,
    /// 1-shell and isolated nodes (customer fringe).
    Fringe,
}

/// Tier assignment for every node plus summary counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierDecomposition {
    /// Tier per node.
    pub tier: Vec<Tier>,
    /// Number of backbone nodes.
    pub backbone: usize,
    /// Number of transit nodes.
    pub transit: usize,
    /// Number of fringe nodes.
    pub fringe: usize,
    /// Core index separating backbone from transit (the coreness).
    pub backbone_core: u32,
}

impl TierDecomposition {
    /// Classifies every node of `g`.
    pub fn measure(g: &Csr) -> Self {
        let decomposition = KCoreDecomposition::measure(g);
        Self::from_kcore(&decomposition)
    }

    /// Classifies from an existing k-core decomposition.
    pub fn from_kcore(decomposition: &KCoreDecomposition) -> Self {
        let top = decomposition.coreness();
        let tier: Vec<Tier> = decomposition
            .core
            .iter()
            .map(|&c| {
                if top >= 2 && c == top {
                    Tier::Backbone
                } else if c <= 1 {
                    Tier::Fringe
                } else {
                    Tier::Transit
                }
            })
            .collect();
        let count = |t: Tier| tier.iter().filter(|&&x| x == t).count();
        TierDecomposition {
            backbone: count(Tier::Backbone),
            transit: count(Tier::Transit),
            fringe: count(Tier::Fringe),
            backbone_core: top,
            tier,
        }
    }

    /// Fraction of nodes in the fringe (AS maps: the large majority).
    pub fn fringe_fraction(&self) -> f64 {
        if self.tier.is_empty() {
            0.0
        } else {
            self.fringe as f64 / self.tier.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_with_tails_stratifies() {
        // K5 core (0..5), transit ring hanging off it, leaf fringe.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        // Transit: a triangle attached to the clique (2-core, not 4-core).
        edges.extend([(5, 6), (6, 7), (5, 7), (0, 5)]);
        // Fringe: leaves.
        edges.extend([(1, 8), (2, 9)]);
        let g = Csr::from_edges(10, &edges);
        let t = TierDecomposition::measure(&g);
        assert_eq!(t.backbone, 5);
        assert_eq!(t.transit, 3);
        assert_eq!(t.fringe, 2);
        assert_eq!(t.backbone_core, 4);
        assert_eq!(t.tier[0], Tier::Backbone);
        assert_eq!(t.tier[6], Tier::Transit);
        assert_eq!(t.tier[8], Tier::Fringe);
    }

    #[test]
    fn tree_is_all_fringe() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (2, 4)]);
        let t = TierDecomposition::measure(&g);
        assert_eq!(t.fringe, 5);
        assert_eq!(t.backbone, 0);
        assert!((t.fringe_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_partition_the_graph() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(23);
        let mut edges = Vec::new();
        for i in 0..100 {
            for j in (i + 1)..100 {
                if rng.gen_range(0.0..1.0) < 0.05 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(100, &edges);
        let t = TierDecomposition::measure(&g);
        assert_eq!(t.backbone + t.transit + t.fringe, 100);
        assert_eq!(t.tier.len(), 100);
    }

    #[test]
    fn empty_graph() {
        let t = TierDecomposition::measure(&Csr::from_edges(0, &[]));
        assert_eq!(t.backbone + t.transit + t.fringe, 0);
        assert_eq!(t.fringe_fraction(), 0.0);
    }

    #[test]
    fn as_like_graph_is_fringe_dominated_with_small_backbone() {
        use inet_generators::{Generator, InetLike};
        let mut rng = inet_stats::rng::seeded_rng(29);
        let net = InetLike::as_map_2001(3000).generate(&mut rng);
        let (g, _) = inet_graph::traversal::giant_component(&net.graph.to_csr());
        let t = TierDecomposition::measure(&g);
        assert!(t.fringe_fraction() > 0.4, "fringe {}", t.fringe_fraction());
        assert!(
            t.backbone < g.node_count() / 20,
            "backbone too large: {}",
            t.backbone
        );
        assert!(t.backbone >= 3, "backbone vanished");
    }
}
