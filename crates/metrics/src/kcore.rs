//! k-core decomposition.
//!
//! The `k`-core is the maximal subgraph in which every node has degree at
//! least `k` inside the subgraph. Peeling cores recursively assigns each
//! node a *core number* (the largest `k` whose core contains it); the
//! maximum core number is the graph's **coreness**, and the population of
//! each shell (`core number == k`) profiles the hierarchy — the observable
//! the LANET-VI visualizations of Internet maps render.
//!
//! Implemented with the Batagelj–Zaveršnik bucket algorithm, `O(N + E)`.

use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Result of a k-core decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KCoreDecomposition {
    /// Core number of each node.
    pub core: Vec<u32>,
    /// `shell_sizes[k]` = number of nodes whose core number is exactly `k`.
    pub shell_sizes: Vec<usize>,
}

impl KCoreDecomposition {
    /// Decomposes `g`.
    pub fn measure(g: &Csr) -> Self {
        let n = g.node_count();
        if n == 0 {
            return KCoreDecomposition {
                core: Vec::new(),
                shell_sizes: Vec::new(),
            };
        }
        // Batagelj–Zaveršnik: bucket sort nodes by current degree, peel in
        // ascending order, decrementing neighbors' effective degrees.
        let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
        let max_deg = *degree.iter().max().expect("n > 0") as usize;
        let mut bin = vec![0usize; max_deg + 2];
        for &d in &degree {
            bin[d as usize] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        // pos[v] = position of v in vert; vert sorted by degree.
        let mut vert = vec![0u32; n];
        let mut pos = vec![0usize; n];
        {
            let mut next = bin.clone();
            for v in 0..n {
                let d = degree[v] as usize;
                pos[v] = next[d];
                vert[next[d]] = v as u32;
                next[d] += 1;
            }
        }
        for i in 0..n {
            let v = vert[i] as usize;
            for &u in g.neighbors(v) {
                let u = u as usize;
                if degree[u] > degree[v] {
                    // Move u one bucket down: swap with the first element of
                    // its current bucket, then shrink the bucket.
                    let du = degree[u] as usize;
                    let pu = pos[u];
                    let pw = bin[du];
                    let w = vert[pw] as usize;
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u] = pw;
                        pos[w] = pu;
                    }
                    bin[du] += 1;
                    degree[u] -= 1;
                }
            }
        }
        // After peeling, degree[v] is the core number.
        let core = degree;
        let coreness = *core.iter().max().expect("n > 0") as usize;
        let mut shell_sizes = vec![0usize; coreness + 1];
        for &c in &core {
            shell_sizes[c as usize] += 1;
        }
        KCoreDecomposition { core, shell_sizes }
    }

    /// Maximum core number (0 for an empty graph).
    pub fn coreness(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes in the `k`-core (core number ≥ `k`).
    pub fn core_size(&self, k: u32) -> usize {
        self.core.iter().filter(|&&c| c >= k).count()
    }

    /// Extracts the `k`-core as a subgraph plus the `new -> old` node map.
    pub fn core_subgraph(&self, g: &Csr, k: u32) -> (Csr, Vec<usize>) {
        let keep: Vec<bool> = self.core.iter().map(|&c| c >= k).collect();
        g.induced_subgraph(&keep)
    }

    /// `(k, shell size, cumulative k-core size)` rows for every shell,
    /// ascending in `k` — the quantitative content of a k-core
    /// visualization.
    pub fn shell_profile(&self) -> Vec<(u32, usize, usize)> {
        let mut rows = Vec::new();
        let mut cumulative: usize = self.core.len();
        for (k, &size) in self.shell_sizes.iter().enumerate() {
            rows.push((k as u32, size, cumulative));
            cumulative -= size;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_one_core() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (2, 4)]);
        let d = KCoreDecomposition::measure(&g);
        assert!(d.core.iter().all(|&c| c == 1));
        assert_eq!(d.coreness(), 1);
        assert_eq!(d.shell_sizes, vec![0, 5]);
    }

    #[test]
    fn clique_core_number_is_n_minus_1() {
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let d = KCoreDecomposition::measure(&Csr::from_edges(6, &edges));
        assert!(d.core.iter().all(|&c| c == 5));
        assert_eq!(d.coreness(), 5);
    }

    #[test]
    fn clique_with_pendant_tail() {
        // K4 on 0..4 plus path 3-4-5.
        let mut edges = vec![(3, 4), (4, 5)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let d = KCoreDecomposition::measure(&Csr::from_edges(6, &edges));
        assert_eq!(&d.core[0..4], &[3, 3, 3, 3]);
        assert_eq!(d.core[4], 1);
        assert_eq!(d.core[5], 1);
        assert_eq!(d.core_size(3), 4);
        assert_eq!(d.core_size(1), 6);
        assert_eq!(d.shell_sizes, vec![0, 2, 0, 4]);
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let d = KCoreDecomposition::measure(&g);
        assert_eq!(d.core, vec![1, 1, 0, 0]);
        assert_eq!(d.shell_sizes, vec![2, 2]);
    }

    #[test]
    fn disconnected_components_decompose_independently() {
        // K4 (core 3) + triangle (core 2) + path (core 1) + 2 isolated
        // nodes, all in one disconnected graph: the decomposition of each
        // component must be unaffected by the others.
        let mut edges = Vec::new();
        for i in 0..4usize {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        edges.extend([(4, 5), (5, 6), (4, 6)]); // triangle
        edges.extend([(7, 8), (8, 9)]); // path
        let g = Csr::from_edges(12, &edges); // 10, 11 isolated
        let d = KCoreDecomposition::measure(&g);
        assert_eq!(&d.core[0..4], &[3, 3, 3, 3]);
        assert_eq!(&d.core[4..7], &[2, 2, 2]);
        assert_eq!(&d.core[7..10], &[1, 1, 1]);
        assert_eq!(&d.core[10..12], &[0, 0]);
        assert_eq!(d.coreness(), 3);
        assert_eq!(d.shell_sizes, vec![2, 3, 3, 4]);
    }

    #[test]
    fn core_subgraph_spans_multiple_components() {
        // Two disjoint triangles + a bridgeless path: the 2-core subgraph
        // is itself disconnected and must keep BOTH triangles.
        let edges = [
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (6, 7),
            (7, 8),
        ];
        let g = Csr::from_edges(9, &edges);
        let d = KCoreDecomposition::measure(&g);
        let (core2, map) = d.core_subgraph(&g, 2);
        assert_eq!(core2.node_count(), 6);
        assert_eq!(core2.edge_count(), 6);
        assert!(core2.validate());
        let mapped: Vec<usize> = map.clone();
        assert_eq!(mapped, vec![0, 1, 2, 3, 4, 5]);
        // Each extracted node keeps exactly its in-core neighbors.
        for v in 0..core2.node_count() {
            assert_eq!(core2.degree(v), 2, "triangle node {v}");
        }
        // k above the coreness: empty subgraph, not a panic.
        let (core9, map9) = d.core_subgraph(&g, 9);
        assert_eq!(core9.node_count(), 0);
        assert!(map9.is_empty());
        // k = 0 keeps everything.
        let (core0, _) = d.core_subgraph(&g, 0);
        assert_eq!(core0.node_count(), 9);
    }

    #[test]
    fn core_subgraph_extraction() {
        let mut edges = vec![(3, 4), (4, 5)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let g = Csr::from_edges(6, &edges);
        let d = KCoreDecomposition::measure(&g);
        let (core3, map) = d.core_subgraph(&g, 3);
        assert_eq!(core3.node_count(), 4);
        assert_eq!(core3.edge_count(), 6);
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shell_profile_rows() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let d = KCoreDecomposition::measure(&g);
        assert_eq!(d.shell_profile(), vec![(0, 2, 4), (1, 2, 2)]);
    }

    #[test]
    fn empty_graph() {
        let d = KCoreDecomposition::measure(&Csr::from_edges(0, &[]));
        assert_eq!(d.coreness(), 0);
        assert!(d.shell_sizes.is_empty());
        assert!(d.shell_profile().is_empty());
    }

    /// The k-core returned must actually satisfy the degree property: every
    /// node of the k-core subgraph has internal degree >= k.
    #[test]
    fn core_property_holds_on_random_graph() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(42);
        let n = 80;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.08 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let d = KCoreDecomposition::measure(&g);
        for k in 1..=d.coreness() {
            let (sub, _) = d.core_subgraph(&g, k);
            for v in 0..sub.node_count() {
                assert!(
                    sub.degree(v) >= k as usize,
                    "node {v} in {k}-core has internal degree {}",
                    sub.degree(v)
                );
            }
        }
        // Maximality at the top shell: the (coreness+1)-core is empty.
        assert_eq!(d.core_size(d.coreness() + 1), 0);
    }
}
