//! # inet-metrics — topology measures for Internet maps
//!
//! Implements the full measurement battery used to validate Internet
//! topology models, on [`inet_graph::Csr`] snapshots:
//!
//! | Module | Measures |
//! |---|---|
//! | [`degree`] | degree distribution, CCDF, moments, power-law tail fit |
//! | [`clustering`] | triangles per node, local clustering, `c(k)` spectrum, transitivity |
//! | [`knn`] | average nearest-neighbors degree `k̄_nn(k)`, assortativity coefficient |
//! | [`kcore`] | k-core decomposition (Batagelj–Zaveršnik), shell sizes, coreness |
//! | [`mod@betweenness`] | Brandes betweenness centrality, exact and sampled, optionally parallel |
//! | [`centrality`] | closeness, harmonic, eigenvector centralities |
//! | [`paths`] | shortest-path-length distribution, average path length, diameter, efficiency |
//! | [`loops`] | census of simple cycles of length 3, 4, 5 (the `N_h(N)` scaling observable) |
//! | [`richclub`] | rich-club connectivity `φ(k)` and its rewired-null normalization |
//! | [`tiers`] | heuristic backbone/transit/fringe stratification from the core hierarchy |
//! | [`randomize`] | degree-preserving double-edge-swap rewiring |
//! | [`weighted`] | strength distribution, degree–strength scaling `k ∝ b^μ` |
//! | [`report`] | one-call [`report::TopologyReport`] aggregating the headline scalars |
//! | [`robust`] | panic-isolated, deadline-annotated battery ([`robust::measure_robust`]) with per-kernel [`robust::KernelStatus`] |
//!
//! Algorithmic notes:
//!
//! * Everything runs on sorted CSR neighbor lists; triangle counting is an
//!   edge-iterator merge, `O(Σ_(u,v)∈E (d_u + d_v))`.
//! * The cycle census uses exact combinatorial formulas (Harary–Manvel) with
//!   sparse per-node `A²` rows — no dense matrix is ever formed; the test
//!   suite cross-validates against brute-force enumeration on small graphs.
//! * Betweenness, path statistics, closeness, clustering, `k̄_nn`, the cycle
//!   census and rich-club fan their work out over threads through the
//!   dependency-free work-stealing module [`inet_graph::parallel`]; partial
//!   results merge in a fixed chunk order, so every number is **bit-identical
//!   for any thread count**.
//! * [`mod@engine`] fuses path statistics, betweenness, and closeness into
//!   one Brandes BFS sweep per sampled source instead of one sweep per
//!   metric.
//!
//! Measures are defined on the *simple* topology (distinct neighbors), the
//! convention of the Internet-topology literature; weighted observables live
//! in [`weighted`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod betweenness;
pub mod centrality;
pub mod clustering;
pub mod degree;
pub mod engine;
pub mod kcore;
pub mod knn;
pub mod loops;
pub mod paths;
pub mod randomize;
pub mod report;
pub mod richclub;
pub mod robust;
pub mod tiers;
pub mod weighted;

pub use betweenness::{betweenness, betweenness_sampled};
pub use clustering::ClusteringStats;
pub use degree::DegreeStats;
pub use engine::{paths_and_betweenness, FusedReport};
pub use kcore::KCoreDecomposition;
pub use knn::KnnStats;
pub use loops::CycleCensus;
pub use paths::PathStats;
pub use report::{ReportOptions, TopologyReport};
pub use robust::{
    measure_robust, measure_robust_cancellable, KernelSelection, KernelStatus, RobustOptions,
    RobustReport,
};
