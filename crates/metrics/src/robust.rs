//! Panic-isolated, deadline-aware wrapper around the metrics battery.
//!
//! [`measure_robust`] runs the same six kernels as
//! [`TopologyReport::measure_with`], but each kernel is fenced:
//!
//! * a panic inside one kernel is caught and surfaced as
//!   [`KernelStatus::Failed`] while every other kernel still reports its
//!   numbers (the failing kernel's fields fall back to the same neutral
//!   values an empty graph produces);
//! * a kernel that finishes but overruns the configured soft deadline is
//!   annotated [`KernelStatus::Degraded`] — the numbers are still exact,
//!   the status tells the operator the budget was blown;
//! * the `metrics.kernel` failpoint (scope = kernel index) lets the chaos
//!   suite force any single kernel to fail deterministically;
//! * a [`KernelSelection`] in the options can deselect kernels entirely
//!   (scenario pipelines measure only what they ask for); deselected
//!   kernels are annotated [`KernelStatus::Skipped`].
//!
//! The numeric content of the report stays bit-identical to the plain
//! battery for every thread count; only the status annotations carry
//! timing, so determinism checks compare [`RobustReport::report`].

use crate::clustering::ClusteringStats;
use crate::degree::DegreeStats;
use crate::engine::paths_and_betweenness;
use crate::kcore::KCoreDecomposition;
use crate::knn::KnnStats;
use crate::report::{ReportOptions, TopologyReport};
use inet_exec::{run_fenced, StopWatch, Task, TaskError};
use inet_graph::traversal::giant_fraction;
use inet_graph::CancelToken;
use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Kernel names, indexed by the `metrics.kernel` failpoint scope.
pub const KERNEL_NAMES: [&str; 6] = [
    "degree",
    "clustering",
    "knn",
    "kcore",
    "paths+betweenness",
    "giant",
];

/// Outcome of one metric kernel inside [`measure_robust`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelStatus {
    /// Finished within budget; wall-clock spent.
    Ok {
        /// Elapsed milliseconds.
        millis: u64,
    },
    /// Finished, but past the soft deadline — results are exact, the
    /// budget was not.
    Degraded {
        /// Elapsed milliseconds.
        millis: u64,
        /// The soft deadline that was overrun.
        deadline_millis: u64,
    },
    /// The kernel died (caught panic) or an injected fault fired; its
    /// fields in the report hold neutral fallback values.
    Failed {
        /// Best-effort failure description.
        reason: String,
    },
    /// The kernel was deselected by [`RobustOptions::selection`] and never
    /// ran; its fields hold the same neutral fallback values a failure
    /// would leave.
    Skipped,
    /// A cancel token fired before this kernel started
    /// ([`measure_robust_cancellable`]); its fields hold neutral values and
    /// a resumed run recomputes them.
    Cancelled,
}

impl KernelStatus {
    /// True when the kernel ran to completion (its report fields are real
    /// measurements, not neutral fallbacks).
    pub fn produced_values(&self) -> bool {
        matches!(
            self,
            KernelStatus::Ok { .. } | KernelStatus::Degraded { .. }
        )
    }
}

/// Which of the six kernels [`measure_robust`] should run, indexed like
/// [`KERNEL_NAMES`]. The default selects all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSelection(pub [bool; 6]);

impl Default for KernelSelection {
    fn default() -> Self {
        KernelSelection([true; 6])
    }
}

impl KernelSelection {
    /// Selects every kernel (the default).
    pub fn all() -> Self {
        Self::default()
    }

    /// Selects exactly the named kernels (names from [`KERNEL_NAMES`]).
    /// Rejects unknown names so scenario typos fail loudly.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<Self, String> {
        let mut mask = [false; 6];
        for name in names {
            let name = name.as_ref();
            match KERNEL_NAMES.iter().position(|&k| k == name) {
                Some(i) => mask[i] = true,
                None => {
                    return Err(format!(
                        "unknown metric kernel '{name}' (kernels: {})",
                        KERNEL_NAMES.join(" ")
                    ))
                }
            }
        }
        Ok(KernelSelection(mask))
    }

    /// Whether the kernel at `index` is selected.
    pub fn is_selected(&self, index: usize) -> bool {
        self.0.get(index).copied().unwrap_or(false)
    }
}

/// Options for [`measure_robust`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RobustOptions {
    /// Sampling effort, forwarded to the kernels.
    pub report: ReportOptions,
    /// Per-kernel soft deadline in milliseconds. A kernel that overruns it
    /// still completes (results stay deterministic) but is annotated
    /// [`KernelStatus::Degraded`]. `None` disables the check.
    pub soft_deadline_millis: Option<u64>,
    /// Which kernels to run; deselected kernels are annotated
    /// [`KernelStatus::Skipped`] and leave neutral values in the report.
    pub selection: KernelSelection,
}

/// A [`TopologyReport`] plus per-kernel status annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustReport {
    /// The aggregate report. Fields owned by a failed kernel hold the same
    /// neutral values an empty graph would produce.
    pub report: TopologyReport,
    /// One `(kernel name, status)` entry per kernel, in
    /// [`KERNEL_NAMES`] order.
    pub kernels: Vec<(&'static str, KernelStatus)>,
}

impl RobustReport {
    /// True when no kernel failed (skipped kernels are fine: they were
    /// deselected on purpose, not lost).
    pub fn fully_ok(&self) -> bool {
        !self
            .kernels
            .iter()
            .any(|(_, s)| matches!(s, KernelStatus::Failed { .. }))
    }

    /// The failed kernels, `(name, reason)` pairs.
    pub fn failures(&self) -> Vec<(&'static str, &str)> {
        self.kernels
            .iter()
            .filter_map(|(name, s)| match s {
                KernelStatus::Failed { reason } => Some((*name, reason.as_str())),
                _ => None,
            })
            .collect()
    }

    /// The kernels that overran their soft deadline:
    /// `(name, elapsed ms, deadline ms)` triples. Their numbers are exact;
    /// only the budget was blown — report sinks surface these instead of
    /// silently omitting the overrun.
    pub fn deadline_exceeded(&self) -> Vec<(&'static str, u64, u64)> {
        self.kernels
            .iter()
            .filter_map(|(name, s)| match s {
                KernelStatus::Degraded {
                    millis,
                    deadline_millis,
                } => Some((*name, *millis, *deadline_millis)),
                _ => None,
            })
            .collect()
    }

    /// True when a cancel token stopped at least one kernel from running.
    pub fn interrupted(&self) -> bool {
        self.kernels
            .iter()
            .any(|(_, s)| matches!(s, KernelStatus::Cancelled))
    }

    /// Renders one `kernel: status` line per kernel.
    pub fn render_status(&self) -> String {
        self.kernels
            .iter()
            .map(|(name, s)| match s {
                KernelStatus::Ok { millis } => format!("{name}: ok ({millis} ms)"),
                KernelStatus::Degraded {
                    millis,
                    deadline_millis,
                } => format!("{name}: degraded ({millis} ms > {deadline_millis} ms deadline)"),
                KernelStatus::Failed { reason } => format!("{name}: FAILED ({reason})"),
                KernelStatus::Skipped => format!("{name}: skipped"),
                KernelStatus::Cancelled => format!("{name}: cancelled"),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs one kernel behind the shared `inet-exec` fence. A deselected
/// kernel never runs (no failpoint consultation either — it cannot fail).
fn run_kernel<T>(
    index: usize,
    opt: &RobustOptions,
    cancel: &CancelToken,
    f: impl FnOnce() -> T,
) -> (Option<T>, KernelStatus) {
    if !opt.selection.is_selected(index) {
        return (None, KernelStatus::Skipped);
    }
    // Cancellation is polled per kernel: an in-flight kernel finishes (its
    // numbers stay exact), the remaining ones are marked Cancelled.
    if cancel.is_cancelled() {
        return (None, KernelStatus::Cancelled);
    }
    let watch = StopWatch::start(opt.soft_deadline_millis);
    // Both failpoints sit inside the fence so a Panic action is contained
    // exactly like a real kernel panic: the layer-specific `metrics.kernel`
    // (kept for existing chaos plans) and the shared `exec.task` consulted
    // by `run_fenced` itself, both keyed by the kernel index.
    let task = Task::new("metrics.kernel", index as u64);
    match run_fenced(&task, || {
        inet_fault::check("metrics.kernel", index as u64).map(|()| f())
    }) {
        Ok(Ok(value)) => {
            let reading = watch.read();
            let status = match reading.overrun {
                Some(deadline_millis) => KernelStatus::Degraded {
                    millis: reading.millis,
                    deadline_millis,
                },
                None => KernelStatus::Ok {
                    millis: reading.millis,
                },
            };
            (Some(value), status)
        }
        Ok(Err(e)) => (
            None,
            KernelStatus::Failed {
                reason: e.to_string(),
            },
        ),
        Err(TaskError::Fault(e)) => (
            None,
            KernelStatus::Failed {
                reason: e.to_string(),
            },
        ),
        Err(TaskError::Panicked(reason)) => (None, KernelStatus::Failed { reason }),
    }
}

/// Measures the full battery with per-kernel panic isolation and deadline
/// annotation. A kernel that fails (panic or injected fault) zeroes only
/// its own fields; the other kernels' numbers are reported normally.
pub fn measure_robust(g: &Csr, opt: RobustOptions) -> RobustReport {
    measure_robust_cancellable(g, opt, &CancelToken::new())
}

/// [`measure_robust`] with cooperative cancellation: `cancel` is polled
/// before each kernel starts, so cancel latency is bounded by one kernel.
/// Kernels that never ran are annotated [`KernelStatus::Cancelled`]; the
/// ones that finished keep their exact (bit-identical) numbers.
pub fn measure_robust_cancellable(
    g: &Csr,
    opt: RobustOptions,
    cancel: &CancelToken,
) -> RobustReport {
    let o = opt.report;

    let (degree, s_degree) = run_kernel(0, &opt, cancel, || DegreeStats::measure(g));
    let (clustering, s_clustering) = run_kernel(1, &opt, cancel, || {
        ClusteringStats::measure_threaded(g, o.threads)
    });
    let (knn, s_knn) = run_kernel(2, &opt, cancel, || KnnStats::measure_threaded(g, o.threads));
    let (kcore, s_kcore) = run_kernel(3, &opt, cancel, || KCoreDecomposition::measure(g));
    let (fused, s_fused) = run_kernel(4, &opt, cancel, || {
        paths_and_betweenness(g, o.path_sources, o.betweenness_sources, o.threads)
    });
    let (giant, s_giant) = run_kernel(5, &opt, cancel, || giant_fraction(g));

    let (mean_degree, max_degree, gamma) = match &degree {
        Some(d) => (d.mean, d.max, d.powerlaw_fit().map(|f| f.gamma)),
        None => (0.0, 0, None),
    };
    let (mean_clustering, transitivity, triangles) = match &clustering {
        Some(c) => (c.mean_local, c.transitivity, c.triangle_count),
        None => (0.0, 0.0, 0),
    };
    let assortativity = knn.as_ref().map(|k| k.assortativity).unwrap_or(0.0);
    let coreness = kcore.as_ref().map(|k| k.coreness()).unwrap_or(0);
    let (mean_path_length, diameter, max_betweenness) = match &fused {
        Some(f) => (
            f.paths.mean,
            f.paths.diameter,
            f.betweenness.iter().copied().fold(0.0, f64::max),
        ),
        None => (0.0, 0, 0.0),
    };
    let giant_fraction = giant.unwrap_or(0.0);

    RobustReport {
        report: TopologyReport {
            nodes: g.node_count(),
            edges: g.edge_count(),
            mean_degree,
            max_degree,
            gamma,
            mean_clustering,
            transitivity,
            assortativity,
            mean_path_length,
            diameter,
            coreness,
            giant_fraction,
            triangles,
            max_betweenness,
        },
        kernels: vec![
            (KERNEL_NAMES[0], s_degree),
            (KERNEL_NAMES[1], s_clustering),
            (KERNEL_NAMES[2], s_knn),
            (KERNEL_NAMES[3], s_kcore),
            (KERNEL_NAMES[4], s_fused),
            (KERNEL_NAMES[5], s_giant),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn matches_the_plain_battery_when_nothing_fails() {
        let g = ring(60);
        let opt = ReportOptions {
            path_sources: 20,
            betweenness_sources: 10,
            threads: 2,
        };
        let plain = TopologyReport::measure_with(&g, opt);
        let robust = measure_robust(
            &g,
            RobustOptions {
                report: opt,
                soft_deadline_millis: None,
                selection: KernelSelection::all(),
            },
        );
        assert_eq!(robust.report, plain);
        assert!(robust.fully_ok());
        assert_eq!(robust.kernels.len(), KERNEL_NAMES.len());
    }

    #[test]
    fn report_field_is_thread_count_invariant() {
        let g = ring(80);
        let make = |threads| {
            measure_robust(
                &g,
                RobustOptions {
                    report: ReportOptions {
                        path_sources: 16,
                        betweenness_sources: 8,
                        threads,
                    },
                    soft_deadline_millis: None,
                    selection: KernelSelection::all(),
                },
            )
            .report
        };
        let base = make(1);
        for threads in [2, 7] {
            assert_eq!(base, make(threads), "threads {threads}");
        }
    }

    #[test]
    fn zero_deadline_marks_kernels_degraded_not_failed() {
        // With a 0 ms soft deadline every kernel overruns, but all values
        // must still be exact — degradation is an annotation, not a cut.
        let g = ring(40);
        let opt = ReportOptions {
            path_sources: 10,
            betweenness_sources: 5,
            threads: 1,
        };
        let robust = measure_robust(
            &g,
            RobustOptions {
                report: opt,
                soft_deadline_millis: Some(0),
                selection: KernelSelection::all(),
            },
        );
        assert!(robust.fully_ok());
        assert_eq!(robust.report, TopologyReport::measure_with(&g, opt));
        assert!(robust
            .kernels
            .iter()
            .any(|(_, s)| matches!(s, KernelStatus::Degraded { .. })));
        assert!(robust.render_status().contains("degraded"));
    }

    /// Acceptance check: force one kernel to fail through the failpoint —
    /// the report must still carry every other kernel's numbers, with the
    /// failing kernel marked and its fields neutral.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_kernel_failure_yields_partial_report() {
        let g = ring(50);
        let opt = ReportOptions {
            path_sources: 10,
            betweenness_sources: 5,
            threads: 2,
        };
        let plain = TopologyReport::measure_with(&g, opt);
        let _guard = inet_fault::install(inet_fault::FaultPlan::single(
            "metrics.kernel",
            Some(1), // the clustering kernel
            inet_fault::FaultAction::Error,
        ));
        let robust = measure_robust(
            &g,
            RobustOptions {
                report: opt,
                soft_deadline_millis: None,
                selection: KernelSelection::all(),
            },
        );
        assert!(!robust.fully_ok());
        let failures = robust.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "clustering");
        // Clustering fields fall back to neutral values...
        assert_eq!(robust.report.mean_clustering, 0.0);
        assert_eq!(robust.report.triangles, 0);
        // ...while every other kernel's numbers survive.
        assert_eq!(robust.report.mean_degree, plain.mean_degree);
        assert_eq!(robust.report.coreness, plain.coreness);
        assert_eq!(robust.report.diameter, plain.diameter);
        assert_eq!(robust.report.giant_fraction, plain.giant_fraction);
        assert!(robust.render_status().contains("FAILED"));
    }

    #[test]
    fn status_render_lists_every_kernel() {
        let g = ring(20);
        let text = measure_robust(&g, RobustOptions::default()).render_status();
        for name in KERNEL_NAMES {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn selection_skips_kernels_without_losing_the_rest() {
        let g = ring(60);
        let opt = ReportOptions {
            path_sources: 20,
            betweenness_sources: 10,
            threads: 2,
        };
        let plain = TopologyReport::measure_with(&g, opt);
        let selection = KernelSelection::from_names(&["degree", "giant"]).expect("known kernels");
        let robust = measure_robust(
            &g,
            RobustOptions {
                report: opt,
                soft_deadline_millis: None,
                selection,
            },
        );
        // Skipping is not failing.
        assert!(robust.fully_ok());
        assert!(robust.failures().is_empty());
        // Selected kernels keep their exact numbers.
        assert_eq!(robust.report.mean_degree, plain.mean_degree);
        assert_eq!(robust.report.giant_fraction, plain.giant_fraction);
        // Deselected kernels report Skipped and neutral values.
        assert_eq!(robust.report.mean_clustering, 0.0);
        assert_eq!(robust.report.diameter, 0);
        let skipped: Vec<&str> = robust
            .kernels
            .iter()
            .filter(|(_, s)| matches!(s, KernelStatus::Skipped))
            .map(|(name, _)| *name)
            .collect();
        assert_eq!(
            skipped,
            vec!["clustering", "knn", "kcore", "paths+betweenness"]
        );
        assert!(robust.render_status().contains("skipped"));
    }

    #[test]
    fn pre_cancelled_measurement_marks_every_kernel_cancelled() {
        let g = ring(30);
        let token = CancelToken::new();
        token.cancel();
        let robust = measure_robust_cancellable(&g, RobustOptions::default(), &token);
        assert!(robust.interrupted());
        assert!(robust.fully_ok(), "cancelled is not failed");
        for (name, s) in &robust.kernels {
            assert_eq!(s, &KernelStatus::Cancelled, "{name}");
        }
        assert!(robust.render_status().contains("cancelled"));
        // Neutral values throughout, like an all-skipped run.
        assert_eq!(robust.report.mean_degree, 0.0);
        assert_eq!(robust.report.diameter, 0);
    }

    #[test]
    fn fresh_token_changes_nothing() {
        let g = ring(40);
        let opt = RobustOptions::default();
        let plain = measure_robust(&g, opt);
        let tokened = measure_robust_cancellable(&g, opt, &CancelToken::new());
        assert!(!tokened.interrupted());
        assert_eq!(tokened.report, plain.report);
    }

    #[test]
    fn deadline_exceeded_lists_degraded_kernels() {
        let g = ring(40);
        let robust = measure_robust(
            &g,
            RobustOptions {
                report: ReportOptions {
                    path_sources: 10,
                    betweenness_sources: 5,
                    threads: 1,
                },
                soft_deadline_millis: Some(0),
                selection: KernelSelection::all(),
            },
        );
        let over = robust.deadline_exceeded();
        assert!(!over.is_empty(), "a 0 ms deadline must be overrun");
        for (name, _millis, deadline) in &over {
            assert!(KERNEL_NAMES.contains(name));
            assert_eq!(*deadline, 0);
        }
        // Without a deadline nothing is reported.
        assert!(measure_robust(&g, RobustOptions::default())
            .deadline_exceeded()
            .is_empty());
    }

    #[test]
    fn selection_rejects_unknown_kernel_names() {
        let err = KernelSelection::from_names(&["degree", "bogus"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("kernels:"), "{err}");
    }
}
