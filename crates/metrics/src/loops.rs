//! Census of short simple cycles (loops of size 3, 4, 5).
//!
//! Bianconi, Caldarelli & Capocci (PRE 71, 066116, 2005) measured the
//! scaling of the number of `h`-cycles with system size on Internet AS maps,
//! `N_h(N) ∼ N^{ξ(h)}`, and found it a sharp discriminator between models.
//! This module computes the exact counts:
//!
//! * `C₃` — from the per-node triangle counts.
//! * `C₄ = ½ Σ_{u<w} C(p₂(u,w), 2)` where `p₂` counts common neighbors:
//!   every 4-cycle is identified by its two diagonals.
//! * `C₅ = [tr(A⁵) − 30·C₃ − 10·Σ_v t_v (d_v − 2)] / 10` (Harary–Manvel):
//!   closed 5-walks decompose into 5-cycles plus triangle excursions.
//!
//! `tr(A⁵)` is evaluated with one sparse `A²` row per node — no dense matrix
//! — via `(A⁵)_vv = Σ_{x,y} (A²)_{vx} A_{xy} (A²)_{yv}`. Costs grow with the
//! square of hub degrees; exact counting up to `N ≈ 2·10⁴` heavy-tailed
//! nodes is practical in release builds. The test suite validates every
//! formula against brute-force cycle enumeration.

use crate::clustering::ClusteringStats;
use inet_exec::Executor;
use inet_graph::Csr;
use serde::{Deserialize, Serialize};

/// Exact counts of simple cycles of length 3, 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCensus {
    /// Number of triangles.
    pub c3: u64,
    /// Number of simple 4-cycles.
    pub c4: u64,
    /// Number of simple 5-cycles.
    pub c5: u64,
}

impl CycleCensus {
    /// Counts 3-, 4- and 5-cycles of `g`.
    pub fn measure(g: &Csr) -> Self {
        Self::measure_threaded(g, 1)
    }

    /// [`CycleCensus::measure`] with the per-node `A²`-row pass fanned out
    /// over `threads` work-stealing workers.
    pub fn measure_threaded(g: &Csr, threads: usize) -> Self {
        let clustering = ClusteringStats::measure_threaded(g, threads);
        Self::measure_with_clustering_threaded(g, &clustering, threads)
    }

    /// Like [`CycleCensus::measure`], reusing already-computed clustering
    /// statistics (triangle counts).
    pub fn measure_with_clustering(g: &Csr, clustering: &ClusteringStats) -> Self {
        Self::measure_with_clustering_threaded(g, clustering, 1)
    }

    /// [`CycleCensus::measure_with_clustering`] with the root nodes of the
    /// sparse `A²` rows fanned out over `threads` workers. All accumulations
    /// are integers, so the census is identical for any thread count.
    pub fn measure_with_clustering_threaded(
        g: &Csr,
        clustering: &ClusteringStats,
        threads: usize,
    ) -> Self {
        let n = g.node_count();
        let c3 = clustering.triangle_count;

        // Per-worker scratch: counts[w] = (A²)_{vw} for the current v;
        // touched tracks the nonzero support for O(support) reset.
        let partials = Executor::new(threads).map_ordered(
            n,
            || (vec![0u32; n], Vec::<u32>::new()),
            |(counts, touched), range| {
                let mut c4_ordered: u128 = 0;
                let mut tr5: u128 = 0;
                for v in range {
                    // Build the sparse A² row of v (including the diagonal
                    // d_v).
                    for &u in g.neighbors(v) {
                        for &w in g.neighbors(u as usize) {
                            if counts[w as usize] == 0 {
                                touched.push(w);
                            }
                            counts[w as usize] += 1;
                        }
                    }
                    // C4: ordered-pair accumulation over w != v.
                    for &w in touched.iter() {
                        let c = counts[w as usize] as u128;
                        if w as usize != v && c >= 2 {
                            c4_ordered += c * (c - 1) / 2;
                        }
                    }
                    // tr(A⁵): Σ_x counts[x] Σ_{y ∈ N(x)} counts[y].
                    for &x in touched.iter() {
                        let cx = counts[x as usize] as u128;
                        if cx == 0 {
                            continue;
                        }
                        let mut inner: u128 = 0;
                        for &y in g.neighbors(x as usize) {
                            inner += counts[y as usize] as u128;
                        }
                        tr5 += cx * inner;
                    }
                    for &w in touched.iter() {
                        counts[w as usize] = 0;
                    }
                    touched.clear();
                }
                (c4_ordered, tr5)
            },
        );
        let (c4_ordered, tr5) = partials
            .into_iter()
            .fold((0u128, 0u128), |(a, b), (pa, pb)| (a + pa, b + pb));

        let c4 = (c4_ordered / 4) as u64;

        // Harary–Manvel correction terms.
        let mut excursions: u128 = 0; // Σ_v t_v (d_v − 2)
        for v in 0..n {
            let d = g.degree(v) as i128;
            let t = clustering.triangles[v] as i128;
            let term = t * (d - 2);
            debug_assert!(term >= 0, "t_v > 0 implies d_v >= 2");
            excursions += term as u128;
        }
        let numerator = tr5 as i128 - 30 * c3 as i128 - 10 * excursions as i128;
        debug_assert!(
            numerator >= 0 && numerator % 10 == 0,
            "tr(A^5) bookkeeping broke"
        );
        let c5 = (numerator / 10) as u64;

        CycleCensus { c3, c4, c5 }
    }

    /// Count for cycle length `h ∈ {3, 4, 5}`.
    pub fn count(&self, h: u32) -> Option<u64> {
        match h {
            3 => Some(self.c3),
            4 => Some(self.c4),
            5 => Some(self.c5),
            _ => None,
        }
    }
}

/// Brute-force census by exhaustive enumeration — exponential; intended for
/// validation on graphs with at most ~16 nodes.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes (would take forever).
pub fn brute_force_census(g: &Csr) -> CycleCensus {
    let n = g.node_count();
    assert!(n <= 24, "brute force is for tiny validation graphs only");
    let adj = |a: usize, b: usize| g.has_edge(a, b);

    let mut c3 = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj(a, b) {
                continue;
            }
            for c in (b + 1)..n {
                if adj(a, c) && adj(b, c) {
                    c3 += 1;
                }
            }
        }
    }

    // 4-cycles: choose the smallest vertex a, then an ordered pair of its
    // cycle-neighbors (b, d) with b < d, and the opposite vertex c.
    let mut c4 = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj(a, b) {
                continue;
            }
            for d in (b + 1)..n {
                if !adj(a, d) {
                    continue;
                }
                for c in (a + 1)..n {
                    if c != b && c != d && adj(b, c) && adj(d, c) {
                        c4 += 1;
                    }
                }
            }
        }
    }

    // 5-cycles: smallest vertex a, neighbors b < e on the cycle, middle
    // path b-c-d-e.
    let mut c5 = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj(a, b) {
                continue;
            }
            for e in (b + 1)..n {
                if !adj(a, e) {
                    continue;
                }
                for c in (a + 1)..n {
                    if c == b || c == e || !adj(b, c) {
                        continue;
                    }
                    for d in (a + 1)..n {
                        if d != b && d != c && d != e && adj(c, d) && adj(d, e) {
                            c5 += 1;
                        }
                    }
                }
            }
        }
    }
    CycleCensus { c3, c4, c5 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Csr::from_edges(n, &edges)
    }

    fn complete(n: usize) -> Csr {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn pure_cycles() {
        assert_eq!(
            CycleCensus::measure(&cycle(3)),
            CycleCensus {
                c3: 1,
                c4: 0,
                c5: 0
            }
        );
        assert_eq!(
            CycleCensus::measure(&cycle(4)),
            CycleCensus {
                c3: 0,
                c4: 1,
                c5: 0
            }
        );
        assert_eq!(
            CycleCensus::measure(&cycle(5)),
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 1
            }
        );
        assert_eq!(
            CycleCensus::measure(&cycle(6)),
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 0
            }
        );
    }

    #[test]
    fn trees_have_no_cycles() {
        let g = Csr::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        assert_eq!(
            CycleCensus::measure(&g),
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 0
            }
        );
    }

    #[test]
    fn complete_graph_closed_forms() {
        // K_n: C3 = C(n,3), C4 = 3·C(n,4), C5 = 12·C(n,5).
        for n in 4..=7 {
            let census = CycleCensus::measure(&complete(n));
            let choose =
                |n: u64, k: u64| -> u64 { (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1)) };
            assert_eq!(census.c3, choose(n as u64, 3), "K{n} triangles");
            assert_eq!(census.c4, 3 * choose(n as u64, 4), "K{n} squares");
            assert_eq!(census.c5, 12 * choose(n as u64, 5), "K{n} pentagons");
        }
    }

    #[test]
    fn petersen_graph() {
        // Petersen graph: girth 5, exactly 12 5-cycles, no 3- or 4-cycles.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0), // outer C5
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5), // inner pentagram
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9), // spokes
        ];
        let g = Csr::from_edges(10, &edges);
        let census = CycleCensus::measure(&g);
        assert_eq!(
            census,
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 12
            }
        );
    }

    #[test]
    fn complete_bipartite_k23() {
        // K_{2,3}: no odd cycles; C4 = C(2,2)*C(3,2) = 3.
        let g = Csr::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        let census = CycleCensus::measure(&g);
        assert_eq!(
            census,
            CycleCensus {
                c3: 0,
                c4: 3,
                c5: 0
            }
        );
    }

    #[test]
    fn count_accessor() {
        let c = CycleCensus {
            c3: 1,
            c4: 2,
            c5: 3,
        };
        assert_eq!(c.count(3), Some(1));
        assert_eq!(c.count(4), Some(2));
        assert_eq!(c.count(5), Some(3));
        assert_eq!(c.count(6), None);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(
            CycleCensus::measure(&Csr::from_edges(0, &[])),
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 0
            }
        );
        assert_eq!(
            CycleCensus::measure(&Csr::from_edges(2, &[(0, 1)])),
            CycleCensus {
                c3: 0,
                c4: 0,
                c5: 0
            }
        );
    }

    #[test]
    fn threaded_matches_serial() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(19);
        let n = 60;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.12 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let serial = CycleCensus::measure(&g);
        for threads in [2, 5] {
            assert_eq!(serial, CycleCensus::measure_threaded(&g, threads));
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::Rng;
        for seed in 0..12u64 {
            let mut rng = inet_stats::rng::seeded_rng(seed);
            let n = rng.gen_range(5..13);
            let p = rng.gen_range(0.15..0.6);
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_range(0.0..1.0) < p {
                        edges.push((i, j));
                    }
                }
            }
            let g = Csr::from_edges(n, &edges);
            let fast = CycleCensus::measure(&g);
            let brute = brute_force_census(&g);
            assert_eq!(fast, brute, "seed {seed}, n {n}, p {p}");
        }
    }
}
