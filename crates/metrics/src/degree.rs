//! Degree distribution statistics.

use inet_graph::Csr;
use inet_stats::ccdf::{ccdf_u64, Ccdf};
use inet_stats::powerlaw::{fit_discrete, fit_discrete_auto, PowerLawFit};
use serde::{Deserialize, Serialize};

/// Degree distribution of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Degree sequence indexed by node.
    pub degrees: Vec<u64>,
    /// First moment `⟨k⟩`.
    pub mean: f64,
    /// Second moment `⟨k²⟩` (drives the normalization of `k̄_nn`).
    pub second_moment: f64,
    /// Largest degree.
    pub max: u64,
    /// Number of isolated nodes (degree 0).
    pub isolated: usize,
}

impl DegreeStats {
    /// Measures the degree distribution of `g`.
    pub fn measure(g: &Csr) -> Self {
        let degrees: Vec<u64> = (0..g.node_count()).map(|v| g.degree(v) as u64).collect();
        let n = degrees.len().max(1) as f64;
        let mean = degrees.iter().sum::<u64>() as f64 / n;
        let second_moment = degrees.iter().map(|&d| (d * d) as f64).sum::<f64>() / n;
        let max = degrees.iter().copied().max().unwrap_or(0);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        DegreeStats {
            degrees,
            mean,
            second_moment,
            max,
            isolated,
        }
    }

    /// Empirical CCDF `P(K ≥ k)` — the standard presentation of Internet
    /// degree distributions (cumulation suppresses tail noise).
    pub fn ccdf(&self) -> Ccdf {
        ccdf_u64(&self.degrees)
    }

    /// Histogram of degree values: `counts[k]` is the number of nodes of
    /// degree `k`.
    pub fn histogram(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.max as usize + 1];
        for &d in &self.degrees {
            counts[d as usize] += 1;
        }
        counts
    }

    /// Power-law tail fit with automatic `x_min` (CSN). `None` when the
    /// graph is too small or too regular to fit.
    pub fn powerlaw_fit(&self) -> Option<PowerLawFit> {
        fit_discrete_auto(&self.degrees)
    }

    /// Power-law fit at a fixed lower cutoff.
    pub fn powerlaw_fit_at(&self, kmin: u64) -> Option<PowerLawFit> {
        fit_discrete(&self.degrees, kmin)
    }

    /// Heterogeneity ratio `κ = ⟨k²⟩/⟨k⟩` — diverges with size for
    /// scale-free networks with `γ < 3`, stays `O(⟨k⟩)` for homogeneous
    /// ones.
    pub fn heterogeneity(&self) -> f64 {
        if self.mean > 0.0 {
            self.second_moment / self.mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn star_degrees() {
        let s = DegreeStats::measure(&star(11));
        assert_eq!(s.max, 10);
        assert_eq!(s.degrees[0], 10);
        assert!(s.degrees[1..].iter().all(|&d| d == 1));
        assert!((s.mean - 20.0 / 11.0).abs() < 1e-12);
        assert!((s.second_moment - 110.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn histogram_counts_by_degree() {
        let s = DegreeStats::measure(&star(5));
        let h = s.histogram();
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn isolated_nodes_are_counted() {
        let g = Csr::from_edges(5, &[(0, 1)]);
        let s = DegreeStats::measure(&g);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.max, 1);
    }

    #[test]
    fn empty_graph() {
        let s = DegreeStats::measure(&Csr::from_edges(0, &[]));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
        assert_eq!(s.heterogeneity(), 0.0);
        assert!(s.powerlaw_fit().is_none());
    }

    #[test]
    fn ccdf_of_regular_graph() {
        // 4-cycle: all degrees 2.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = DegreeStats::measure(&g).ccdf();
        assert_eq!(c.values, vec![2.0]);
        assert_eq!(c.ccdf, vec![1.0]);
    }

    #[test]
    fn heterogeneity_of_star_grows() {
        let small = DegreeStats::measure(&star(10)).heterogeneity();
        let large = DegreeStats::measure(&star(100)).heterogeneity();
        assert!(large > small * 5.0, "{large} vs {small}");
    }

    #[test]
    fn powerlaw_fit_on_planted_sequence() {
        // Build a graph whose degree sequence is a planted power law using a
        // star-forest construction (degrees realized approximately).
        let mut rng = inet_stats::rng::seeded_rng(9);
        let seq: Vec<u64> = (0..4000)
            .map(|_| inet_stats::powerlaw::sample_discrete(2.3, 2, &mut rng))
            .collect();
        // Not a real graph fit — just exercise the plumbing on the sequence.
        let stats = DegreeStats {
            degrees: seq,
            mean: 0.0,
            second_moment: 0.0,
            max: 0,
            isolated: 0,
        };
        let fit = stats.powerlaw_fit().unwrap();
        assert!((fit.gamma - 2.3).abs() < 0.25, "gamma {}", fit.gamma);
        let fixed = stats.powerlaw_fit_at(2).unwrap();
        assert!((fixed.gamma - 2.3).abs() < 0.25);
    }
}
