//! Bit-identity of every parallelized metric across thread counts.
//!
//! The work-stealing fan-out in `inet_graph::parallel` uses a chunk grid
//! that depends only on the item count and merges partials in chunk order,
//! so each metric must produce **bit-identical** output — including every
//! floating-point field — for any `threads ≥ 1`. These properties pin that
//! contract on random ER and BA graphs and on the degenerate corners.

use inet_graph::Csr;
use inet_metrics::centrality::{closeness, closeness_threaded};
use inet_metrics::paths_and_betweenness;
use inet_metrics::richclub::RichClub;
use inet_metrics::{
    betweenness, betweenness_sampled, ClusteringStats, CycleCensus, KnnStats, PathStats,
};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 7];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Erdős–Rényi-style random graph: node count and an arbitrary edge list.
fn er_strategy() -> impl Strategy<Value = Csr> {
    (2usize..40).prop_flat_map(|n| {
        let edge =
            (0..n, 0..n).prop_filter_map(
                "no self-loop",
                |(u, v)| if u == v { None } else { Some((u, v)) },
            );
        (Just(n), proptest::collection::vec(edge, 0..120))
            .prop_map(|(n, edges)| Csr::from_edges(n, &edges))
    })
}

/// BA-style preferential-attachment graph grown from a proptest seed —
/// heavy-tailed, so chunks have very uneven work.
fn ba_strategy() -> impl Strategy<Value = Csr> {
    (10usize..60, 0u64..1_000_000).prop_map(|(n, seed)| {
        use inet_generators::Generator;
        let gen = inet_generators::BarabasiAlbert::new(n, 2);
        let mut rng = inet_stats::rng::seeded_rng(seed);
        gen.generate(&mut rng).graph.to_csr()
    })
}

/// Asserts every parallelized metric is bit-identical across [`THREADS`].
fn assert_all_metrics_thread_invariant(g: &Csr) {
    let fused1 = paths_and_betweenness(g, 7, 3, 1);
    let paths1 = PathStats::measure_parallel(g, 1);
    let bc1 = betweenness(g);
    let bcs1 = betweenness_sampled(g, 5, 1);
    let close1 = closeness(g);
    let clust1 = ClusteringStats::measure(g);
    let knn1 = KnnStats::measure(g);
    let census1 = CycleCensus::measure(g);
    let rc1 = RichClub::measure(g);
    for threads in THREADS {
        let fused = paths_and_betweenness(g, 7, 3, threads);
        assert_eq!(
            &fused.paths, &fused1.paths,
            "fused paths, threads {}",
            threads
        );
        assert_eq!(
            bits(&fused.betweenness),
            bits(&fused1.betweenness),
            "fused betweenness, threads {}",
            threads
        );
        assert_eq!(
            &PathStats::measure_parallel(g, threads),
            &paths1,
            "exact paths, threads {}",
            threads
        );
        assert_eq!(
            bits(&inet_metrics::betweenness::betweenness_parallel(g, threads)),
            bits(&bc1),
            "exact betweenness, threads {}",
            threads
        );
        assert_eq!(
            bits(&betweenness_sampled(g, 5, threads)),
            bits(&bcs1),
            "sampled betweenness, threads {}",
            threads
        );
        assert_eq!(
            bits(&closeness_threaded(g, threads)),
            bits(&close1),
            "closeness, threads {}",
            threads
        );
        assert_eq!(
            &ClusteringStats::measure_threaded(g, threads),
            &clust1,
            "clustering, threads {}",
            threads
        );
        let knn = KnnStats::measure_threaded(g, threads);
        assert_eq!(bits(&knn.knn), bits(&knn1.knn), "knn, threads {}", threads);
        assert_eq!(
            knn.assortativity.to_bits(),
            knn1.assortativity.to_bits(),
            "assortativity, threads {}",
            threads
        );
        assert_eq!(
            CycleCensus::measure_threaded(g, threads),
            census1,
            "cycle census, threads {}",
            threads
        );
        assert_eq!(
            &RichClub::measure_threaded(g, threads),
            &rc1,
            "rich club, threads {}",
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ER graphs: every parallelized metric is bit-identical across thread
    /// counts.
    #[test]
    fn er_graphs_thread_invariant(g in er_strategy()) {
        assert_all_metrics_thread_invariant(&g);
    }

    /// Heavy-tailed BA graphs: hub-dominated chunks must not perturb any
    /// output either.
    #[test]
    fn ba_graphs_thread_invariant(g in ba_strategy()) {
        assert_all_metrics_thread_invariant(&g);
    }
}

#[test]
fn empty_graph_thread_invariant() {
    let g = Csr::from_edges(0, &[]);
    assert_all_metrics_thread_invariant(&g);
}

#[test]
fn single_node_thread_invariant() {
    let g = Csr::from_edges(1, &[]);
    assert_all_metrics_thread_invariant(&g);
}

#[test]
fn thread_counts_beyond_chunk_count_are_fine() {
    // More workers than chunks (tiny graph, 64-chunk grid of 3 items).
    let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
    let a = paths_and_betweenness(&g, usize::MAX, usize::MAX, 1);
    let b = paths_and_betweenness(&g, usize::MAX, usize::MAX, 64);
    assert_eq!(a.paths, b.paths);
    assert_eq!(bits(&a.betweenness), bits(&b.betweenness));
}
