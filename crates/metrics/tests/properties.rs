//! Property-based tests for topology measures.

use inet_graph::Csr;
use inet_metrics::{
    betweenness, loops, randomize, ClusteringStats, CycleCensus, DegreeStats, KCoreDecomposition,
    KnnStats, PathStats,
};
use inet_stats::rng::seeded_rng;
use proptest::prelude::*;

/// Random-graph strategy: (node count, edge list).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..30).prop_flat_map(|n| {
        let edge =
            (0..n, 0..n).prop_filter_map(
                "no self-loop",
                |(u, v)| if u == v { None } else { Some((u, v)) },
            );
        (Just(n), proptest::collection::vec(edge, 0..90))
    })
}

proptest! {
    /// Local clustering lies in [0,1]; transitivity lies in [0,1]; the
    /// triangle count is consistent with the per-node counts.
    #[test]
    fn clustering_bounds((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let c = ClusteringStats::measure(&g);
        for &x in &c.local {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        prop_assert!((0.0..=1.0).contains(&c.transitivity));
        prop_assert_eq!(c.triangles.iter().sum::<u64>(), 3 * c.triangle_count);
    }

    /// Core numbers never exceed degrees; the k-core degree property holds;
    /// shells partition the nodes.
    #[test]
    fn kcore_invariants((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let d = KCoreDecomposition::measure(&g);
        for v in 0..n {
            prop_assert!(d.core[v] as usize <= g.degree(v));
        }
        prop_assert_eq!(d.shell_sizes.iter().sum::<usize>(), n);
        let top = d.coreness();
        let (sub, _) = d.core_subgraph(&g, top);
        for v in 0..sub.node_count() {
            prop_assert!(sub.degree(v) >= top as usize);
        }
    }

    /// The cycle census matches brute-force enumeration — the strongest
    /// possible check of the Harary–Manvel bookkeeping. (Node count capped
    /// below the brute-force guard.)
    #[test]
    fn cycle_census_matches_brute_force((n, edges) in (3usize..16).prop_flat_map(|n| {
        let edge = (0..n, 0..n)
            .prop_filter_map("no self-loop", |(u, v)| if u == v { None } else { Some((u, v)) });
        (Just(n), proptest::collection::vec(edge, 0..60))
    })) {
        let g = Csr::from_edges(n, &edges);
        let fast = CycleCensus::measure(&g);
        let brute = loops::brute_force_census(&g);
        prop_assert_eq!(fast, brute);
    }

    /// Betweenness is non-negative and bounded by the number of ordered
    /// pairs; endpoints of a path graph always score zero.
    #[test]
    fn betweenness_bounds((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let bc = betweenness(&g);
        let bound = ((n - 1) * (n - 2)) as f64 / 2.0 + 1e-9;
        for &b in &bc {
            prop_assert!(b >= -1e-12);
            prop_assert!(b <= bound);
        }
    }

    /// Assortativity lies in [-1, 1]; knn of any node is at most the max
    /// degree.
    #[test]
    fn knn_bounds((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let s = KnnStats::measure(&g);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s.assortativity));
        let dmax = g.max_degree() as f64;
        for &x in &s.knn {
            prop_assert!(x <= dmax + 1e-9);
        }
    }

    /// Path statistics: mean <= diameter, diameter < n, distribution sums
    /// to 1 on non-empty graphs with edges.
    #[test]
    fn path_stat_bounds((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let p = PathStats::measure(&g);
        prop_assert!(p.mean <= p.diameter as f64 + 1e-9);
        prop_assert!((p.diameter as usize) < n);
        let total: f64 = p.distribution().iter().map(|&(_, x)| x).sum();
        if g.edge_count() > 0 {
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// Degree-preserving rewiring: degrees and edge count invariant, no
    /// self-loops, graph still valid.
    #[test]
    fn rewiring_preserves_degrees((n, edges) in graph_strategy(), seed in 0u64..500) {
        let g = Csr::from_edges(n, &edges);
        let mut rng = seeded_rng(seed);
        let r = randomize::rewire_degree_preserving(&g, 4, &mut rng);
        prop_assert_eq!(g.degrees(), r.degrees());
        prop_assert_eq!(g.edge_count(), r.edge_count());
        prop_assert!(r.validate());
    }

    /// Closeness and harmonic centralities are non-negative and bounded;
    /// on connected graphs the harmonic value is at most n-1 (all nodes at
    /// distance 1).
    #[test]
    fn centrality_bounds((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let close = inet_metrics::centrality::closeness(&g);
        let harm = inet_metrics::centrality::harmonic(&g);
        for v in 0..n {
            prop_assert!(close[v] >= 0.0 && close[v] <= 1.0 + 1e-9, "closeness {}", close[v]);
            prop_assert!(harm[v] >= 0.0 && harm[v] <= (n - 1) as f64 + 1e-9);
            if g.degree(v) == 0 {
                prop_assert_eq!(close[v], 0.0);
                prop_assert_eq!(harm[v], 0.0);
            }
        }
    }

    /// Eigenvector centrality (when it converges) is non-negative,
    /// max-normalized to 1, and zero only outside the dominant component.
    #[test]
    fn eigenvector_properties((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        if let Some(e) = inet_metrics::centrality::eigenvector(&g, 2000, 1e-10) {
            let max = e.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9, "max {max}");
            for &x in &e {
                prop_assert!(x >= -1e-12);
            }
        }
    }

    /// Barrat weighted clustering equals topological clustering on
    /// unit-weight graphs and always stays in [0, 1]. (Duplicate pairs in
    /// the strategy would accumulate weight, so deduplicate first.)
    #[test]
    fn weighted_clustering_consistency((n, mut edges) in graph_strategy()) {
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let g = Csr::from_edges(n, &edges);
        let cw = inet_metrics::weighted::weighted_clustering(&g);
        let topo = ClusteringStats::measure(&g).local;
        for v in 0..n {
            prop_assert!((cw[v] - topo[v]).abs() < 1e-9,
                "node {v}: {} vs {}", cw[v], topo[v]);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cw[v]));
        }
        // Weighted knn never exceeds the maximum degree.
        let knn_w = inet_metrics::weighted::weighted_knn(&g);
        let dmax = g.max_degree() as f64;
        for &x in &knn_w {
            prop_assert!(x <= dmax + 1e-9);
        }
    }

    /// Degree stats: mean*n = 2E, second moment >= mean^2 (Jensen).
    #[test]
    fn degree_moments((n, edges) in graph_strategy()) {
        let g = Csr::from_edges(n, &edges);
        let d = DegreeStats::measure(&g);
        prop_assert!((d.mean * n as f64 - 2.0 * g.edge_count() as f64).abs() < 1e-9);
        prop_assert!(d.second_moment + 1e-9 >= d.mean * d.mean);
        prop_assert_eq!(d.max as usize, g.max_degree());
    }
}
