//! Generalized Linear Preference model (Bu & Towsley, INFOCOM 2002).
//!
//! Designed specifically for AS-level Internet topology: growth mixes *new
//! node* events with *internal edge* events, and the attachment kernel is a
//! **shifted** linear preference `Π_i ∝ (k_i − β_glp)` with `β_glp < 1`,
//! which tunes the degree exponent into the empirical `γ ≈ 2.2` band
//! (plain BA is stuck at 3).

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::{rngs::StdRng, Rng};

/// GLP generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Glp {
    /// Final number of nodes.
    pub n: usize,
    /// Edges added per event.
    pub m: usize,
    /// Probability that an event adds internal links (vs. a new node).
    pub p: f64,
    /// Preference shift `β_glp < 1`.
    pub beta: f64,
}

impl Glp {
    /// Creates a GLP generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`, `beta < 1`, `m >= 1`, `n > m + 1`;
    /// [`Glp::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize, p: f64, beta: f64) -> Self {
        match Self::try_new(n, m, p, beta) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a GLP generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, m: usize, p: f64, beta: f64) -> Result<Self, ModelError> {
        let g = Glp { n, m, p, beta };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// The parameterization Bu & Towsley report as matching the 2001 AS map
    /// (`m = 1`, `p = 0.4695`, `β = 0.6447`), scaled to `n` nodes.
    pub fn internet_2001(n: usize) -> Self {
        Self::new(n, 1, 0.4695, 0.6447)
    }

    fn weight(&self, degree: usize) -> f64 {
        (degree as f64 - self.beta).max(1e-9)
    }
}

impl Generator for Glp {
    fn name(&self) -> String {
        format!("GLP m={} p={:.2} beta={:.2}", self.m, self.p, self.beta)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            (0.0..1.0).contains(&self.p),
            "GLP",
            "p must lie in [0, 1)",
            format!("p = {}", self.p),
        )?;
        require(
            self.beta < 1.0,
            "GLP",
            "beta must be below 1",
            format!("beta = {}", self.beta),
        )?;
        require(
            self.m >= 1 && self.n > self.m + 1,
            "GLP",
            "need m >= 1 and n > m + 1",
            format!("n = {}, m = {}", self.n, self.m),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        // Seed: small connected core of m+2 nodes in a ring.
        let m0 = self.m + 2;
        g.add_nodes(m0);
        for i in 0..m0 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % m0))
                .expect("seed ring");
        }
        let mut sampler = DynamicWeightedSampler::new();
        for i in 0..m0 {
            sampler.push(self.weight(g.degree(NodeId::new(i))));
        }
        while g.node_count() < self.n {
            if rng.gen_range(0.0..1.0) < self.p {
                // Internal links: m new edges between existing nodes, both
                // endpoints preferential.
                for _ in 0..self.m {
                    let a = sampler.sample(rng).expect("positive weights");
                    // Temporarily mask a to force a distinct endpoint.
                    let wa = sampler.weight(a);
                    sampler.set_weight(a, 0.0);
                    let b = match sampler.sample(rng) {
                        Some(b) => b,
                        None => {
                            sampler.set_weight(a, wa);
                            continue;
                        }
                    };
                    sampler.set_weight(a, wa);
                    let (na, nb) = (NodeId::new(a), NodeId::new(b));
                    if g.has_edge(na, nb) {
                        continue; // GLP adds simple links only
                    }
                    g.add_edge(na, nb).expect("distinct endpoints");
                    sampler.set_weight(a, self.weight(g.degree(na)));
                    sampler.set_weight(b, self.weight(g.degree(nb)));
                }
            } else {
                // New node with m preferential links.
                let mut targets: Vec<usize> = Vec::with_capacity(self.m);
                for _ in 0..self.m.min(g.node_count()) {
                    if let Some(t) = sampler.sample(rng) {
                        targets.push(t);
                        sampler.set_weight(t, 0.0);
                    }
                }
                for &t in &targets {
                    sampler.set_weight(t, self.weight(g.degree(NodeId::new(t))));
                }
                let v = g.add_node();
                sampler.push(0.0);
                for &t in &targets {
                    g.add_edge(v, NodeId::new(t)).expect("distinct targets");
                    sampler.set_weight(t, self.weight(g.degree(NodeId::new(t))));
                }
                sampler.set_weight(v.index(), self.weight(g.degree(v)));
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `glp` model. Defaults are the Bu & Towsley
/// 2001 AS-map parameterization ([`Glp::internet_2001`]).
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(Glp::try_new(
            p.usize("n")?,
            p.usize("m")?,
            p.f64("p")?,
            p.f64("beta")?,
        )?))
    }
    ModelSpec {
        name: "glp",
        summary: "Generalized Linear Preference for AS graphs (Bu-Towsley 2002)",
        schema: vec![
            p_n(),
            p_int("m", "edges added per event", 1),
            p_float("p", "internal-link event probability", 0.4695),
            p_float("beta", "preference shift (beta < 1)", 0.6447),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn reaches_target_size_connected() {
        let mut rng = seeded_rng(1);
        let net = Glp::internet_2001(2000).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 2000);
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn degree_exponent_below_ba() {
        let mut rng = seeded_rng(2);
        let net = Glp::internet_2001(20_000).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 3).unwrap();
        assert!(
            fit.gamma > 1.8 && fit.gamma < 2.7,
            "gamma = {} outside the Internet band",
            fit.gamma
        );
    }

    #[test]
    fn internal_links_raise_mean_degree() {
        let mut rng = seeded_rng(3);
        let sparse = Glp::new(3000, 1, 0.0, 0.5).generate(&mut rng);
        let dense = Glp::new(3000, 1, 0.6, 0.5).generate(&mut rng);
        assert!(dense.graph.mean_degree() > sparse.graph.mean_degree() + 0.3);
    }

    #[test]
    fn determinism() {
        let a = Glp::internet_2001(500).generate(&mut seeded_rng(4));
        let b = Glp::internet_2001(500).generate(&mut seeded_rng(4));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "beta must be below 1")]
    fn rejects_bad_beta() {
        let _ = Glp::new(100, 1, 0.3, 1.5);
    }
}
