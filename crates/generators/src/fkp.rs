//! Heuristically Optimized Trade-offs tree (Fabrikant, Koutsoupias &
//! Papadimitriou, ICALP 2002) — the "HOT" counterpoint to preferential
//! attachment.
//!
//! Each new node `i`, placed at a random position, connects to the existing
//! node `j` minimizing `α·d_ij + h_j`, a trade-off between last-mile cost
//! (Euclidean distance) and centrality (hop distance to the root). For
//! intermediate `α` (between `√n`-ish and constant) the degree distribution
//! develops a heavy tail out of pure optimization — no randomness in the
//! attachment rule at all.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_spatial::pointset::uniform_points;
use rand::rngs::StdRng;

/// FKP generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fkp {
    /// Number of nodes.
    pub n: usize,
    /// Distance weight `α ≥ 0`. Small `α` ⇒ star; huge `α` ⇒ geometric
    /// nearest-neighbor tree.
    pub alpha: f64,
}

impl Fkp {
    /// Creates an FKP generator.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `alpha >= 0`; [`Fkp::try_new`] is the
    /// panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, alpha: f64) -> Self {
        match Self::try_new(n, alpha) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates an FKP generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, alpha: f64) -> Result<Self, ModelError> {
        let g = Fkp { n, alpha };
        Generator::validate(&g)?;
        Ok(g)
    }
}

impl Generator for Fkp {
    fn name(&self) -> String {
        format!("FKP alpha={:.1}", self.alpha)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.n >= 1,
            "FKP",
            "need at least one node",
            format!("n = {}", self.n),
        )?;
        require(
            self.alpha >= 0.0 && self.alpha.is_finite(),
            "FKP",
            "alpha must be non-negative",
            format!("alpha = {}", self.alpha),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let positions = uniform_points(self.n, rng);
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        // hops[j] = tree distance to node 0 (the root).
        let mut hops = vec![0u32; self.n];
        for i in 1..self.n {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for j in 0..i {
                let cost = self.alpha * positions[i].dist(&positions[j]) + hops[j] as f64;
                if cost < best_cost {
                    best_cost = cost;
                    best = j;
                }
            }
            g.add_edge(NodeId::new(i), NodeId::new(best))
                .expect("j < i");
            hops[i] = hops[best] + 1;
        }
        GeneratedNetwork {
            graph: g,
            positions: Some(positions),
            users: None,
            name: self.name(),
        }
    }
}

/// Registry entry: the CLI's `fkp` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(Fkp::try_new(p.usize("n")?, p.f64("alpha")?)?))
    }
    ModelSpec {
        name: "fkp",
        summary: "Heuristically Optimized Trade-offs tree (FKP, ICALP 2002)",
        schema: vec![
            p_n(),
            p_float("alpha", "distance-vs-centrality trade-off weight", 10.0),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn result_is_a_spanning_tree() {
        let mut rng = seeded_rng(1);
        let net = Fkp::new(500, 10.0).generate(&mut rng);
        assert_eq!(net.graph.edge_count(), 499);
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn alpha_zero_gives_a_star() {
        let mut rng = seeded_rng(2);
        let net = Fkp::new(100, 0.0).generate(&mut rng);
        // With no distance cost everyone connects to the root (hops 0).
        assert_eq!(net.graph.degree(NodeId::new(0)), 99);
    }

    #[test]
    fn huge_alpha_gives_short_links() {
        let mut rng = seeded_rng(3);
        let net = Fkp::new(800, 1e6).generate(&mut rng);
        let pos = net.positions.as_ref().unwrap();
        let mean_len: f64 = net
            .graph
            .edges()
            .map(|(u, v, _)| pos[u.index()].dist(&pos[v.index()]))
            .sum::<f64>()
            / net.graph.edge_count() as f64;
        assert!(mean_len < 0.1, "mean link length {mean_len}");
    }

    #[test]
    fn intermediate_alpha_grows_hubs() {
        let mut rng = seeded_rng(4);
        let net = Fkp::new(5000, 8.0).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        assert!(max > 40, "max degree {max}: optimization produced no hubs");
    }

    #[test]
    fn single_node() {
        let mut rng = seeded_rng(5);
        let net = Fkp::new(1, 5.0).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 1);
        assert_eq!(net.graph.edge_count(), 0);
    }

    #[test]
    fn determinism() {
        let a = Fkp::new(300, 4.0).generate(&mut seeded_rng(6));
        let b = Fkp::new(300, 4.0).generate(&mut seeded_rng(6));
        assert_eq!(a.graph, b.graph);
    }
}
