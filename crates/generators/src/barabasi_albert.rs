//! Barabási–Albert preferential attachment (Science 1999).
//!
//! The canonical degree-driven growth model: each new node attaches `m`
//! edges to existing nodes with probability proportional to their degree,
//! producing `P(k) ∼ k^(−3)`. Internet papers use BA as the "plain
//! preferential attachment" baseline — right tail mechanism, wrong exponent
//! and no clustering.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::rngs::StdRng;

/// BA generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    /// Final number of nodes.
    pub n: usize,
    /// Edges added per new node.
    pub m: usize,
}

impl BarabasiAlbert {
    /// Creates a BA generator.
    ///
    /// # Panics
    ///
    /// Panics unless `m >= 1` and `n > m`; [`BarabasiAlbert::try_new`] is
    /// the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize) -> Self {
        match Self::try_new(n, m) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a BA generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, m: usize) -> Result<Self, ModelError> {
        let g = BarabasiAlbert { n, m };
        Generator::validate(&g)?;
        Ok(g)
    }
}

impl Generator for BarabasiAlbert {
    fn name(&self) -> String {
        format!("BA m={}", self.m)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.m >= 1,
            "BA",
            "need at least one edge per node",
            format!("m = {}", self.m),
        )?;
        require(
            self.n > self.m,
            "BA",
            "need more nodes than edges per step",
            format!("n = {}, m = {}", self.n, self.m),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        // Seed: a clique on m+1 nodes so every node starts with degree >= m.
        let m0 = self.m + 1;
        g.add_nodes(m0);
        let mut sampler = DynamicWeightedSampler::new();
        for i in 0..m0 {
            for j in (i + 1)..m0 {
                g.add_edge(NodeId::new(i), NodeId::new(j))
                    .expect("seed clique");
            }
        }
        for i in 0..m0 {
            sampler.push(g.degree(NodeId::new(i)) as f64);
        }
        let mut targets: Vec<usize> = Vec::with_capacity(self.m);
        for _ in m0..self.n {
            // Choose m distinct targets by preferential sampling with
            // rejection (temporarily zeroing chosen weights).
            targets.clear();
            for _ in 0..self.m {
                let t = sampler
                    .sample(rng)
                    .expect("total degree is positive after seeding");
                targets.push(t);
                sampler.set_weight(t, 0.0);
            }
            // Restore weights, add the node and its edges.
            for &t in &targets {
                sampler.set_weight(t, g.degree(NodeId::new(t)) as f64);
            }
            let v = g.add_node();
            sampler.push(0.0);
            for &t in &targets {
                g.add_edge(v, NodeId::new(t)).expect("distinct targets");
                sampler.set_weight(t, g.degree(NodeId::new(t)) as f64);
            }
            sampler.set_weight(v.index(), self.m as f64);
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `ba` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(BarabasiAlbert::try_new(
            p.usize("n")?,
            p.usize("m")?,
        )?))
    }
    ModelSpec {
        name: "ba",
        summary: "Barabasi-Albert preferential attachment (Science 1999)",
        schema: vec![p_n(), p_int("m", "edges added per new node", 2)],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = seeded_rng(1);
        let net = BarabasiAlbert::new(500, 3).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 500);
        // Seed clique C(4,2)=6 plus 3 per added node.
        assert_eq!(net.graph.edge_count(), 6 + 3 * (500 - 4));
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn minimum_degree_is_m() {
        let mut rng = seeded_rng(2);
        let net = BarabasiAlbert::new(300, 2).generate(&mut rng);
        assert!(net.graph.degrees().iter().all(|&d| d >= 2));
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = seeded_rng(3);
        let net = BarabasiAlbert::new(400, 1).generate(&mut rng);
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn degree_exponent_near_three() {
        let mut rng = seeded_rng(4);
        let net = BarabasiAlbert::new(20_000, 2).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        // Fit deep in the tail: finite-size transients flatten the low-k
        // region and bias shallow-xmin fits downward.
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 15).unwrap();
        assert!((fit.gamma - 3.0).abs() < 0.4, "gamma = {}", fit.gamma);
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = seeded_rng(5);
        let net = BarabasiAlbert::new(5000, 2).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        assert!(max > 50, "max degree {max}: rich-get-richer failed");
    }

    #[test]
    fn determinism() {
        let a = BarabasiAlbert::new(200, 2).generate(&mut seeded_rng(6));
        let b = BarabasiAlbert::new(200, 2).generate(&mut seeded_rng(6));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "more nodes than edges")]
    fn rejects_tiny_n() {
        let _ = BarabasiAlbert::new(2, 2);
    }
}
