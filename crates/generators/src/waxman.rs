//! Waxman spatial random graph (IEEE JSAC 1988) — the earliest widely used
//! Internet topology generator.
//!
//! Nodes are placed uniformly in the unit square; each pair is connected
//! independently with probability `q · exp(−d / (β L))`, where `d` is the
//! pair distance and `L` the maximum distance (√2 here). Produces
//! exponentially-bounded degree distributions — historically important
//! precisely because it *fails* to reproduce the AS map's heavy tail, which
//! is why comparison tables include it.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_spatial::pointset::uniform_points;
use rand::{rngs::StdRng, Rng};

/// Waxman generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waxman {
    /// Number of nodes.
    pub n: usize,
    /// Link-probability prefactor `q ∈ (0, 1]`.
    pub q: f64,
    /// Distance-decay scale `β ∈ (0, 1]` (larger ⇒ longer links).
    pub beta: f64,
}

impl Waxman {
    /// Creates a Waxman generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1` and `0 < beta <= 1`;
    /// [`Waxman::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, q: f64, beta: f64) -> Self {
        match Self::try_new(n, q, beta) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a Waxman generator, rejecting invalid parameters with a
    /// typed error.
    pub fn try_new(n: usize, q: f64, beta: f64) -> Result<Self, ModelError> {
        let g = Waxman { n, q, beta };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// Chooses `q` to hit a target mean degree at the given `beta`, using
    /// the closed-form expectation of `exp(−d/(βL))` estimated by
    /// quasi-Monte-Carlo over a deterministic point grid (no RNG needed).
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2` (and the `new` constraints hold).
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn with_mean_degree(n: usize, beta: f64, mean_degree: f64) -> Self {
        match Self::try_with_mean_degree(n, beta, mean_degree) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-free form of [`Waxman::with_mean_degree`].
    pub fn try_with_mean_degree(n: usize, beta: f64, mean_degree: f64) -> Result<Self, ModelError> {
        require(
            n >= 2,
            "Waxman",
            "need at least two nodes",
            format!("n = {n}"),
        )?;
        // E[exp(-d/(beta*L))] over uniform pairs, estimated on a 32x32 grid.
        let l = 2f64.sqrt();
        let grid = 16usize;
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in 0..grid * grid {
            for b in (a + 1)..grid * grid {
                let (ax, ay) = ((a / grid) as f64 + 0.5, (a % grid) as f64 + 0.5);
                let (bx, by) = ((b / grid) as f64 + 0.5, (b % grid) as f64 + 0.5);
                let d =
                    (((ax - bx) / grid as f64).powi(2) + ((ay - by) / grid as f64).powi(2)).sqrt();
                sum += (-d / (beta * l)).exp();
                count += 1;
            }
        }
        let mean_kernel = sum / count as f64;
        let q = (mean_degree / ((n as f64 - 1.0) * mean_kernel)).clamp(1e-9, 1.0);
        Self::try_new(n, q, beta)
    }
}

/// Registry entry: the CLI's `waxman` model. Defaults match the historical
/// `Waxman::with_mean_degree(n, 0.2, 4.2)` CLI parameterization.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(Waxman::try_with_mean_degree(
            p.usize("n")?,
            p.f64("beta")?,
            p.f64("mean_degree")?,
        )?))
    }
    ModelSpec {
        name: "waxman",
        summary: "Waxman spatial random graph (IEEE JSAC 1988)",
        schema: vec![
            p_n(),
            p_float("beta", "distance decay scale of the edge kernel", 0.2),
            p_float("mean_degree", "target mean degree (tunes q)", 4.2),
        ],
        build,
    }
}

impl Generator for Waxman {
    fn name(&self) -> String {
        format!("Waxman q={:.3} beta={:.2}", self.q, self.beta)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.q > 0.0 && self.q <= 1.0,
            "Waxman",
            "q must lie in (0, 1]",
            format!("q = {}", self.q),
        )?;
        require(
            self.beta > 0.0 && self.beta <= 1.0,
            "Waxman",
            "beta must lie in (0, 1]",
            format!("beta = {}", self.beta),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let positions = uniform_points(self.n, rng);
        let l = 2f64.sqrt();
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = positions[i].dist(&positions[j]);
                let p = self.q * (-d / (self.beta * l)).exp();
                if rng.gen_range(0.0..1.0) < p {
                    g.add_edge(NodeId::new(i), NodeId::new(j))
                        .expect("valid pair");
                }
            }
        }
        GeneratedNetwork {
            graph: g,
            positions: Some(positions),
            users: None,
            name: self.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn mean_degree_calibration() {
        let mut rng = seeded_rng(1);
        let gen = Waxman::with_mean_degree(1200, 0.3, 4.0);
        let net = gen.generate(&mut rng);
        let mean = net.graph.mean_degree();
        assert!((mean - 4.0).abs() < 0.8, "mean degree {mean}");
    }

    #[test]
    fn shorter_links_are_favored() {
        let mut rng = seeded_rng(2);
        let net = Waxman::new(800, 0.9, 0.08).generate(&mut rng);
        let pos = net.positions.as_ref().unwrap();
        let mut linked = Vec::new();
        for (u, v, _) in net.graph.edges() {
            linked.push(pos[u.index()].dist(&pos[v.index()]));
        }
        assert!(!linked.is_empty());
        let mean_link = inet_stats::Summary::from_slice(&linked).mean;
        // Mean distance of uniform random pairs is ~0.52; links must be much
        // shorter at beta = 0.08.
        assert!(mean_link < 0.3, "mean link length {mean_link}");
    }

    #[test]
    fn degree_tail_is_light() {
        let mut rng = seeded_rng(3);
        let net = Waxman::with_mean_degree(3000, 0.2, 4.2).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        // Poisson-ish: max degree stays O(log n)-ish, far below hub scales.
        assert!(max < 30, "max degree {max} too heavy for Waxman");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Waxman::new(100, 0.5, 0.2).generate(&mut seeded_rng(9));
        let b = Waxman::new(100, 0.5, 0.2).generate(&mut seeded_rng(9));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "q must lie")]
    fn rejects_bad_q() {
        let _ = Waxman::new(10, 0.0, 0.5);
    }
}
