//! Positive-Feedback Preference model (Zhou & Mondragón, PRE 70 066108,
//! 2004).
//!
//! Two Internet-specific mechanisms on top of BA:
//!
//! * **Interactive growth** — new nodes arrive with 1–2 links, and their
//!   *hosts* simultaneously add new internal ("peering") links, mirroring
//!   how ISPs react to new customers.
//! * **Positive-feedback preference** — the attachment kernel is slightly
//!   superlinear through its own degree:
//!   `Π_i ∝ k_i^(1 + δ·log10 k_i)`, which reproduces the AS map's
//!   rich-club core and `γ ≈ 2.22` with `δ = 0.048`.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::{rngs::StdRng, Rng};

/// PFP generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pfp {
    /// Final number of nodes.
    pub n: usize,
    /// Probability of the "1 new link + 2 host peering links" event.
    pub p: f64,
    /// Probability of the "1 new link + 1 host peering link" event
    /// (`p + q <= 1`; remainder is "2 new links + 1 host peering link").
    pub q: f64,
    /// Feedback strength `δ` (paper value 0.048).
    pub delta: f64,
}

impl Pfp {
    /// Creates a PFP generator.
    ///
    /// # Panics
    ///
    /// Panics unless `p, q >= 0`, `p + q <= 1`, `delta >= 0`, `n >= 4`;
    /// [`Pfp::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, p: f64, q: f64, delta: f64) -> Self {
        match Self::try_new(n, p, q, delta) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a PFP generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, p: f64, q: f64, delta: f64) -> Result<Self, ModelError> {
        let g = Pfp { n, p, q, delta };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// The published AS-map parameterization (`p = 0.3`, `q = 0.1`,
    /// `δ = 0.048`).
    pub fn internet(n: usize) -> Self {
        Self::new(n, 0.3, 0.1, 0.048)
    }

    fn kernel(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k as f64;
        k.powf(1.0 + self.delta * k.log10())
    }
}

impl Generator for Pfp {
    fn name(&self) -> String {
        format!("PFP p={:.2} q={:.2} d={:.3}", self.p, self.q, self.delta)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.p >= 0.0 && self.q >= 0.0 && self.p + self.q <= 1.0,
            "PFP",
            "need p, q >= 0, p + q <= 1",
            format!("p = {}, q = {}", self.p, self.q),
        )?;
        require(
            self.delta >= 0.0,
            "PFP",
            "delta must be non-negative",
            format!("delta = {}", self.delta),
        )?;
        require(
            self.n >= 4,
            "PFP",
            "need at least four nodes",
            format!("n = {}", self.n),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            g.add_edge(NodeId::new(a), NodeId::new(b))
                .expect("seed triangle");
        }
        let mut sampler = DynamicWeightedSampler::new();
        for i in 0..3 {
            sampler.push(self.kernel(g.degree(NodeId::new(i))));
        }
        // Draw a distinct preferential node, masking `exclude`.
        let draw_distinct = |sampler: &mut DynamicWeightedSampler,
                             rng: &mut StdRng,
                             exclude: &[usize]|
         -> Option<usize> {
            let saved: Vec<(usize, f64)> =
                exclude.iter().map(|&e| (e, sampler.weight(e))).collect();
            for &(e, _) in &saved {
                sampler.set_weight(e, 0.0);
            }
            let pick = sampler.sample(rng);
            for &(e, w) in &saved {
                sampler.set_weight(e, w);
            }
            pick
        };
        while g.node_count() < self.n {
            let roll: f64 = rng.gen_range(0.0..1.0);
            let (new_links, host_peer_links) = if roll < self.p {
                (1usize, 2usize)
            } else if roll < self.p + self.q {
                (1, 1)
            } else {
                (2, 1)
            };
            // New node attaches to `new_links` distinct hosts.
            let mut hosts: Vec<usize> = Vec::with_capacity(new_links);
            for _ in 0..new_links {
                if let Some(h) = draw_distinct(&mut sampler, rng, &hosts) {
                    hosts.push(h);
                }
            }
            if hosts.is_empty() {
                break; // cannot happen with a seeded triangle, but stay safe
            }
            let v = g.add_node();
            sampler.push(0.0);
            for &h in &hosts {
                g.add_edge(v, NodeId::new(h)).expect("host is distinct");
                sampler.set_weight(h, self.kernel(g.degree(NodeId::new(h))));
            }
            sampler.set_weight(v.index(), self.kernel(g.degree(v)));
            // The first host develops `host_peer_links` new internal links.
            let host = hosts[0];
            for _ in 0..host_peer_links {
                let exclude = [host, v.index()];
                if let Some(peer) = draw_distinct(&mut sampler, rng, &exclude) {
                    let (nh, np) = (NodeId::new(host), NodeId::new(peer));
                    if !g.has_edge(nh, np) {
                        g.add_edge(nh, np).expect("distinct");
                        sampler.set_weight(host, self.kernel(g.degree(nh)));
                        sampler.set_weight(peer, self.kernel(g.degree(np)));
                    }
                }
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `pfp` model. Defaults are the published
/// AS-map parameterization ([`Pfp::internet`]).
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(Pfp::try_new(
            p.usize("n")?,
            p.f64("p")?,
            p.f64("q")?,
            p.f64("delta")?,
        )?))
    }
    ModelSpec {
        name: "pfp",
        summary: "Positive-Feedback Preference for AS graphs (Zhou-Mondragon 2004)",
        schema: vec![
            p_n(),
            p_float("p", "new-node-plus-two-links event probability", 0.3),
            p_float("q", "one-new-plus-one-internal event probability", 0.1),
            p_float("delta", "feedback exponent of the PFP kernel", 0.048),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn grows_to_target_connected() {
        let mut rng = seeded_rng(1);
        let net = Pfp::internet(3000).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 3000);
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn kernel_is_superlinear() {
        let p = Pfp::internet(100);
        // kernel(100)/kernel(10) > 10 because of the feedback exponent.
        assert!(p.kernel(100) / p.kernel(10) > 10.0);
        assert_eq!(p.kernel(0), 0.0);
    }

    #[test]
    fn gamma_in_internet_band() {
        let mut rng = seeded_rng(2);
        let net = Pfp::internet(20_000).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 3).unwrap();
        assert!(
            fit.gamma > 1.9 && fit.gamma < 2.7,
            "gamma = {} outside band",
            fit.gamma
        );
    }

    #[test]
    fn mean_degree_in_as_band() {
        let mut rng = seeded_rng(3);
        let net = Pfp::internet(8000).generate(&mut rng);
        let mean = net.graph.mean_degree();
        // Expected links per event: p*3 + q*2 + (1-p-q)*3 = 2.9 -> <k> ~ 5.8.
        assert!((4.0..8.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn super_hub_forms() {
        let mut rng = seeded_rng(4);
        let net = Pfp::internet(10_000).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        assert!(
            max as f64 > 0.02 * 10_000.0,
            "positive feedback should grow a dominant hub, max = {max}"
        );
    }

    #[test]
    fn determinism() {
        let a = Pfp::internet(400).generate(&mut seeded_rng(5));
        let b = Pfp::internet(400).generate(&mut seeded_rng(5));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "p + q <= 1")]
    fn rejects_bad_mix() {
        let _ = Pfp::new(100, 0.8, 0.4, 0.05);
    }
}
