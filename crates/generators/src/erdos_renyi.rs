//! Erdős–Rényi random graphs: `G(n, p)` and `G(n, m)`.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use rand::{rngs::StdRng, Rng};

/// `G(n, p)`: each of the `C(n,2)` pairs is an edge independently with
/// probability `p`. Sparse graphs are generated with geometric skipping
/// (`O(n + E)` expected) rather than scanning all pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gnp {
    /// Number of nodes.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
}

impl Gnp {
    /// Creates a `G(n, p)` generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`; [`Gnp::try_new`] is the panic-free
    /// form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, p: f64) -> Self {
        match Self::try_new(n, p) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a `G(n, p)` generator, rejecting invalid parameters with a
    /// typed error.
    pub fn try_new(n: usize, p: f64) -> Result<Self, ModelError> {
        let g = Gnp { n, p };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// The `G(n, p)` matching a target mean degree `⟨k⟩ = p (n−1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2`.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn with_mean_degree(n: usize, mean_degree: f64) -> Self {
        match require(
            n >= 2,
            "ER G(n,p)",
            "need at least two nodes",
            format!("n = {n}"),
        ) {
            Ok(()) => Self::new(n, (mean_degree / (n as f64 - 1.0)).clamp(0.0, 1.0)),
            Err(e) => panic!("{e}"),
        }
    }
}

impl Generator for Gnp {
    fn name(&self) -> String {
        format!("ER G(n,p) p={:.4}", self.p)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            (0.0..=1.0).contains(&self.p),
            "ER G(n,p)",
            "p must be a probability",
            format!("p = {}", self.p),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        if self.p > 0.0 && self.n >= 2 {
            // Walk the linearized strict upper triangle with geometric jumps.
            let total_pairs = self.n * (self.n - 1) / 2;
            let log_q = (1.0 - self.p).ln();
            let mut idx: usize = 0;
            loop {
                if self.p >= 1.0 {
                    if idx >= total_pairs {
                        break;
                    }
                } else {
                    let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
                    let skip = (u.ln() / log_q).floor() as usize;
                    idx = match idx.checked_add(skip) {
                        Some(v) => v,
                        None => break,
                    };
                    if idx >= total_pairs {
                        break;
                    }
                }
                let (a, b) = unrank_pair(idx, self.n);
                g.add_edge(NodeId::new(a), NodeId::new(b))
                    .expect("pairs are valid by construction");
                idx += 1;
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Maps a linear index in `0..C(n,2)` to the pair `(i, j)`, `i < j`, in
/// row-major upper-triangle order.
fn unrank_pair(idx: usize, n: usize) -> (usize, usize) {
    // Row i starts at offset i*n - i*(i+1)/2 - i ... solve by scanning rows
    // arithmetically: row i has (n - 1 - i) entries.
    let mut i = 0usize;
    let mut offset = idx;
    loop {
        let row = n - 1 - i;
        if offset < row {
            return (i, i + 1 + offset);
        }
        offset -= row;
        i += 1;
    }
}

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly among all pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gnm {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
}

impl Gnm {
    /// Creates a `G(n, m)` generator.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `C(n, 2)`; [`Gnm::try_new`] is the panic-free
    /// form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize) -> Self {
        match Self::try_new(n, m) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a `G(n, m)` generator, rejecting invalid parameters with a
    /// typed error.
    pub fn try_new(n: usize, m: usize) -> Result<Self, ModelError> {
        let g = Gnm { n, m };
        Generator::validate(&g)?;
        Ok(g)
    }
}

impl Generator for Gnm {
    fn name(&self) -> String {
        format!("ER G(n,m) m={}", self.m)
    }

    fn validate(&self) -> Result<(), ModelError> {
        let max = self.n.saturating_mul(self.n.saturating_sub(1)) / 2;
        require(
            self.m <= max,
            "ER G(n,m)",
            "m exceeds C(n,2)",
            format!("m = {}, C({},2) = {max}", self.m, self.n),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        let mut placed = 0usize;
        while placed < self.m {
            let a = rng.gen_range(0..self.n);
            let b = rng.gen_range(0..self.n);
            if a == b || g.has_edge(NodeId::new(a), NodeId::new(b)) {
                continue;
            }
            g.add_edge(NodeId::new(a), NodeId::new(b)).expect("checked");
            placed += 1;
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `er` model. Defaults match the historical
/// `Gnp::with_mean_degree(n, 4.2)` CLI parameterization.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        let n = p.usize("n")?;
        require(
            n >= 2,
            "ER G(n,p)",
            "need at least two nodes",
            format!("n = {n}"),
        )?;
        let prob = (p.f64("mean_degree")? / (n as f64 - 1.0)).clamp(0.0, 1.0);
        Ok(Box::new(Gnp::try_new(n, prob)?))
    }
    ModelSpec {
        name: "er",
        summary: "Erdos-Renyi G(n,p) random-graph baseline",
        schema: vec![
            p_n(),
            p_float("mean_degree", "target mean degree (tunes p)", 4.2),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn unrank_enumerates_upper_triangle() {
        let n = 5;
        let mut seen = Vec::new();
        for idx in 0..(n * (n - 1) / 2) {
            seen.push(unrank_pair(idx, n));
        }
        let expect: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn gnp_mean_degree_close_to_target() {
        let mut rng = seeded_rng(1);
        let net = Gnp::with_mean_degree(2000, 6.0).generate(&mut rng);
        let mean = net.graph.mean_degree();
        assert!((mean - 6.0).abs() < 0.5, "mean degree {mean}");
    }

    #[test]
    fn gnp_p_zero_and_one() {
        let mut rng = seeded_rng(2);
        let empty = Gnp::new(20, 0.0).generate(&mut rng);
        assert_eq!(empty.graph.edge_count(), 0);
        let full = Gnp::new(20, 1.0).generate(&mut rng);
        assert_eq!(full.graph.edge_count(), 190);
    }

    #[test]
    fn gnp_determinism() {
        let a = Gnp::new(100, 0.05).generate(&mut seeded_rng(3));
        let b = Gnp::new(100, 0.05).generate(&mut seeded_rng(3));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = seeded_rng(4);
        let net = Gnm::new(50, 90).generate(&mut rng);
        assert_eq!(net.graph.edge_count(), 90);
        assert_eq!(net.graph.total_weight(), 90, "simple graph: all weights 1");
    }

    #[test]
    fn gnm_full_graph() {
        let mut rng = seeded_rng(5);
        let net = Gnm::new(10, 45).generate(&mut rng);
        assert_eq!(net.graph.edge_count(), 45);
    }

    #[test]
    #[should_panic(expected = "exceeds C(")]
    fn gnm_rejects_impossible_m() {
        let _ = Gnm::new(4, 7);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn gnp_rejects_bad_p() {
        let _ = Gnp::new(10, 1.5);
    }
}
