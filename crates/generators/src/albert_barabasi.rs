//! Extended Albert–Barabási model with internal links and rewiring
//! (PRL 85, 5234 — the source text's ref. \[16\]).
//!
//! Three event types per step:
//!
//! * with probability `p` — add `m` **internal links**: a random endpoint
//!   plus a preferentially chosen one;
//! * with probability `q` — **rewire** `m` links: a random node drops a
//!   random link and reattaches it preferentially;
//! * with probability `1 − p − q` — add a **new node** with `m`
//!   preferential links.
//!
//! The extra processes tune the degree exponent continuously in
//! `γ ∈ (2, ∞)`, which is why the paper's intro lists this family among the
//! degree-driven candidates for Internet modeling.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::{rngs::StdRng, Rng};

/// Extended Albert–Barabási parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlbertBarabasiExtended {
    /// Final number of nodes.
    pub n: usize,
    /// Links touched per event.
    pub m: usize,
    /// Internal-link event probability `p`.
    pub p: f64,
    /// Rewiring event probability `q` (`p + q < 1`).
    pub q: f64,
}

impl AlbertBarabasiExtended {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `p, q >= 0`, `p + q < 1`, `m >= 1`, `n > m + 1`;
    /// [`AlbertBarabasiExtended::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize, p: f64, q: f64) -> Self {
        match Self::try_new(n, m, p, q) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, m: usize, p: f64, q: f64) -> Result<Self, ModelError> {
        let g = AlbertBarabasiExtended { n, m, p, q };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// Preference with the model's `+1` shift (`Π_i ∝ k_i + 1`), which
    /// keeps isolated nodes reachable.
    fn weight(degree: usize) -> f64 {
        degree as f64 + 1.0
    }
}

impl Generator for AlbertBarabasiExtended {
    fn name(&self) -> String {
        format!("AB-ext m={} p={:.2} q={:.2}", self.m, self.p, self.q)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.p >= 0.0 && self.q >= 0.0 && self.p + self.q < 1.0,
            "AB-ext",
            "need p, q >= 0 and p + q < 1",
            format!("p = {}, q = {}", self.p, self.q),
        )?;
        require(
            self.m >= 1 && self.n > self.m + 1,
            "AB-ext",
            "need m >= 1 and n > m + 1",
            format!("n = {}, m = {}", self.n, self.m),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        let m0 = self.m + 1;
        g.add_nodes(m0);
        for i in 0..m0 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % m0))
                .expect("seed ring");
        }
        let mut sampler = DynamicWeightedSampler::new();
        for i in 0..m0 {
            sampler.push(Self::weight(g.degree(NodeId::new(i))));
        }
        let refresh = |sampler: &mut DynamicWeightedSampler, g: &MultiGraph, v: usize| {
            sampler.set_weight(v, Self::weight(g.degree(NodeId::new(v))));
        };
        while g.node_count() < self.n {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < self.p {
                // Internal links: random start, preferential end.
                for _ in 0..self.m {
                    let a = rng.gen_range(0..g.node_count());
                    let b = match sampler.sample(rng) {
                        Some(b) if b != a => b,
                        _ => continue,
                    };
                    let (na, nb) = (NodeId::new(a), NodeId::new(b));
                    if g.has_edge(na, nb) {
                        continue;
                    }
                    g.add_edge(na, nb).expect("checked distinct");
                    refresh(&mut sampler, &g, a);
                    refresh(&mut sampler, &g, b);
                }
            } else if roll < self.p + self.q {
                // Rewiring: random node drops a random link, reattaches
                // preferentially.
                for _ in 0..self.m {
                    let a = rng.gen_range(0..g.node_count());
                    let na = NodeId::new(a);
                    let neighbors: Vec<NodeId> = g.neighbors(na).map(|(u, _)| u).collect();
                    if neighbors.is_empty() {
                        continue;
                    }
                    let old = neighbors[rng.gen_range(0..neighbors.len())];
                    let new = match sampler.sample(rng) {
                        Some(b) if b != a && !g.has_edge(na, NodeId::new(b)) => b,
                        _ => continue,
                    };
                    g.remove_edge(na, old).expect("neighbor exists");
                    g.add_edge(na, NodeId::new(new)).expect("checked distinct");
                    refresh(&mut sampler, &g, old.index());
                    refresh(&mut sampler, &g, new);
                    refresh(&mut sampler, &g, a);
                }
            } else {
                // New node with m preferential links.
                let mut targets: Vec<usize> = Vec::with_capacity(self.m);
                for _ in 0..self.m.min(g.node_count()) {
                    if let Some(t) = sampler.sample(rng) {
                        targets.push(t);
                        sampler.set_weight(t, 0.0);
                    }
                }
                for &t in &targets {
                    refresh(&mut sampler, &g, t);
                }
                let v = g.add_node();
                sampler.push(Self::weight(0));
                for &t in &targets {
                    g.add_edge(v, NodeId::new(t)).expect("distinct targets");
                    refresh(&mut sampler, &g, t);
                }
                refresh(&mut sampler, &g, v.index());
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `ab-ext` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(AlbertBarabasiExtended::try_new(
            p.usize("n")?,
            p.usize("m")?,
            p.f64("p")?,
            p.f64("q")?,
        )?))
    }
    ModelSpec {
        name: "ab-ext",
        summary: "extended Albert-Barabasi: internal links + rewiring (PRL 2000)",
        schema: vec![
            p_n(),
            p_int("m", "links touched per event", 1),
            p_float("p", "internal-link event probability", 0.3),
            p_float("q", "rewiring event probability (p + q < 1)", 0.2),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn reaches_target_size_and_stays_valid() {
        let mut rng = seeded_rng(1);
        let net = AlbertBarabasiExtended::new(2000, 1, 0.3, 0.2).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 2000);
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn p_q_zero_behaves_like_shifted_ba() {
        let mut rng = seeded_rng(2);
        let net = AlbertBarabasiExtended::new(10_000, 2, 0.0, 0.0).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 10).expect("fittable");
        // Shifted preference steepens slightly beyond 3.
        assert!((2.6..4.2).contains(&fit.gamma), "gamma = {}", fit.gamma);
    }

    #[test]
    fn internal_links_densify_and_flatten() {
        let mean_k = |p, seed| {
            let net = AlbertBarabasiExtended::new(4000, 1, p, 0.0).generate(&mut seeded_rng(seed));
            net.graph.mean_degree()
        };
        // Same node budget: internal-link events add edges without nodes.
        assert!(mean_k(0.5, 3) > mean_k(0.0, 3) + 0.5);
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let mut rng = seeded_rng(4);
        let no_rewire = AlbertBarabasiExtended::new(1500, 1, 0.0, 0.0).generate(&mut rng);
        let rewired = AlbertBarabasiExtended::new(1500, 1, 0.0, 0.45).generate(&mut rng);
        // Rewiring events move links; per node added the edge budget is the
        // same, but more events fire per node, so counts per node match the
        // m=1 growth line within the event mix.
        assert_eq!(no_rewire.graph.node_count(), rewired.graph.node_count());
        assert!(rewired.graph.validate().is_ok());
        // Rewiring must not create multi-edges (weights stay 1).
        assert_eq!(
            rewired.graph.total_weight(),
            rewired.graph.edge_count() as u64
        );
    }

    #[test]
    fn determinism() {
        let a = AlbertBarabasiExtended::new(600, 1, 0.2, 0.2).generate(&mut seeded_rng(5));
        let b = AlbertBarabasiExtended::new(600, 1, 0.2, 0.2).generate(&mut seeded_rng(5));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "p + q < 1")]
    fn rejects_saturated_mix() {
        let _ = AlbertBarabasiExtended::new(100, 1, 0.6, 0.4);
    }
}
