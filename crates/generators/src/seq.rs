//! Degree-sequence utilities shared by sequence-driven generators.

use rand::Rng;

/// Samples a power-law degree sequence `P(k) ∝ k^(−gamma)` for `k ≥ kmin`,
/// capped at `kmax`, with an even sum (the last entry is bumped by one when
/// needed so stub matching can close).
///
/// # Panics
///
/// Panics if `n == 0`, `gamma <= 1`, `kmin == 0`, or `kmax < kmin`.
pub fn powerlaw_degree_sequence<R: Rng>(
    n: usize,
    gamma: f64,
    kmin: u64,
    kmax: u64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(n > 0, "need at least one node");
    assert!(gamma > 1.0, "exponent must exceed 1");
    assert!(kmin >= 1 && kmax >= kmin, "invalid degree bounds");
    let mut seq: Vec<u64> = (0..n)
        .map(|_| inet_stats::powerlaw::sample_discrete(gamma, kmin, rng).min(kmax))
        .collect();
    if seq.iter().sum::<u64>() % 2 == 1 {
        // Bump a minimal entry to keep the tail untouched.
        let idx = seq
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("non-empty");
        seq[idx] += 1;
    }
    seq
}

/// Erdős–Gallai check: is the (descending-sorted copy of the) sequence
/// realizable as a simple graph?
pub fn is_graphical(seq: &[u64]) -> bool {
    let mut d: Vec<u64> = seq.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    let n = d.len() as u64;
    if d.iter().any(|&x| x >= n) && n > 0 {
        return false;
    }
    let total: u64 = d.iter().sum();
    if total % 2 == 1 {
        return false;
    }
    // Prefix sums for the Erdős–Gallai inequalities.
    let mut prefix = Vec::with_capacity(d.len() + 1);
    prefix.push(0u64);
    for &x in &d {
        prefix.push(prefix.last().expect("non-empty") + x);
    }
    for k in 1..=d.len() {
        let lhs = prefix[k];
        let mut rhs = (k * (k - 1)) as u64;
        for &di in &d[k..] {
            rhs += di.min(k as u64);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn sequence_sum_is_even_and_bounded() {
        let mut rng = seeded_rng(1);
        for _ in 0..20 {
            let seq = powerlaw_degree_sequence(501, 2.2, 1, 400, &mut rng);
            assert_eq!(seq.len(), 501);
            assert_eq!(seq.iter().sum::<u64>() % 2, 0);
            assert!(seq.iter().all(|&d| (1..=400).contains(&d)));
        }
    }

    #[test]
    fn sequence_tail_is_heavy() {
        let mut rng = seeded_rng(2);
        let seq = powerlaw_degree_sequence(20_000, 2.2, 1, 20_000, &mut rng);
        let max = *seq.iter().max().unwrap();
        assert!(max > 100, "max degree {max} too small for a heavy tail");
        let ones = seq.iter().filter(|&&d| d == 1).count();
        assert!(ones > seq.len() / 3, "power law should be dominated by k=1");
    }

    #[test]
    fn graphical_known_cases() {
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[])); // vacuous
        assert!(!is_graphical(&[1])); // odd sum
        assert!(is_graphical(&[3, 1, 1, 1, 0, 0, 0, 0, 0, 2])); // star + pendant edge
        assert!(!is_graphical(&[4, 1, 1])); // degree >= n
        assert!(!is_graphical(&[3, 3, 1, 1])); // fails Erdos-Gallai at k=2
    }

    #[test]
    fn star_sequences() {
        assert!(is_graphical(&[4, 1, 1, 1, 1]));
        assert!(!is_graphical(&[5, 1, 1, 1, 1]));
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn rejects_flat_exponent() {
        let mut rng = seeded_rng(3);
        let _ = powerlaw_degree_sequence(10, 1.0, 1, 10, &mut rng);
    }
}
