//! Random geometric graph: connect all pairs within radius `r`.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_spatial::pointset::uniform_points;
use inet_spatial::GridIndex;
use rand::rngs::StdRng;

/// Random geometric graph in the unit square.
///
/// Built with a grid spatial index (`O(n + E)` expected instead of the
/// naive `O(n²)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomGeometric {
    /// Number of nodes.
    pub n: usize,
    /// Connection radius.
    pub radius: f64,
}

impl RandomGeometric {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `radius > 0`; [`RandomGeometric::try_new`] is the
    /// panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, radius: f64) -> Self {
        match Self::try_new(n, radius) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, radius: f64) -> Result<Self, ModelError> {
        let g = RandomGeometric { n, radius };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// Radius chosen for a target mean degree: `⟨k⟩ ≈ n π r²` (ignoring
    /// boundary effects, so the realized mean runs slightly low).
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2` and the implied radius is positive.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn with_mean_degree(n: usize, mean_degree: f64) -> Self {
        match require(n >= 2, "RGG", "need at least two nodes", format!("n = {n}")) {
            Ok(()) => {
                let r = (mean_degree / (n as f64 * std::f64::consts::PI)).sqrt();
                Self::new(n, r)
            }
            Err(e) => panic!("{e}"),
        }
    }
}

impl Generator for RandomGeometric {
    fn name(&self) -> String {
        format!("RGG r={:.4}", self.radius)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.radius > 0.0 && self.radius.is_finite(),
            "RGG",
            "radius must be positive",
            format!("radius = {}", self.radius),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let positions = uniform_points(self.n, rng);
        let index = GridIndex::build(&positions, self.radius.max(1e-3));
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        for (i, p) in positions.iter().enumerate() {
            for j in index.within(p, self.radius) {
                let j = j as usize;
                if j > i {
                    g.add_edge(NodeId::new(i), NodeId::new(j))
                        .expect("valid pair");
                }
            }
        }
        GeneratedNetwork {
            graph: g,
            positions: Some(positions),
            users: None,
            name: self.name(),
        }
    }
}

/// Registry entry: the CLI's `rgg` model. Defaults match the historical
/// `RandomGeometric::with_mean_degree(n, 4.2)` CLI parameterization.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        let n = p.usize("n")?;
        require(n >= 2, "RGG", "need at least two nodes", format!("n = {n}"))?;
        let r = (p.f64("mean_degree")? / (n as f64 * std::f64::consts::PI)).sqrt();
        Ok(Box::new(RandomGeometric::try_new(n, r)?))
    }
    ModelSpec {
        name: "rgg",
        summary: "random geometric graph baseline (unit square)",
        schema: vec![
            p_n(),
            p_float("mean_degree", "target mean degree (tunes the radius)", 4.2),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn all_edges_respect_radius() {
        let mut rng = seeded_rng(1);
        let net = RandomGeometric::new(400, 0.08).generate(&mut rng);
        let pos = net.positions.as_ref().unwrap();
        for (u, v, _) in net.graph.edges() {
            assert!(pos[u.index()].dist(&pos[v.index()]) <= 0.08 + 1e-12);
        }
    }

    #[test]
    fn no_pair_within_radius_is_missed() {
        let mut rng = seeded_rng(2);
        let net = RandomGeometric::new(150, 0.12).generate(&mut rng);
        let pos = net.positions.as_ref().unwrap();
        for i in 0..150 {
            for j in (i + 1)..150 {
                if pos[i].dist(&pos[j]) <= 0.12 {
                    assert!(
                        net.graph.has_edge(NodeId::new(i), NodeId::new(j)),
                        "missing edge ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mean_degree_calibration_is_reasonable() {
        let mut rng = seeded_rng(3);
        let net = RandomGeometric::with_mean_degree(2500, 6.0).generate(&mut rng);
        let mean = net.graph.mean_degree();
        // Boundary effects push it below the bulk estimate; accept 20%.
        assert!((mean - 6.0).abs() < 1.2, "mean degree {mean}");
    }

    #[test]
    fn determinism() {
        let a = RandomGeometric::new(200, 0.1).generate(&mut seeded_rng(7));
        let b = RandomGeometric::new(200, 0.1).generate(&mut seeded_rng(7));
        assert_eq!(a.graph, b.graph);
    }
}
