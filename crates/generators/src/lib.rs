//! # inet-generators — Internet topology generators
//!
//! The generator families that the Internet-modeling literature compares
//! against each other, all behind one [`Generator`] trait:
//!
//! | Module | Model | Era / reference |
//! |---|---|---|
//! | [`erdos_renyi`] | `G(n,p)` / `G(n,m)` random graphs | baseline |
//! | [`config_model`] | configuration model from a degree sequence | baseline |
//! | [`waxman`] | Waxman spatial random graph | IEEE JSAC 1988 |
//! | [`geometric`] | random geometric graph | baseline |
//! | [`barabasi_albert`] | preferential attachment | Science 1999 |
//! | [`albert_barabasi`] | extended AB model (internal links + rewiring) | Albert & Barabási, PRL 2000 (source ref. \[16\]) |
//! | [`bianconi`] | fitness-driven preferential attachment | Bianconi & Barabási, EPL 2001 (source ref. \[15\]) |
//! | [`glp`] | Generalized Linear Preference | Bu & Towsley, INFOCOM 2002 |
//! | [`inet`] | power-law degree-sequence Internet generator | Jin, Chen & Jamin, Inet-3.0 style |
//! | [`fkp`] | Heuristically Optimized Trade-offs (HOT) tree | Fabrikant–Koutsoupias–Papadimitriou, ICALP 2002 |
//! | [`pfp`] | Positive-Feedback Preference | Zhou & Mondragón, PRE 2004 |
//! | [`goh`] | static scale-free (fitness) model | Goh, Kahng & Kim, PRL 2001 |
//! | [`watts_strogatz`] | small-world control | Watts & Strogatz, Nature 1998 |
//! | [`brite`] | spatial preferential attachment | BRITE-style (Medina, Matta & Byers 2000) |
//! | [`serrano`] | **competition–adaptation weighted growth model** | Serrano, Boguñá & Díaz-Guilera, PRL 94 038701 (2005) |
//!
//! Every generator:
//!
//! * takes all randomness from a caller-supplied RNG (fixed seed ⇒
//!   bit-identical topology),
//! * returns a [`GeneratedNetwork`] carrying the weighted multigraph plus
//!   whatever side information the model produces (positions, user counts),
//! * documents its parameter ranges; the `try_new` constructors and
//!   [`Generator::validate`] reject invalid ones with a typed
//!   [`ModelError`], while the legacy `new` constructors keep the
//!   fail-fast panic for quick scripts,
//! * can run through [`Generator::try_generate`], which validates first
//!   and contains any growth-loop panic as a structured
//!   [`ModelError::Internal`] instead of aborting the process,
//! * is registered in the central [`mod@registry`] with a typed parameter
//!   schema, so CLI and pipeline model dispatch happens in exactly one
//!   place ([`registry::registry`] / [`registry::lookup`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod albert_barabasi;
pub mod barabasi_albert;
pub mod bianconi;
pub mod brite;
pub mod config_model;
pub mod erdos_renyi;
pub mod error;
pub mod fkp;
pub mod geometric;
pub mod glp;
pub mod goh;
pub mod inet;
pub mod pfp;
pub mod registry;
pub mod seq;
pub mod serrano;
pub mod watts_strogatz;
pub mod waxman;

use inet_graph::MultiGraph;
use inet_spatial::Point2;
use rand::rngs::StdRng;

pub use albert_barabasi::AlbertBarabasiExtended;
pub use barabasi_albert::BarabasiAlbert;
pub use bianconi::{BianconiBarabasi, FitnessDistribution};
pub use brite::BriteLike;
pub use config_model::ConfigurationModel;
pub use erdos_renyi::{Gnm, Gnp};
pub use error::ModelError;
pub use fkp::Fkp;
pub use geometric::RandomGeometric;
pub use glp::Glp;
pub use goh::GohStatic;
pub use inet::InetLike;
pub use pfp::Pfp;
pub use registry::{lookup, model_names, registry, ModelSpec, ParamValue, Params};
pub use serrano::{SerranoModel, SerranoParams};
pub use watts_strogatz::WattsStrogatz;
pub use waxman::Waxman;

/// A generated topology plus model-specific side information.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    /// The topology (weighted multigraph; weight 1 everywhere for unweighted
    /// models).
    pub graph: MultiGraph,
    /// Node positions, for spatial models.
    pub positions: Option<Vec<Point2>>,
    /// Per-node user counts (model "resources"), for demand-driven models.
    pub users: Option<Vec<f64>>,
    /// Short human-readable tag of the generating model.
    pub name: String,
}

impl GeneratedNetwork {
    /// Wraps a bare graph.
    pub fn bare(graph: MultiGraph, name: impl Into<String>) -> Self {
        GeneratedNetwork {
            graph,
            positions: None,
            users: None,
            name: name.into(),
        }
    }
}

/// A topology generator. Object-safe: drives everything through
/// `&mut StdRng` so heterogeneous generator collections (comparison
/// tables) can be iterated.
pub trait Generator {
    /// Short identifier used in table rows (e.g. `"BA m=2"`).
    fn name(&self) -> String;

    /// Generates one topology instance.
    ///
    /// May panic on invalid parameters (the legacy contract); callers that
    /// must not die use [`Generator::try_generate`].
    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork;

    /// Checks the current parameters against the model's documented domain.
    /// The default accepts everything; every shipped model overrides it
    /// with the same checks its `try_new` constructor performs (fields are
    /// public, so a struct can drift invalid after construction).
    fn validate(&self) -> Result<(), ModelError> {
        Ok(())
    }

    /// Panic-free generation: validates, consults the
    /// `generator.generate` failpoint, and contains any panic escaping the
    /// growth loop as [`ModelError::Internal`].
    fn try_generate(&self, rng: &mut StdRng) -> Result<GeneratedNetwork, ModelError> {
        self.validate()?;
        // The failpoint sits inside the containment boundary so an injected
        // panic is caught exactly like a growth-loop panic would be.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inet_fault::check("generator.generate", 0).map(|()| self.generate(rng))
        })) {
            Ok(Ok(net)) => Ok(net),
            Ok(Err(fault)) => Err(fault.into()),
            Err(payload) => Err(ModelError::Internal {
                model: self.name(),
                message: error::panic_text(&*payload),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    /// The trait must be usable as a heterogeneous collection.
    #[test]
    fn generators_are_object_safe() {
        let gens: Vec<Box<dyn Generator>> = vec![
            Box::new(Gnp::new(50, 0.1)),
            Box::new(BarabasiAlbert::new(50, 2)),
        ];
        let mut rng = seeded_rng(1);
        for g in &gens {
            let net = g.generate(&mut rng);
            assert_eq!(net.graph.node_count(), 50);
            assert!(!g.name().is_empty());
        }
    }

    #[test]
    fn bare_constructor() {
        let net = GeneratedNetwork::bare(MultiGraph::new(), "x");
        assert!(net.positions.is_none());
        assert!(net.users.is_none());
        assert_eq!(net.name, "x");
    }
}
