//! Inet-style degree-sequence Internet generator (after Jin, Chen & Jamin,
//! Inet-3.0, U. Michigan tech report CSE-TR-456-02).
//!
//! Rather than growing a network, Inet *imposes* the empirically measured
//! AS-map degree distribution: sample a power-law degree sequence, connect
//! the high-degree nodes into a spanning backbone, then match the remaining
//! stubs preferentially. The result reproduces `P(k)` by construction and
//! (through the preferential matching) a disassortative core — which is why
//! this family is the workhorse for building *reference* topologies when raw
//! map data is unavailable.

use crate::error::require;
use crate::seq::powerlaw_degree_sequence;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::rngs::StdRng;

/// Inet-like generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InetLike {
    /// Number of nodes.
    pub n: usize,
    /// Degree-distribution exponent (AS map: ≈ 2.2).
    pub gamma: f64,
    /// Minimum degree (AS map: 1).
    pub kmin: u64,
}

impl InetLike {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 3`, `gamma > 1`, `kmin >= 1`;
    /// [`InetLike::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, gamma: f64, kmin: u64) -> Self {
        match Self::try_new(n, gamma, kmin) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, gamma: f64, kmin: u64) -> Result<Self, ModelError> {
        let g = InetLike { n, gamma, kmin };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// The 2001 AS-map parameterization (`γ = 2.22`, `k_min = 1`).
    pub fn as_map_2001(n: usize) -> Self {
        Self::new(n, 2.22, 1)
    }
}

impl Generator for InetLike {
    fn name(&self) -> String {
        format!("Inet-like gamma={:.2}", self.gamma)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.n >= 3,
            "Inet-like",
            "need at least three nodes",
            format!("n = {}", self.n),
        )?;
        require(
            self.gamma > 1.0,
            "Inet-like",
            "exponent must exceed 1",
            format!("gamma = {}", self.gamma),
        )?;
        require(
            self.kmin >= 1 && self.kmin < self.n as u64,
            "Inet-like",
            "minimum degree must be positive and below n",
            format!("kmin = {}, n = {}", self.kmin, self.n),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        // 1. Degree sequence, descending.
        let mut seq =
            powerlaw_degree_sequence(self.n, self.gamma, self.kmin, self.n as u64 - 1, rng);
        seq.sort_unstable_by(|a, b| b.cmp(a));
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        let mut remaining: Vec<u64> = seq.clone();

        // 2. Spanning backbone: connect node i (in degree order) to an
        //    already-placed node with free stubs, chosen proportionally to
        //    its remaining stubs. Guarantees connectivity.
        let mut sampler = DynamicWeightedSampler::new();
        sampler.push(remaining[0] as f64);
        for i in 1..self.n {
            let t = sampler.sample(rng).unwrap_or(i - 1); // if all stubs spent, chain to predecessor
            g.add_edge(NodeId::new(i), NodeId::new(t)).expect("t < i");
            remaining[i] = remaining[i].saturating_sub(1);
            remaining[t] = remaining[t].saturating_sub(1);
            sampler.set_weight(t, remaining[t] as f64);
            sampler.push(remaining[i] as f64);
        }

        // 3. Preferential stub matching for the rest: draw two stub owners
        //    weighted by remaining stubs, reject self/duplicates, bounded
        //    retries (erased-configuration behavior).
        let mut free: f64 = remaining.iter().map(|&x| x as f64).sum();
        let mut failures = 0usize;
        let failure_budget = 20 * self.n;
        while free >= 2.0 && failures < failure_budget {
            let a = match sampler.sample(rng) {
                Some(a) => a,
                None => break,
            };
            let wa = sampler.weight(a);
            sampler.set_weight(a, 0.0);
            let b = match sampler.sample(rng) {
                Some(b) => b,
                None => {
                    sampler.set_weight(a, wa);
                    break;
                }
            };
            sampler.set_weight(a, wa);
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            if g.has_edge(na, nb) {
                failures += 1;
                continue;
            }
            g.add_edge(na, nb).expect("distinct by masking");
            remaining[a] -= 1;
            remaining[b] -= 1;
            sampler.set_weight(a, remaining[a] as f64);
            sampler.set_weight(b, remaining[b] as f64);
            free -= 2.0;
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `inet` model. Defaults are the 2001 AS-map
/// parameterization ([`InetLike::as_map_2001`]).
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(InetLike::try_new(
            p.usize("n")?,
            p.f64("gamma")?,
            p.u64("kmin")?,
        )?))
    }
    ModelSpec {
        name: "inet",
        summary: "power-law degree-sequence Internet generator (Inet-3.0 style)",
        schema: vec![
            p_n(),
            p_float("gamma", "degree exponent of the prescribed tail", 2.22),
            p_int("kmin", "minimum degree of the sequence", 1),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn connected_by_construction() {
        let mut rng = seeded_rng(1);
        let net = InetLike::as_map_2001(3000).generate(&mut rng);
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn degree_exponent_matches_request() {
        let mut rng = seeded_rng(2);
        let net = InetLike::new(20_000, 2.2, 1).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 2).unwrap();
        assert!((fit.gamma - 2.2).abs() < 0.25, "gamma = {}", fit.gamma);
    }

    #[test]
    fn mean_degree_in_as_band() {
        let mut rng = seeded_rng(3);
        let net = InetLike::as_map_2001(11_000).generate(&mut rng);
        let mean = net.graph.mean_degree();
        // gamma 2.22, kmin 1 with erased stubs: <k> lands in the 2-6 band
        // bracketing the AS map's 4.2.
        assert!((2.0..6.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn hubs_present() {
        let mut rng = seeded_rng(4);
        let net = InetLike::as_map_2001(11_000).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        assert!(max > 200, "max degree {max}");
    }

    #[test]
    fn disassortative_core() {
        let mut rng = seeded_rng(5);
        let net = InetLike::as_map_2001(8_000).generate(&mut rng);
        let csr = net.graph.to_csr();
        let knn = inet_metrics::KnnStats::measure(&csr);
        assert!(knn.assortativity < 0.0, "r = {}", knn.assortativity);
    }

    #[test]
    fn determinism() {
        let a = InetLike::as_map_2001(800).generate(&mut seeded_rng(6));
        let b = InetLike::as_map_2001(800).generate(&mut seeded_rng(6));
        assert_eq!(a.graph, b.graph);
    }
}
