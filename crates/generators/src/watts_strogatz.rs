//! Watts–Strogatz small-world model (Nature 393, 440).
//!
//! Not an Internet model — a *control*: it produces the small world and
//! high clustering without any heavy tail, so comparison tables use it to
//! show that those two properties alone don't make an AS map.
//!
//! Start from a ring where each node connects to its `k/2` nearest
//! neighbors on each side; rewire each edge's far endpoint with
//! probability `p` to a uniformly random node (no self-loops/duplicates).

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use rand::{rngs::StdRng, Rng};

/// Watts–Strogatz parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    /// Number of nodes.
    pub n: usize,
    /// Even ring degree `k` (each node starts with `k` neighbors).
    pub k: usize,
    /// Rewiring probability `p ∈ [0, 1]`.
    pub p: f64,
}

impl WattsStrogatz {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even, `2 <= k < n`, and `0 <= p <= 1`;
    /// [`WattsStrogatz::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, k: usize, p: f64) -> Self {
        match Self::try_new(n, k, p) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, k: usize, p: f64) -> Result<Self, ModelError> {
        let g = WattsStrogatz { n, k, p };
        Generator::validate(&g)?;
        Ok(g)
    }
}

impl Generator for WattsStrogatz {
    fn name(&self) -> String {
        format!("WS k={} p={:.2}", self.k, self.p)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.k % 2 == 0 && self.k >= 2,
            "WS",
            "ring degree must be even and >= 2",
            format!("k = {}", self.k),
        )?;
        require(
            self.k < self.n,
            "WS",
            "ring degree must be below n",
            format!("n = {}, k = {}", self.n, self.k),
        )?;
        require(
            (0.0..=1.0).contains(&self.p),
            "WS",
            "p must be a probability",
            format!("p = {}", self.p),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        // Ring lattice.
        for v in 0..self.n {
            for offset in 1..=self.k / 2 {
                let u = (v + offset) % self.n;
                g.add_edge(NodeId::new(v), NodeId::new(u))
                    .expect("lattice edge");
            }
        }
        // Rewire the clockwise stubs.
        for v in 0..self.n {
            for offset in 1..=self.k / 2 {
                if rng.gen_range(0.0..1.0) >= self.p {
                    continue;
                }
                let old = (v + offset) % self.n;
                // Pick a fresh endpoint; bounded retries to dodge
                // saturation at extreme k/n ratios.
                for _ in 0..32 {
                    let new = rng.gen_range(0..self.n);
                    if new == v || g.has_edge(NodeId::new(v), NodeId::new(new)) {
                        continue;
                    }
                    g.remove_edge(NodeId::new(v), NodeId::new(old))
                        .expect("lattice edge present");
                    g.add_edge(NodeId::new(v), NodeId::new(new))
                        .expect("checked");
                    break;
                }
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `ws` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        Ok(Box::new(WattsStrogatz::try_new(
            p.usize("n")?,
            p.usize("k")?,
            p.f64("p")?,
        )?))
    }
    ModelSpec {
        name: "ws",
        summary: "Watts-Strogatz small-world control (Nature 1998)",
        schema: vec![
            p_n(),
            p_int("k", "even ring degree before rewiring", 4),
            p_float("p", "rewiring probability", 0.1),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn p_zero_is_the_ring_lattice() {
        let mut rng = seeded_rng(1);
        let net = WattsStrogatz::new(40, 4, 0.0).generate(&mut rng);
        assert!(net.graph.degrees().iter().all(|&d| d == 4));
        assert_eq!(net.graph.edge_count(), 80);
        // Lattice clustering for k=4 is 1/2.
        let c = inet_metrics::ClusteringStats::measure(&net.graph.to_csr());
        assert!((c.mean_local - 0.5).abs() < 1e-9, "c = {}", c.mean_local);
    }

    #[test]
    fn small_p_keeps_clustering_but_shrinks_paths() {
        let lattice = WattsStrogatz::new(500, 6, 0.0).generate(&mut seeded_rng(2));
        let sw = WattsStrogatz::new(500, 6, 0.05).generate(&mut seeded_rng(2));
        let measure = |net: &GeneratedNetwork| {
            let csr = net.graph.to_csr();
            let paths = inet_metrics::PathStats::measure_sampled(&csr, 100, 2);
            let c = inet_metrics::ClusteringStats::measure(&csr).mean_local;
            (paths.mean, c)
        };
        let (l0, c0) = measure(&lattice);
        let (l1, c1) = measure(&sw);
        assert!(
            l1 < 0.5 * l0,
            "paths {l0} -> {l1}: shortcuts must collapse distances"
        );
        assert!(
            c1 > 0.6 * c0,
            "clustering {c0} -> {c1} fell too much at p = 0.05"
        );
    }

    #[test]
    fn no_heavy_tail_at_any_p() {
        let mut rng = seeded_rng(3);
        let net = WattsStrogatz::new(3000, 6, 0.3).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().expect("non-empty");
        assert!(max < 20, "WS should stay narrow, max degree {max}");
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let mut rng = seeded_rng(4);
        let net = WattsStrogatz::new(200, 4, 1.0).generate(&mut rng);
        assert_eq!(net.graph.edge_count(), 400);
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn determinism() {
        let a = WattsStrogatz::new(100, 4, 0.2).generate(&mut seeded_rng(5));
        let b = WattsStrogatz::new(100, 4, 0.2).generate(&mut seeded_rng(5));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = WattsStrogatz::new(10, 3, 0.1);
    }
}
