//! Bianconi–Barabási fitness model (Europhys. Lett. 54, 436 — the source
//! text's ref. \[15\], one of the "degree driven growing network models"
//! it benchmarks its ideas against).
//!
//! Preferential attachment with heterogeneous intrinsic quality: each node
//! draws a fitness `η ∈ (0, 1]` at birth and attracts links with
//! probability `Π_i ∝ η_i k_i`. Latecomers with high fitness can overtake
//! old low-fitness nodes ("fit-get-richer"), unlike plain BA where age
//! always wins.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::{rngs::StdRng, Rng};

/// Fitness distribution for [`BianconiBarabasi`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FitnessDistribution {
    /// `η ~ U(0, 1]` — the textbook case (`γ ≈ 2.25` with a logarithmic
    /// correction).
    Uniform,
    /// All fitnesses equal — degenerates to plain BA (`γ = 3`).
    Constant,
}

/// Bianconi–Barabási generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BianconiBarabasi {
    /// Final number of nodes.
    pub n: usize,
    /// Links per new node.
    pub m: usize,
    /// Fitness distribution.
    pub fitness: FitnessDistribution,
}

impl BianconiBarabasi {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `m >= 1` and `n > m`; [`BianconiBarabasi::try_new`]
    /// is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize, fitness: FitnessDistribution) -> Self {
        match Self::try_new(n, m, fitness) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, m: usize, fitness: FitnessDistribution) -> Result<Self, ModelError> {
        let g = BianconiBarabasi { n, m, fitness };
        Generator::validate(&g)?;
        Ok(g)
    }

    fn draw_fitness(&self, rng: &mut StdRng) -> f64 {
        match self.fitness {
            // (0, 1]: zero-fitness nodes would never attract anything.
            FitnessDistribution::Uniform => 1.0 - rng.gen_range(0.0..1.0),
            FitnessDistribution::Constant => 1.0,
        }
    }
}

impl Generator for BianconiBarabasi {
    fn name(&self) -> String {
        let f = match self.fitness {
            FitnessDistribution::Uniform => "uniform",
            FitnessDistribution::Constant => "constant",
        };
        format!("Bianconi-Barabasi m={} eta={f}", self.m)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.m >= 1,
            "Bianconi-Barabasi",
            "need at least one edge per node",
            format!("m = {}", self.m),
        )?;
        require(
            self.n > self.m,
            "Bianconi-Barabasi",
            "need more nodes than edges per step",
            format!("n = {}, m = {}", self.n, self.m),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let mut g = MultiGraph::with_capacity(self.n);
        let m0 = self.m + 1;
        g.add_nodes(m0);
        let mut fitness: Vec<f64> = (0..m0).map(|_| self.draw_fitness(rng)).collect();
        let mut sampler = DynamicWeightedSampler::new();
        for i in 0..m0 {
            for j in (i + 1)..m0 {
                g.add_edge(NodeId::new(i), NodeId::new(j))
                    .expect("seed clique");
            }
        }
        for (i, &eta) in fitness.iter().enumerate() {
            sampler.push(eta * g.degree(NodeId::new(i)) as f64);
        }
        let mut targets: Vec<usize> = Vec::with_capacity(self.m);
        for _ in m0..self.n {
            targets.clear();
            for _ in 0..self.m {
                let t = sampler.sample(rng).expect("positive mass after seeding");
                targets.push(t);
                sampler.set_weight(t, 0.0);
            }
            for &t in &targets {
                sampler.set_weight(t, fitness[t] * g.degree(NodeId::new(t)) as f64);
            }
            let v = g.add_node();
            let eta = self.draw_fitness(rng);
            fitness.push(eta);
            sampler.push(0.0);
            for &t in &targets {
                g.add_edge(v, NodeId::new(t)).expect("distinct targets");
                sampler.set_weight(t, fitness[t] * g.degree(NodeId::new(t)) as f64);
            }
            sampler.set_weight(v.index(), eta * g.degree(v) as f64);
        }
        let mut net = GeneratedNetwork::bare(g, self.name());
        // Expose fitnesses through the generic per-node channel.
        net.users = Some(fitness);
        net
    }
}

/// Registry entry: the CLI's `bianconi` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_int, p_n, p_str, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        let fitness = match p.str("fitness")? {
            "uniform" => FitnessDistribution::Uniform,
            "constant" => FitnessDistribution::Constant,
            other => {
                return Err(ModelError::Internal {
                    model: "bianconi".to_string(),
                    message: format!("fitness must be 'uniform' or 'constant' (got '{other}')"),
                })
            }
        };
        Ok(Box::new(BianconiBarabasi::try_new(
            p.usize("n")?,
            p.usize("m")?,
            fitness,
        )?))
    }
    ModelSpec {
        name: "bianconi",
        summary: "Bianconi-Barabasi fitness-driven preferential attachment (EPL 2001)",
        schema: vec![
            p_n(),
            p_int("m", "links per new node", 2),
            p_str(
                "fitness",
                "fitness distribution: uniform | constant",
                "uniform",
            ),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn grows_connected_with_min_degree_m() {
        let mut rng = seeded_rng(1);
        let net = BianconiBarabasi::new(800, 2, FitnessDistribution::Uniform).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 800);
        assert!(net.graph.degrees().iter().all(|&d| d >= 2));
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn constant_fitness_matches_ba_statistics() {
        let mut rng = seeded_rng(2);
        let net =
            BianconiBarabasi::new(15_000, 2, FitnessDistribution::Constant).generate(&mut rng);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 15).expect("fittable");
        assert!((fit.gamma - 3.0).abs() < 0.4, "gamma = {}", fit.gamma);
    }

    #[test]
    fn uniform_fitness_flattens_the_tail() {
        // Fitness heterogeneity lowers the exponent below BA's 3.
        let gamma = |fitness, seed| {
            let net = BianconiBarabasi::new(15_000, 2, fitness).generate(&mut seeded_rng(seed));
            let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
            inet_stats::powerlaw::fit_discrete(&degrees, 15)
                .expect("fittable")
                .gamma
        };
        let g_const = gamma(FitnessDistribution::Constant, 3);
        let g_uniform = gamma(FitnessDistribution::Uniform, 3);
        assert!(
            g_uniform < g_const - 0.2,
            "uniform {g_uniform} !< constant {g_const} - 0.2"
        );
    }

    #[test]
    fn fitness_drives_degree_within_a_birth_cohort() {
        // Control for age: among the first 500 nodes (same growth horizon),
        // the high-fitness half must end up much better connected than the
        // low-fitness half — the fit-get-richer mechanism.
        let mut rng = seeded_rng(4);
        let net = BianconiBarabasi::new(8000, 2, FitnessDistribution::Uniform).generate(&mut rng);
        let fitness = net.users.as_ref().expect("fitness recorded");
        let degrees = net.graph.degrees();
        let cohort = 500usize;
        let mut ranked: Vec<usize> = (0..cohort).collect();
        ranked.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).expect("finite"));
        let mean =
            |ids: &[usize]| ids.iter().map(|&v| degrees[v] as f64).sum::<f64>() / ids.len() as f64;
        let low = mean(&ranked[..cohort / 2]);
        let high = mean(&ranked[cohort / 2..]);
        assert!(
            high > 1.5 * low,
            "high-fitness mean degree {high} vs low-fitness {low}"
        );
    }

    #[test]
    fn determinism() {
        let a = BianconiBarabasi::new(400, 2, FitnessDistribution::Uniform)
            .generate(&mut seeded_rng(5));
        let b = BianconiBarabasi::new(400, 2, FitnessDistribution::Uniform)
            .generate(&mut seeded_rng(5));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "more nodes than edges")]
    fn rejects_tiny_n() {
        let _ = BianconiBarabasi::new(2, 2, FitnessDistribution::Uniform);
    }
}
