//! Typed error taxonomy of the generator layer.
//!
//! Mirrors [`inet_graph::GraphError`]: every way a model can refuse to run
//! or fail mid-growth is a variant with enough structure for a CLI to map
//! it to a one-line message and a distinct exit code, instead of an
//! `assert!` killing a multi-hour sweep.

use std::fmt;

/// Errors produced by generator parameter validation and fallible
/// generation ([`crate::Generator::try_generate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter (or parameter combination) violates the model's
    /// documented domain.
    InvalidParam {
        /// Short model tag (e.g. `"BA"`).
        model: &'static str,
        /// The violated constraint, phrased as the requirement.
        constraint: &'static str,
        /// The offending value(s), rendered.
        got: String,
    },
    /// Generation itself failed after validation passed — a caught panic
    /// from the growth loop, surfaced as data instead of an abort.
    Internal {
        /// The generator's display name.
        model: String,
        /// Best-effort panic message.
        message: String,
    },
    /// An injected fault from the `fault-inject` harness fired at the
    /// `generator.generate` failpoint.
    Fault(inet_fault::FaultError),
}

impl ModelError {
    /// Convenience constructor for [`ModelError::InvalidParam`].
    pub fn invalid(model: &'static str, constraint: &'static str, got: impl fmt::Display) -> Self {
        ModelError::InvalidParam {
            model,
            constraint,
            got: got.to_string(),
        }
    }
}

/// Returns `Err(InvalidParam)` unless `ok` holds. The generators call this
/// once per documented constraint; the `constraint` strings double as the
/// panic messages of the legacy `new` constructors, so `#[should_panic]`
/// expectations keep matching.
pub(crate) fn require(
    ok: bool,
    model: &'static str,
    constraint: &'static str,
    got: impl fmt::Display,
) -> Result<(), ModelError> {
    if ok {
        Ok(())
    } else {
        Err(ModelError::invalid(model, constraint, got))
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParam {
                model,
                constraint,
                got,
            } => write!(f, "{model}: {constraint} (got {got})"),
            ModelError::Internal { model, message } => {
                write!(f, "{model}: generation failed: {message}")
            }
            ModelError::Fault(e) => write!(f, "generator: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<inet_fault::FaultError> for ModelError {
    fn from(e: inet_fault::FaultError) -> Self {
        ModelError::Fault(e)
    }
}

/// Best-effort text from a caught panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_model_constraint_and_value() {
        let e = ModelError::invalid("BA", "need more nodes than edges per step", "n = 2, m = 5");
        let text = e.to_string();
        assert!(text.contains("BA"), "{text}");
        assert!(text.contains("more nodes than edges"), "{text}");
        assert!(text.contains("n = 2"), "{text}");
    }

    #[test]
    fn require_passes_and_fails() {
        assert!(require(true, "X", "c", 0).is_ok());
        let err = require(false, "X", "must hold", 7).unwrap_err();
        assert!(matches!(err, ModelError::InvalidParam { .. }));
        assert!(err.to_string().contains("must hold"));
    }

    #[test]
    fn fault_errors_convert() {
        let fault = inet_fault::FaultError {
            failpoint: "generator.generate",
            scope: 0,
        };
        let e: ModelError = fault.into();
        assert!(e.to_string().contains("generator.generate"));
    }
}
