//! The Serrano–Boguñá–Díaz-Guilera competition–adaptation model
//! (PRL 94, 038701 (2005)) — a weighted growing network driven by demand
//! and supply.
//!
//! The Internet is modeled as ASs competing for a growing pool of users and
//! adapting their bandwidth to serve them:
//!
//! 1. **Demand growth** — `ΔW(t)` new users join and pick providers by
//!    linear preference `Π_i = ω_i / W`.
//! 2. **Node birth** — `ΔN(t)` new ASs appear, each taking `ω₀` users
//!    withdrawn from the pool; placed on a fractal geography when the
//!    distance constraint is on.
//! 3. **Adaptation** — each AS targets bandwidth
//!    `b_i = 1 + a(t)(ω_i − ω₀)` with `a(t) = (2B(t) − N)/(W − ω₀N)`,
//!    where `B(t) = B₀e^{δ′t}` tracks global traffic.
//! 4. **Matching** — deficit-weighted peers pair up; distance acceptance
//!    `exp(−d_ij/d_c)` with `d_c = ω_i ω_j/(κW)` suppresses long links
//!    between small peers; reinforcement probability `r` trades
//!    multi-links against partner diversity.
//!
//! The run history (`W`, `N`, `E`, `B` per iteration) is recorded so growth
//! analyses (Fig. 1) and loop-scaling sweeps (Fig. 4) can read intermediate
//! states.

mod matching;
mod params;
mod users;

pub use matching::{match_deficits, MatchStats};
pub use params::{DistanceConstraint, SerranoParams};
pub use users::UserPool;

use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_spatial::{FractalSet, Point2};
use rand::{rngs::StdRng, Rng};

/// One iteration's aggregate state, recorded for growth analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthRecord {
    /// Iteration ("month").
    pub t: u32,
    /// Total users.
    pub users: f64,
    /// Node count.
    pub nodes: usize,
    /// Distinct edges.
    pub edges: usize,
    /// Total bandwidth (sum of multiplicities).
    pub bandwidth: u64,
}

/// Full output of a model run.
#[derive(Debug, Clone)]
pub struct SerranoRun {
    /// The generated network (graph + positions + user counts).
    pub network: GeneratedNetwork,
    /// Aggregate state per iteration.
    pub history: Vec<GrowthRecord>,
    /// Iterations executed.
    pub iterations: u32,
}

/// The competition–adaptation generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerranoModel {
    /// Model parameters.
    pub params: SerranoParams,
}

impl SerranoModel {
    /// Creates the model, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics on incoherent parameters; [`SerranoModel::try_new`] is the
    /// panic-free form.
    pub fn new(params: SerranoParams) -> Self {
        params.validate();
        SerranoModel { params }
    }

    /// Creates the model, rejecting incoherent parameters with a typed
    /// error.
    pub fn try_new(params: SerranoParams) -> Result<Self, ModelError> {
        params.try_validate()?;
        Ok(SerranoModel { params })
    }

    /// Paper parameterization with the distance constraint.
    pub fn paper_2001() -> Self {
        Self::new(SerranoParams::paper_2001())
    }

    /// Paper parameterization without the distance constraint.
    pub fn paper_2001_no_distance() -> Self {
        Self::new(SerranoParams::paper_2001_no_distance())
    }

    /// Runs the model to `target_n` nodes, returning the full run record.
    pub fn run(&self, rng: &mut StdRng) -> SerranoRun {
        let p = &self.params;
        // Geography: a fixed fractal support for the whole run (the
        // environment's geography does not change as the network grows).
        let (cells, fractal) = match p.distance {
            Some(d) => {
                let f = FractalSet::new(d.fractal_dimension, d.depth);
                (Some(f.generate_cells(rng)), Some(f))
            }
            None => (None, None),
        };
        let mut positions: Vec<Point2> = Vec::new();
        let place = |n: usize, rng: &mut StdRng, positions: &mut Vec<Point2>| {
            if let (Some(cells), Some(f)) = (&cells, &fractal) {
                positions.extend(f.place_points(cells, n, rng));
            }
        };

        let mut pool = UserPool::new(p.n0, p.omega0);
        let mut g = MultiGraph::with_capacity(p.target_n + 16);
        g.add_nodes(p.n0);
        place(p.n0, rng, &mut positions);

        // Distance-kernel cost density: kappa0 = omega0 / (n0 * sqrt(2)),
        // scaled by the user's kappa_scale. Chosen so that at t = 0 two
        // seed-sized ASs have d_c equal to the domain diagonal.
        let kappa = p
            .distance
            .map(|d| d.kappa_scale * p.omega0 / (p.n0 as f64 * std::f64::consts::SQRT_2));

        let mut history: Vec<GrowthRecord> = vec![GrowthRecord {
            t: 0,
            users: pool.total(),
            nodes: g.node_count(),
            edges: g.edge_count(),
            bandwidth: g.total_weight(),
        }];

        let mut deficits: Vec<f64> = Vec::new();
        let mut t: u32 = 0;
        // Birth reserve: users collected smoothly each iteration (the
        // continuum −βω₀ levy) and spent ω₀ at a time when a node is born.
        // Without the smoothing, the rare early births would hit the tiny
        // seed population with ω₀-sized slugs and make the oldest nodes'
        // trajectories path-dependent, breaking the Eq. (3) comparison.
        let mut reserve = 0.0f64;
        let mut max_node_target = p.n0 as f64;
        // Hard cap: generous multiple of the analytic horizon.
        let max_iters = p.horizon().saturating_mul(3).max(16);

        while g.node_count() < p.target_n && t < max_iters {
            t += 1;
            let tf = t as f64;

            // (1) demand growth.
            let delta_w = p.users_at(tf) - pool.total() - reserve;
            pool.grow_with_preference(delta_w.max(0.0), p.theta, p.stochastic_users, rng);

            // (3 of the rules list) user reallocation (diffusion only).
            pool.reallocate(p.lambda, p.stochastic_users, rng);

            // (2) node birth: levy the expected birth mass, then spawn as
            // many ω₀-funded nodes as the schedule and the reserve allow.
            let node_target = p.nodes_at(tf);
            let expected_births = node_target - max_node_target;
            max_node_target = node_target;
            reserve += pool.levy(expected_births.max(0.0) * p.omega0);
            while (g.node_count() as f64) < node_target.floor()
                && reserve >= p.omega0
                && g.node_count() < p.target_n
            {
                pool.add_node_funded(p.omega0);
                reserve -= p.omega0;
                g.add_node();
                place(1, rng, &mut positions);
            }

            // (4) adaptation: bandwidth targets and deficits.
            let n = g.node_count();
            let w = pool.total();
            let big_b = p.bandwidth_at(tf);
            let denom = w - p.omega0 * n as f64;
            let a = if denom > 1e-9 {
                ((2.0 * big_b - n as f64) / denom).max(0.0)
            } else {
                (2.0 * big_b / w).max(0.0)
            };
            deficits.clear();
            deficits.resize(n, 0.0);
            for (i, d) in deficits.iter_mut().enumerate() {
                let target = 1.0 + a * (pool.users(i) - p.omega0);
                let current = g.strength(NodeId::new(i)) as f64;
                *d = (target - current).max(0.0);
            }

            // Matching with the distance kernel (or always-accept).
            let total_deficit: f64 = deficits.iter().sum();
            let budget =
                (p.max_attempts_factor as u64).saturating_mul(total_deficit.ceil() as u64 + 2);
            match kappa {
                Some(kappa) => {
                    let pos = &positions;
                    let pool_ref = &pool;
                    let _ = match_deficits(&mut g, &mut deficits, p.r, budget, rng, |i, j, rng| {
                        let d = pos[i].dist(&pos[j]);
                        let dc = pool_ref.users(i) * pool_ref.users(j) / (kappa * w);
                        let prob = (-d / dc.max(1e-12)).exp();
                        rng.gen_range(0.0..1.0) < prob
                    });
                }
                None => {
                    let _ = match_deficits(&mut g, &mut deficits, p.r, budget, rng, |_, _, _| true);
                }
            }

            history.push(GrowthRecord {
                t,
                users: pool.total(),
                nodes: g.node_count(),
                edges: g.edge_count(),
                bandwidth: g.total_weight(),
            });
        }

        let users = pool.as_slice().to_vec();
        SerranoRun {
            network: GeneratedNetwork {
                graph: g,
                positions: if positions.is_empty() {
                    None
                } else {
                    Some(positions)
                },
                users: Some(users),
                name: self.name(),
            },
            history,
            iterations: t,
        }
    }
}

impl Generator for SerranoModel {
    fn name(&self) -> String {
        let dist = if self.params.distance.is_some() {
            "dist"
        } else {
            "nodist"
        };
        format!("Serrano r={:.1} {dist}", self.params.r)
    }

    fn validate(&self) -> Result<(), ModelError> {
        self.params.try_validate()
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        self.run(rng).network
    }
}

/// Shared schema for both Serrano registry entries; defaults come from
/// [`SerranoParams::paper_2001`] scaled by the caller-provided `n`
/// (i.e. the historical `SerranoParams::small(n)` CLI parameterization).
fn serrano_schema(distance_default: bool) -> Vec<crate::registry::ParamSpec> {
    use crate::registry::{p_bool, p_float, p_int, p_n};
    let d = DistanceConstraint::default();
    let p = SerranoParams::paper_2001();
    vec![
        p_n(),
        p_float("omega0", "users brought by each new node", p.omega0),
        p_int("n0", "seed node count", p.n0 as i64),
        p_float("b0", "seed total bandwidth", p.b0),
        p_float("alpha", "user growth rate per iteration", p.alpha),
        p_float("beta", "node growth rate per iteration", p.beta),
        p_float(
            "delta_prime",
            "bandwidth growth rate per iteration",
            p.delta_prime,
        ),
        p_float("lambda", "user reallocation (diffusion) rate", p.lambda),
        p_float("r", "parallel-unit reinforcement probability", p.r),
        p_float("theta", "preference-kernel exponent", p.theta),
        p_bool(
            "distance",
            "apply the fractal distance constraint",
            distance_default,
        ),
        p_float(
            "fractal_dimension",
            "fractal dimension of the placement set",
            d.fractal_dimension,
        ),
        p_int("depth", "fractal subdivision depth", i64::from(d.depth)),
        p_float(
            "kappa_scale",
            "cost-density multiplier of the distance kernel",
            d.kappa_scale,
        ),
        p_bool(
            "stochastic_users",
            "model user-dynamics noise",
            p.stochastic_users,
        ),
        p_int(
            "max_attempts_factor",
            "matching-loop attempt budget factor",
            p.max_attempts_factor as i64,
        ),
    ]
}

/// Builds a [`SerranoModel`] from resolved registry parameters.
fn serrano_build(p: &crate::registry::Params) -> Result<Box<dyn Generator>, ModelError> {
    let distance = if p.bool("distance")? {
        Some(DistanceConstraint {
            fractal_dimension: p.f64("fractal_dimension")?,
            depth: p.u32("depth")?,
            kappa_scale: p.f64("kappa_scale")?,
        })
    } else {
        None
    };
    let params = SerranoParams {
        omega0: p.f64("omega0")?,
        n0: p.usize("n0")?,
        b0: p.f64("b0")?,
        alpha: p.f64("alpha")?,
        beta: p.f64("beta")?,
        delta_prime: p.f64("delta_prime")?,
        lambda: p.f64("lambda")?,
        r: p.f64("r")?,
        theta: p.f64("theta")?,
        target_n: p.usize("n")?,
        distance,
        stochastic_users: p.bool("stochastic_users")?,
        max_attempts_factor: p.usize("max_attempts_factor")?,
    };
    Ok(Box::new(SerranoModel::try_new(params)?))
}

/// Registry entry: the CLI's `serrano` model (distance constraint on).
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    crate::registry::ModelSpec {
        name: "serrano",
        summary: "Serrano-Boguna-Diaz-Guilera user-driven AS growth, with the fractal distance constraint",
        schema: serrano_schema(true),
        build: serrano_build,
    }
}

/// Registry entry: the CLI's `serrano-nodist` model (distance constraint
/// off — the paper's dashed-line variant).
pub(crate) fn registry_entry_nodist() -> crate::registry::ModelSpec {
    crate::registry::ModelSpec {
        name: "serrano-nodist",
        summary: "Serrano user-driven AS growth without the distance constraint",
        schema: serrano_schema(false),
        build: serrano_build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    fn small_run(target: usize, seed: u64, distance: bool) -> SerranoRun {
        let mut params = SerranoParams::small(target);
        if !distance {
            params.distance = None;
        }
        SerranoModel::new(params).run(&mut seeded_rng(seed))
    }

    #[test]
    fn reaches_target_size() {
        let run = small_run(500, 1, false);
        assert!(run.network.graph.node_count() >= 500);
        assert!(run.iterations > 0);
        assert_eq!(run.history.len() as u32, run.iterations + 1);
    }

    #[test]
    fn history_is_monotone_growth() {
        let run = small_run(400, 2, false);
        for w in run.history.windows(2) {
            assert!(w[1].users >= w[0].users);
            assert!(w[1].nodes >= w[0].nodes);
            assert!(w[1].bandwidth >= w[0].bandwidth);
        }
    }

    #[test]
    fn user_conservation() {
        let run = small_run(300, 3, false);
        let users = run.network.users.as_ref().unwrap();
        let sum: f64 = users.iter().sum();
        let last = run.history.last().unwrap();
        assert!((sum - last.users).abs() < 1e-6 * sum);
        assert!(users.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn bandwidth_tracks_prescription() {
        let run = small_run(600, 4, false);
        let p = SerranoParams::small(600);
        let last = run.history.last().unwrap();
        let prescribed = p.bandwidth_at(last.t as f64);
        let ratio = last.bandwidth as f64 / prescribed;
        assert!(
            (0.5..1.5).contains(&ratio),
            "bandwidth {} vs prescribed {prescribed}",
            last.bandwidth
        );
    }

    #[test]
    fn multi_edges_exist() {
        let run = small_run(800, 5, false);
        let g = &run.network.graph;
        assert!(
            g.total_weight() > g.edge_count() as u64,
            "the model must produce multiple connections"
        );
    }

    #[test]
    fn heavy_tailed_degrees() {
        let run = small_run(2000, 6, false);
        let degrees: Vec<u64> = run
            .network
            .graph
            .degrees()
            .iter()
            .map(|&d| d as u64)
            .collect();
        let max = *degrees.iter().max().unwrap();
        assert!(
            max as f64 > 0.05 * 2000.0,
            "max degree {max}: no hub emerged"
        );
    }

    #[test]
    fn distance_variant_produces_positions() {
        let run = small_run(300, 7, true);
        let pos = run.network.positions.as_ref().expect("positions recorded");
        assert_eq!(pos.len(), run.network.graph.node_count());
        let no_dist = small_run(300, 7, false);
        assert!(no_dist.network.positions.is_none());
    }

    #[test]
    fn users_correlate_with_strength() {
        let run = small_run(1000, 8, false);
        let g = &run.network.graph;
        let users = run.network.users.as_ref().unwrap();
        // Rank correlation proxy: the max-user node should be near the max
        // strength.
        let max_user = (0..g.node_count())
            .max_by(|&a, &b| users[a].partial_cmp(&users[b]).unwrap())
            .unwrap();
        let strengths = g.strengths();
        let max_strength = *strengths.iter().max().unwrap();
        assert!(
            strengths[max_user] as f64 >= 0.5 * max_strength as f64,
            "biggest AS is not among the best connected"
        );
    }

    #[test]
    fn determinism() {
        let a = small_run(300, 9, true);
        let b = small_run(300, 9, true);
        assert_eq!(a.network.graph, b.network.graph);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn giant_component_dominates() {
        let run = small_run(1500, 10, false);
        let csr = run.network.graph.to_csr();
        assert!(
            inet_graph::traversal::giant_fraction(&csr) > 0.9,
            "network fragmented"
        );
    }
}
