//! The environment: a growing pool of users competing for by ASs.
//!
//! Users are not simulated individually — at the paper's scales the pool
//! reaches `~10⁸` users, so the pool evolves node-level aggregates `ω_i`:
//!
//! * **Growth** distributes `ΔW` new users by the linear preference
//!   `Π_i = ω_i / W` (rich get richer), optionally with the multinomial
//!   noise restored as a Gaussian diffusion term.
//! * **Reallocation** at rate `λ` moves users between ASs; under linear
//!   preference its drift cancels exactly (Eq. 2 of the source text) and
//!   only diffusion remains.
//! * **Node birth** withdraws `ω₀` users per new node uniformly from the
//!   existing population (i.e. proportionally to `ω_i`).

use inet_stats::dist::standard_normal;
use rand::Rng;

/// Per-node user counts plus their exact total.
#[derive(Debug, Clone)]
pub struct UserPool {
    omega: Vec<f64>,
    total: f64,
}

impl UserPool {
    /// Seeds the pool with `n0` nodes of `omega0` users each.
    pub fn new(n0: usize, omega0: f64) -> Self {
        UserPool {
            omega: vec![omega0; n0],
            total: omega0 * n0 as f64,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.omega.len()
    }

    /// `true` when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.omega.is_empty()
    }

    /// Total users `W`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Users of node `i`.
    pub fn users(&self, i: usize) -> f64 {
        self.omega[i]
    }

    /// Borrow the full vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.omega
    }

    /// Distributes `delta_w ≥ 0` new users by linear preference. With
    /// `noise`, each share receives its multinomial fluctuation
    /// `√(ΔW π_i (1−π_i)) ξ` (clamped so no node loses users during
    /// growth), then the total is renormalized to be exact.
    pub fn grow<R: Rng>(&mut self, delta_w: f64, noise: bool, rng: &mut R) {
        self.grow_with_preference(delta_w, 1.0, noise, rng);
    }

    /// Like [`UserPool::grow`], but with the generalized preference kernel
    /// `Π_i ∝ ω_i^θ` (`θ = 1` is the paper's linear competition; `θ < 1`
    /// damps and `θ > 1` sharpens the rich-get-richer effect — the
    /// preference-function ablation).
    pub fn grow_with_preference<R: Rng>(
        &mut self,
        delta_w: f64,
        theta: f64,
        noise: bool,
        rng: &mut R,
    ) {
        debug_assert!(delta_w >= 0.0);
        assert!(theta >= 0.0, "preference exponent must be non-negative");
        if self.total <= 0.0 || delta_w <= 0.0 {
            return;
        }
        let w = self.total;
        let linear = (theta - 1.0).abs() < 1e-12;
        if !noise && linear {
            let factor = 1.0 + delta_w / w;
            for o in &mut self.omega {
                *o *= factor;
            }
            self.total += delta_w;
            return;
        }
        let z: f64 = if linear {
            w
        } else {
            self.omega.iter().map(|&o| o.powf(theta)).sum()
        };
        let mut new_total = 0.0;
        for o in &mut self.omega {
            let pi = if linear { *o / z } else { o.powf(theta) / z };
            let mean = delta_w * pi;
            let gain = if noise {
                let sd = (delta_w * pi * (1.0 - pi)).max(0.0).sqrt();
                (mean + sd * standard_normal(rng)).max(0.0)
            } else {
                mean
            };
            *o += gain;
            new_total += *o;
        }
        // Renormalize: the pool total is a model invariant.
        let target = w + delta_w;
        let scale = target / new_total;
        for o in &mut self.omega {
            *o *= scale;
        }
        self.total = target;
    }

    /// Applies the `λ`-reallocation step. Drift cancels under linear
    /// preference; with `noise` the diffusion term `√(2λω_i) ξ` is applied
    /// (and the total preserved). Without noise this is a no-op.
    pub fn reallocate<R: Rng>(&mut self, lambda: f64, noise: bool, rng: &mut R) {
        debug_assert!(lambda >= 0.0);
        if lambda <= 0.0 || !noise || self.omega.is_empty() {
            return;
        }
        let w = self.total;
        let mut new_total = 0.0;
        for o in &mut self.omega {
            let sd = (2.0 * lambda * *o).max(0.0).sqrt();
            *o = (*o + sd * standard_normal(rng)).max(1.0);
            new_total += *o;
        }
        let scale = w / new_total;
        for o in &mut self.omega {
            *o *= scale;
        }
        self.total = w;
    }

    /// Charges an equal-share levy of `amount` users from the pool (clamped
    /// at the reflecting boundary like [`UserPool::spawn_node`]) and returns
    /// the amount actually collected. The pool total decreases by exactly
    /// the returned value.
    ///
    /// Used by the model driver to realize the continuum `−βω₀` withdrawal
    /// *smoothly*: the expected birth mass `ΔN·ω₀` is collected every
    /// iteration into a reserve that funds node births, instead of hitting
    /// the (initially tiny) population with rare `ω₀`-sized slugs whose
    /// timing would make early trajectories path-dependent.
    pub fn levy(&mut self, amount: f64) -> f64 {
        if amount <= 0.0 || self.omega.is_empty() {
            return 0.0;
        }
        let floor = 1.0f64;
        let available: f64 = self.omega.iter().map(|&o| (o - floor).max(0.0)).sum();
        let amount = amount.min(0.5 * available);
        if amount <= 0.0 {
            return 0.0;
        }
        let share = amount / self.omega.len() as f64;
        let mut collected = 0.0;
        for o in &mut self.omega {
            let take = share.min((*o - floor).max(0.0));
            *o -= take;
            collected += take;
        }
        if collected < amount - 1e-9 {
            let deficit = amount - collected;
            let excess: f64 = self.omega.iter().map(|&o| (o - floor).max(0.0)).sum();
            if excess > deficit {
                for o in &mut self.omega {
                    let frac = (*o - floor).max(0.0) / excess;
                    *o -= deficit * frac;
                }
                collected = amount;
            }
        }
        self.total -= collected;
        collected
    }

    /// Adds a node holding `omega` users supplied by the caller (funded
    /// from a levy reserve); the pool total increases by `omega`. Returns
    /// the new node's index.
    pub fn add_node_funded(&mut self, omega: f64) -> usize {
        debug_assert!(omega > 0.0);
        self.omega.push(omega);
        self.total += omega;
        self.omega.len() - 1
    }

    /// Withdraws `omega0` users from the population and hands them to a
    /// newly created node.
    ///
    /// The withdrawal is an **equal share per existing node** (clamped at
    /// the reflecting boundary `ω = ω₀`, with any clamped shortfall taken
    /// proportionally from the nodes above it). This realizes the constant
    /// `−βω₀` drift term of the source text's Eq. (2): with a
    /// *proportional* withdrawal the early nodes would grow at `α − β`
    /// instead of `α` and the size distribution's heavy tail collapses — a
    /// subtle but order-of-magnitude modeling difference.
    ///
    /// Returns the index of the new node, or `None` when the pool cannot
    /// spare `omega0` users (would drain it).
    pub fn spawn_node(&mut self, omega0: f64) -> Option<usize> {
        if self.total <= omega0 * 1.5 || self.omega.is_empty() {
            return None;
        }
        let floor = omega0.min(self.total / (2.0 * self.omega.len() as f64));
        let available: f64 = self.omega.iter().map(|&o| (o - floor).max(0.0)).sum();
        if available <= omega0 {
            return None;
        }
        let share = omega0 / self.omega.len() as f64;
        let mut collected = 0.0;
        for o in &mut self.omega {
            let take = share.min((*o - floor).max(0.0));
            *o -= take;
            collected += take;
        }
        if collected < omega0 - 1e-9 {
            // Shortfall from clamped nodes: take proportionally to the
            // excess above the boundary.
            let deficit = omega0 - collected;
            let excess: f64 = self.omega.iter().map(|&o| (o - floor).max(0.0)).sum();
            for o in &mut self.omega {
                let frac = (*o - floor).max(0.0) / excess;
                *o -= deficit * frac;
            }
        }
        self.omega.push(omega0);
        // Total is invariant: withdrawn users moved, not destroyed.
        Some(self.omega.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn seed_pool() {
        let p = UserPool::new(2, 5000.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total(), 10_000.0);
        assert_eq!(p.users(0), 5000.0);
    }

    #[test]
    fn deterministic_growth_is_proportional() {
        let mut rng = seeded_rng(1);
        let mut p = UserPool::new(2, 5000.0);
        // Make them unequal first.
        p.spawn_node(5000.0); // withdraws from both
        let before: Vec<f64> = p.as_slice().to_vec();
        let w0 = p.total();
        p.grow(1000.0, false, &mut rng);
        assert!((p.total() - (w0 + 1000.0)).abs() < 1e-6);
        for (i, &b) in before.iter().enumerate() {
            let expect = b * (1.0 + 1000.0 / w0);
            assert!((p.users(i) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn noisy_growth_preserves_total_and_positivity() {
        let mut rng = seeded_rng(2);
        let mut p = UserPool::new(4, 2500.0);
        for _ in 0..50 {
            let w = p.total();
            p.grow(0.04 * w, true, &mut rng);
            assert!((p.total() - 1.04 * w).abs() < 1e-6 * w);
            assert!(p.as_slice().iter().all(|&o| o > 0.0));
        }
    }

    #[test]
    fn noisy_growth_fluctuates_shares() {
        let mut rng = seeded_rng(3);
        let mut a = UserPool::new(2, 5000.0);
        let mut b = UserPool::new(2, 5000.0);
        a.grow(10_000.0, true, &mut rng);
        b.grow(10_000.0, false, &mut rng);
        assert!((a.users(0) - b.users(0)).abs() > 1.0, "noise had no effect");
    }

    #[test]
    fn reallocation_preserves_total() {
        let mut rng = seeded_rng(4);
        let mut p = UserPool::new(5, 2000.0);
        let w = p.total();
        p.reallocate(0.05, true, &mut rng);
        assert!((p.total() - w).abs() < 1e-6 * w);
        assert!(p.as_slice().iter().all(|&o| o > 0.0));
        // Without noise: exact no-op.
        let before = p.as_slice().to_vec();
        p.reallocate(0.05, false, &mut rng);
        assert_eq!(p.as_slice(), &before[..]);
    }

    #[test]
    fn spawn_withdraws_equal_shares() {
        let mut p = UserPool::new(2, 1000.0);
        // Give the pool enough headroom above the boundary.
        let mut rng = seeded_rng(0);
        p.grow(8000.0, false, &mut rng); // both nodes now at 5000
        let idx = p.spawn_node(1000.0).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(p.len(), 3);
        assert!((p.total() - 10_000.0).abs() < 1e-9, "total invariant");
        // Equal share: each of the two donors lost 500.
        assert!(
            (p.users(0) - 4500.0).abs() < 1e-9,
            "users(0) = {}",
            p.users(0)
        );
        assert!((p.users(1) - 4500.0).abs() < 1e-9);
        assert!((p.users(2) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn spawn_clamps_at_boundary_and_shifts_burden() {
        // One poor node at the boundary, one rich node: the rich node pays.
        let mut p = UserPool::new(1, 100.0);
        let mut rng = seeded_rng(0);
        p.grow(9900.0, false, &mut rng); // node 0 at 10_000
        p.spawn_node(100.0).unwrap(); // node 1 at 100 (the boundary)
        let rich_before = p.users(0);
        p.spawn_node(100.0).unwrap();
        // Node 1 sits at the floor: it must not be pushed below it.
        assert!(p.users(1) >= 49.9, "poor node drained: {}", p.users(1));
        assert!(p.users(0) < rich_before, "rich node must pay");
        assert!((p.total() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn spawn_refuses_to_drain_pool() {
        let mut p = UserPool::new(1, 5000.0);
        assert!(p.spawn_node(5000.0).is_none());
        assert_eq!(p.len(), 1);
    }
}
