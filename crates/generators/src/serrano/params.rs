//! Parameters of the competition–adaptation model.

use crate::error::require;
use crate::ModelError;
use serde::{Deserialize, Serialize};

/// Distance-constraint configuration (the model's "with distance" variant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceConstraint {
    /// Fractal dimension of the node-placement set (routers: ≈ 1.5).
    pub fractal_dimension: f64,
    /// Subdivision depth of the fractal set.
    pub depth: u32,
    /// Multiplier on the default cost density
    /// `κ₀ = ω₀ / (N₀ · √2)`; larger values shrink the characteristic
    /// distance `d_c(ω_i, ω_j) = ω_i ω_j / (κ W)` and localize small peers
    /// harder.
    ///
    /// The default 0.03 is calibrated so that at the paper's size
    /// (`N ≈ 11 000`) seed-sized peers can still reach their fractal
    /// neighborhood: it reproduces the AS map's clustering (≈ 0.3),
    /// disassortativity (≈ −0.2) and a > 90% giant component. With
    /// `kappa_scale = 1` the kernel is so strict late in the run that the
    /// youngest half of the ASs cannot find any acceptable peer and the
    /// network fragments.
    pub kappa_scale: f64,
}

impl Default for DistanceConstraint {
    fn default() -> Self {
        DistanceConstraint {
            fractal_dimension: 1.5,
            depth: 8,
            kappa_scale: 0.03,
        }
    }
}

/// Full parameter set of the Serrano–Boguñá–Díaz-Guilera model.
///
/// Rates are per iteration ("month"): the paper's empirical values are
/// `α = 0.035`, `β = 0.03`, `δ′ = 0.04`. Derived quantities:
///
/// * `τ = β/α` — size-distribution exponent is `1 + τ`;
/// * `μ = β/δ′` — degree–bandwidth scaling `k = b^μ`;
/// * `δ = 2β − αβ/δ′` — edge growth rate;
/// * `γ = 1 + 1/(2 − δ/β)` — predicted degree exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerranoParams {
    /// Users brought by (and withdrawn for) each new node (`ω₀`).
    pub omega0: f64,
    /// Seed node count (`N₀`).
    pub n0: usize,
    /// Seed total bandwidth (`B₀`).
    pub b0: f64,
    /// User growth rate `α` per iteration.
    pub alpha: f64,
    /// Node growth rate `β` per iteration.
    pub beta: f64,
    /// Bandwidth growth rate `δ′` per iteration.
    pub delta_prime: f64,
    /// User reallocation rate `λ` (pure diffusion; zero drift).
    pub lambda: f64,
    /// Reinforcement probability `r`: after a pair connects, each extra
    /// parallel unit forms with probability `r` while both still need
    /// bandwidth.
    pub r: f64,
    /// Preference-kernel exponent `θ` of the competition `Π_i ∝ ω_i^θ`
    /// (1 = the paper's linear preference).
    pub theta: f64,
    /// Stop once this many nodes exist.
    pub target_n: usize,
    /// Optional distance constraint (`None` = "without distance" variant).
    pub distance: Option<DistanceConstraint>,
    /// Model the multinomial/reallocation noise of user dynamics (Gaussian
    /// diffusion approximation). `false` gives the exact zero-noise drift
    /// trajectories of Eq. (3).
    pub stochastic_users: bool,
    /// Matching-loop guard: abort the per-iteration pairing after
    /// `max_attempts_factor × (total deficit)` candidate draws (only ever
    /// binds under extreme distance rejection).
    pub max_attempts_factor: usize,
}

impl SerranoParams {
    /// The paper's simulation parameterization (`ω₀ = 5000`, `N₀ = 2`,
    /// `B₀ = 1`, `α = 0.035`, `β = 0.03`, `δ′ = 0.04`, `r = 0.8`), with the
    /// distance constraint on a `D_f = 1.5` fractal, targeting the 2001 AS
    /// map size `N ≈ 11 000`.
    pub fn paper_2001() -> Self {
        SerranoParams {
            omega0: 5000.0,
            n0: 2,
            b0: 1.0,
            alpha: 0.035,
            beta: 0.03,
            delta_prime: 0.04,
            lambda: 0.0,
            r: 0.8,
            theta: 1.0,
            target_n: 11_000,
            distance: Some(DistanceConstraint::default()),
            stochastic_users: true,
            max_attempts_factor: 50,
        }
    }

    /// Same as [`SerranoParams::paper_2001`] but without the distance
    /// constraint (the paper's dashed-line variant).
    pub fn paper_2001_no_distance() -> Self {
        SerranoParams {
            distance: None,
            ..Self::paper_2001()
        }
    }

    /// A scaled-down variant for fast tests and examples.
    pub fn small(target_n: usize) -> Self {
        SerranoParams {
            target_n,
            ..Self::paper_2001()
        }
    }

    /// Validates parameter coherence. Called by the model constructor.
    ///
    /// # Panics
    ///
    /// Panics when rates are non-positive, `α ≤ β` (demand could not keep up
    /// with supply), `δ′ ≤ α` (bandwidth would fall behind traffic),
    /// `r ∉ [0, 1)`, or sizes are degenerate;
    /// [`SerranoParams::try_validate`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast validator
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Checks the same coherence constraints as
    /// [`SerranoParams::validate`], but reports the first violation as a
    /// typed [`ModelError`] instead of panicking.
    pub fn try_validate(&self) -> Result<(), ModelError> {
        const M: &str = "serrano";
        require(
            self.omega0 > 0.0,
            M,
            "omega0 must be positive",
            format!("omega0 = {}", self.omega0),
        )?;
        require(
            self.n0 >= 1,
            M,
            "need at least one seed node",
            format!("n0 = {}", self.n0),
        )?;
        require(
            self.b0 > 0.0,
            M,
            "b0 must be positive",
            format!("b0 = {}", self.b0),
        )?;
        require(
            self.alpha > 0.0 && self.beta > 0.0 && self.delta_prime > 0.0,
            M,
            "growth rates must be positive",
            format!(
                "alpha = {}, beta = {}, delta' = {}",
                self.alpha, self.beta, self.delta_prime
            ),
        )?;
        require(
            self.alpha > self.beta,
            M,
            "alpha > beta required: users must outgrow nodes (demand/supply balance)",
            format!("alpha = {}, beta = {}", self.alpha, self.beta),
        )?;
        require(
            self.delta_prime > self.alpha,
            M,
            "delta' > alpha required: bandwidth adapts to growing per-user traffic",
            format!("delta' = {}, alpha = {}", self.delta_prime, self.alpha),
        )?;
        require(
            self.lambda >= 0.0,
            M,
            "lambda must be non-negative",
            format!("lambda = {}", self.lambda),
        )?;
        require(
            (0.0..1.0).contains(&self.r),
            M,
            "r must lie in [0, 1)",
            format!("r = {}", self.r),
        )?;
        require(
            self.theta >= 0.0,
            M,
            "preference exponent must be non-negative",
            format!("theta = {}", self.theta),
        )?;
        require(
            self.target_n >= self.n0,
            M,
            "target size below seed size",
            format!("target_n = {}, n0 = {}", self.target_n, self.n0),
        )?;
        require(
            self.max_attempts_factor >= 1,
            M,
            "need a positive attempt budget",
            format!("max_attempts_factor = {}", self.max_attempts_factor),
        )
    }

    /// `τ = β/α` (AS size-distribution tail is `ω^-(1+τ)`).
    pub fn tau(&self) -> f64 {
        self.beta / self.alpha
    }

    /// `μ = β/δ′` — predicted degree–bandwidth exponent.
    pub fn mu(&self) -> f64 {
        self.beta / self.delta_prime
    }

    /// Edge growth rate `δ = 2β − αβ/δ′` implied by the closure
    /// `δ′ = αβ/(2β − δ)`.
    pub fn delta(&self) -> f64 {
        2.0 * self.beta - self.alpha * self.beta / self.delta_prime
    }

    /// Predicted degree exponent `γ = 1 + 1/(2 − δ/β)`.
    pub fn gamma(&self) -> f64 {
        1.0 + 1.0 / (2.0 - self.delta() / self.beta)
    }

    /// Total users `W(t) = ω₀ N₀ e^{αt}`.
    pub fn users_at(&self, t: f64) -> f64 {
        self.omega0 * self.n0 as f64 * (self.alpha * t).exp()
    }

    /// Expected node count `N(t) = N₀ e^{βt}`.
    pub fn nodes_at(&self, t: f64) -> f64 {
        self.n0 as f64 * (self.beta * t).exp()
    }

    /// Prescribed total bandwidth `B(t) = B₀ e^{δ′t}`.
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        self.b0 * (self.delta_prime * t).exp()
    }

    /// Number of iterations needed to reach `target_n` nodes.
    pub fn horizon(&self) -> u32 {
        ((self.target_n as f64 / self.n0 as f64).ln() / self.beta).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_derived_quantities() {
        let p = SerranoParams::paper_2001();
        p.validate();
        assert!((p.tau() - 0.03 / 0.035).abs() < 1e-12);
        assert!((p.mu() - 0.75).abs() < 1e-12);
        // delta = 2*0.03 - 0.035*0.03/0.04 = 0.03375.
        assert!((p.delta() - 0.03375).abs() < 1e-12);
        // gamma = 1 + 1/(2 - 1.125) = 2.142857...
        assert!((p.gamma() - (1.0 + 1.0 / 0.875)).abs() < 1e-12);
        // The paper quotes gamma = 2.2 +- 0.1 from empirical rates; the
        // simulation parameterization sits inside that band.
        assert!((p.gamma() - 2.2).abs() < 0.1);
    }

    #[test]
    fn growth_curves() {
        let p = SerranoParams::paper_2001();
        assert!((p.users_at(0.0) - 10_000.0).abs() < 1e-9);
        assert!((p.nodes_at(0.0) - 2.0).abs() < 1e-12);
        assert!((p.bandwidth_at(0.0) - 1.0).abs() < 1e-12);
        let t = p.horizon() as f64;
        assert!(p.nodes_at(t) >= p.target_n as f64);
        assert!(p.nodes_at(t - 1.0) < p.target_n as f64 * 1.05);
    }

    #[test]
    fn horizon_for_paper_size() {
        let p = SerranoParams::paper_2001();
        // ln(5500)/0.03 ~ 287 iterations.
        assert!((280..300).contains(&p.horizon()), "horizon {}", p.horizon());
    }

    #[test]
    #[should_panic(expected = "alpha > beta")]
    fn rejects_supply_outrunning_demand() {
        let p = SerranoParams {
            alpha: 0.02,
            ..SerranoParams::paper_2001()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "delta' > alpha")]
    fn rejects_lagging_bandwidth() {
        let p = SerranoParams {
            delta_prime: 0.03,
            ..SerranoParams::paper_2001()
        };
        p.validate();
    }

    #[test]
    fn small_preset_is_valid() {
        let p = SerranoParams::small(500);
        p.validate();
        assert_eq!(p.target_n, 500);
    }
}
