//! Bandwidth-deficit matching: the adaptation step.
//!
//! After each growth step every AS computes its bandwidth deficit
//! `Δb_i = max(0, b_target(ω_i) − b_current)`. Pairs of *active* nodes
//! (deficit ≥ 1) are drawn with probability proportional to their deficits —
//! nodes hungrier for bandwidth search harder for peers — and connect if an
//! acceptance predicate (the distance-cost kernel, or always-true) agrees.
//! A connecting pair reinforces its link with probability `r` per extra
//! unit while both stay active, trading partner diversification against
//! connection setup costs.

use inet_graph::{MultiGraph, NodeId};
use inet_stats::DynamicWeightedSampler;
use rand::{rngs::StdRng, Rng};

/// Outcome counters of one matching round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchStats {
    /// Candidate pair draws (including rejected ones).
    pub attempts: u64,
    /// New edges created between previously unconnected pairs.
    pub new_edges: u64,
    /// Reinforcement units added to existing pairs (including the `r`-loop).
    pub reinforcements: u64,
    /// Total deficit unmet when the round ended.
    pub leftover: f64,
}

/// Runs one matching round, mutating the graph and the deficits in place.
///
/// `accept(i, j, d_needed)` decides whether a drawn pair may connect (the
/// distance kernel); it receives the RNG last so the caller controls all
/// randomness.
pub fn match_deficits(
    g: &mut MultiGraph,
    deficits: &mut [f64],
    r: f64,
    max_attempts: u64,
    rng: &mut StdRng,
    mut accept: impl FnMut(usize, usize, &mut StdRng) -> bool,
) -> MatchStats {
    let mut stats = MatchStats::default();
    // Active weight = deficit where >= 1 unit is wanted, else 0.
    let weights: Vec<f64> = deficits
        .iter()
        .map(|&d| if d >= 1.0 { d } else { 0.0 })
        .collect();
    let mut sampler = DynamicWeightedSampler::from_weights(&weights);
    let active = |d: f64| if d >= 1.0 { d } else { 0.0 };
    let mut active_count = deficits.iter().filter(|&&d| d >= 1.0).count();

    while active_count >= 2 && stats.attempts < max_attempts {
        stats.attempts += 1;
        let i = match sampler.sample(rng) {
            Some(i) => i,
            None => break,
        };
        let wi = sampler.weight(i);
        sampler.set_weight(i, 0.0);
        let j = match sampler.sample(rng) {
            Some(j) => j,
            None => {
                sampler.set_weight(i, wi);
                break;
            }
        };
        sampler.set_weight(i, wi);
        if !accept(i, j, rng) {
            continue;
        }
        // First unit unconditionally, then extra units each with
        // probability `r` while both peers remain active.
        let (ni, nj) = (NodeId::new(i), NodeId::new(j));
        loop {
            match g.add_edge(ni, nj).expect("i != j by masking") {
                inet_graph::EdgeUpdate::Created => stats.new_edges += 1,
                inet_graph::EdgeUpdate::Reinforced(_) => stats.reinforcements += 1,
            }
            for &v in &[i, j] {
                let was_active = deficits[v] >= 1.0;
                deficits[v] -= 1.0;
                let now_active = deficits[v] >= 1.0;
                sampler.set_weight(v, active(deficits[v]));
                if was_active && !now_active {
                    active_count -= 1;
                }
            }
            if !(deficits[i] >= 1.0 && deficits[j] >= 1.0) {
                break;
            }
            if rng.gen_range(0.0..1.0) >= r {
                break;
            }
        }
    }
    stats.leftover = deficits.iter().filter(|&&d| d >= 1.0).sum();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    fn always(_: usize, _: usize, _: &mut StdRng) -> bool {
        true
    }

    #[test]
    fn two_nodes_pair_up() {
        let mut g = MultiGraph::new();
        g.add_nodes(2);
        let mut deficits = vec![3.0, 3.0];
        let mut rng = seeded_rng(1);
        let stats = match_deficits(&mut g, &mut deficits, 0.99, 1000, &mut rng, always);
        // With r ~ 1 both burn their full deficit into one multi-edge.
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_weight(), 3);
        assert_eq!(stats.new_edges, 1);
        assert_eq!(stats.reinforcements, 2);
        assert!(deficits.iter().all(|&d| d < 1.0));
        assert_eq!(stats.leftover, 0.0);
    }

    #[test]
    fn r_zero_diversifies_partners() {
        let mut g = MultiGraph::new();
        g.add_nodes(6);
        let mut deficits = vec![4.0; 6];
        let mut rng = seeded_rng(2);
        let _ = match_deficits(&mut g, &mut deficits, 0.0, 10_000, &mut rng, always);
        // With no reinforcement the same pair can still be drawn twice, but
        // most links should be distinct edges.
        assert!(g.edge_count() as u64 >= g.total_weight() / 2);
        assert!(g.edge_count() >= 4);
    }

    #[test]
    fn inactive_nodes_never_connect() {
        let mut g = MultiGraph::new();
        g.add_nodes(4);
        let mut deficits = vec![5.0, 5.0, 0.4, 0.0];
        let mut rng = seeded_rng(3);
        let _ = match_deficits(&mut g, &mut deficits, 0.5, 10_000, &mut rng, always);
        for v in 2..4 {
            assert_eq!(
                g.degree(NodeId::new(v)),
                0,
                "inactive node {v} got a connection"
            );
        }
    }

    #[test]
    fn attempt_budget_bounds_rejection_storms() {
        let mut g = MultiGraph::new();
        g.add_nodes(10);
        let mut deficits = vec![2.0; 10];
        let mut rng = seeded_rng(4);
        let stats = match_deficits(&mut g, &mut deficits, 0.5, 100, &mut rng, |_, _, _| false);
        assert_eq!(stats.attempts, 100);
        assert_eq!(g.edge_count(), 0);
        assert!(stats.leftover > 0.0);
    }

    #[test]
    fn single_active_node_cannot_pair() {
        let mut g = MultiGraph::new();
        g.add_nodes(3);
        let mut deficits = vec![5.0, 0.0, 0.0];
        let mut rng = seeded_rng(5);
        let stats = match_deficits(&mut g, &mut deficits, 0.5, 1000, &mut rng, always);
        assert_eq!(stats.attempts, 0);
        assert_eq!(stats.leftover, 5.0);
    }

    #[test]
    fn deficits_decrease_monotonically() {
        let mut g = MultiGraph::new();
        g.add_nodes(8);
        let mut deficits = vec![3.7; 8];
        let before: f64 = deficits.iter().sum();
        let mut rng = seeded_rng(6);
        let _ = match_deficits(&mut g, &mut deficits, 0.8, 10_000, &mut rng, always);
        let after: f64 = deficits.iter().sum();
        assert!(after < before);
        // Each edge unit consumed exactly two units of deficit.
        assert!((before - after - 2.0 * g.total_weight() as f64).abs() < 1e-9);
    }

    #[test]
    fn selective_acceptance_steers_topology() {
        // Only pairs (even, even) may connect.
        let mut g = MultiGraph::new();
        g.add_nodes(6);
        let mut deficits = vec![2.0; 6];
        let mut rng = seeded_rng(7);
        let _ = match_deficits(&mut g, &mut deficits, 0.5, 50_000, &mut rng, |a, b, _| {
            a % 2 == 0 && b % 2 == 0
        });
        for (u, v, _) in g.edges() {
            assert!(u.index() % 2 == 0 && v.index() % 2 == 0);
        }
        assert!(g.edge_count() > 0);
    }
}
