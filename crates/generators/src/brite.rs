//! BRITE-style spatial preferential attachment (after Medina, Matta &
//! Byers, "BRITE: A Flexible Generator of Internet Topologies", 2000).
//!
//! BRITE's AS-level mode combines incremental growth, preferential
//! attachment, and Waxman-style locality: a new node placed at a (possibly
//! fractal) location connects to `m` existing nodes with probability
//! proportional to `k_j · exp(−d_ij / θ)`. Locality raises clustering and
//! shortens links relative to plain BA while keeping the heavy tail.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_spatial::{FractalSet, Point2};
use rand::{rngs::StdRng, Rng};

/// Node placement used by [`BriteLike`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniform in the unit square.
    Uniform,
    /// On a fractal set of the given dimension (depth 8), mimicking the
    /// clustered geography of real infrastructure.
    Fractal(f64),
}

/// BRITE-style generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BriteLike {
    /// Final number of nodes.
    pub n: usize,
    /// Links per new node.
    pub m: usize,
    /// Locality scale `θ` (larger ⇒ distance matters less; `θ → ∞`
    /// degenerates to BA).
    pub theta: f64,
    /// Node placement.
    pub placement: Placement,
}

impl BriteLike {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `m >= 1`, `n > m + 1`, `theta > 0`;
    /// [`BriteLike::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize, theta: f64, placement: Placement) -> Self {
        match Self::try_new(n, m, theta, placement) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(
        n: usize,
        m: usize,
        theta: f64,
        placement: Placement,
    ) -> Result<Self, ModelError> {
        let g = BriteLike {
            n,
            m,
            theta,
            placement,
        };
        Generator::validate(&g)?;
        Ok(g)
    }

    fn positions(&self, rng: &mut StdRng) -> Vec<Point2> {
        match self.placement {
            Placement::Uniform => inet_spatial::pointset::uniform_points(self.n, rng),
            Placement::Fractal(dim) => FractalSet::new(dim, 8).generate(self.n, rng),
        }
    }
}

impl Generator for BriteLike {
    fn name(&self) -> String {
        let place = match self.placement {
            Placement::Uniform => "uniform".to_string(),
            Placement::Fractal(d) => format!("fractal{d:.1}"),
        };
        format!("BRITE m={} theta={:.2} {place}", self.m, self.theta)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.m >= 1 && self.n > self.m + 1,
            "BRITE",
            "need m >= 1 and n > m + 1",
            format!("n = {}, m = {}", self.n, self.m),
        )?;
        require(
            self.theta > 0.0,
            "BRITE",
            "theta must be positive",
            format!("theta = {}", self.theta),
        )?;
        if let Placement::Fractal(dim) = self.placement {
            require(
                dim > 0.0 && dim <= 2.0,
                "BRITE",
                "fractal dimension must lie in (0, 2]",
                format!("dim = {dim}"),
            )?;
        }
        Ok(())
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let positions = self.positions(rng);
        let mut g = MultiGraph::with_capacity(self.n);
        let m0 = self.m + 1;
        g.add_nodes(m0);
        for i in 0..m0 {
            for j in (i + 1)..m0 {
                g.add_edge(NodeId::new(i), NodeId::new(j))
                    .expect("seed clique");
            }
        }
        // O(existing) weight computation per new node: the locality kernel
        // depends on the new node's position, so a static Fenwick tree over
        // degrees alone cannot be reused.
        let mut weights: Vec<f64> = Vec::with_capacity(self.n);
        for i in m0..self.n {
            weights.clear();
            for j in 0..i {
                let k = g.degree(NodeId::new(j)) as f64;
                let d = positions[i].dist(&positions[j]);
                weights.push(k * (-d / self.theta).exp());
            }
            let v = g.add_node();
            let mut chosen: Vec<usize> = Vec::with_capacity(self.m);
            for _ in 0..self.m {
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    break;
                }
                let mut target = rng.gen_range(0.0..total);
                let mut pick = 0usize;
                for (j, &w) in weights.iter().enumerate() {
                    if target < w {
                        pick = j;
                        break;
                    }
                    target -= w;
                    pick = j;
                }
                chosen.push(pick);
                weights[pick] = 0.0; // enforce distinct targets
            }
            for &t in &chosen {
                g.add_edge(v, NodeId::new(t)).expect("distinct targets");
            }
        }
        GeneratedNetwork {
            graph: g,
            positions: Some(positions),
            users: None,
            name: self.name(),
        }
    }
}

/// Registry entry: the CLI's `brite` model.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, p_str, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        let placement = match p.str("placement")? {
            "fractal" => Placement::Fractal(p.f64("fractal_dimension")?),
            "uniform" => Placement::Uniform,
            other => {
                return Err(ModelError::Internal {
                    model: "brite".to_string(),
                    message: format!("placement must be 'fractal' or 'uniform' (got '{other}')"),
                })
            }
        };
        Ok(Box::new(BriteLike::try_new(
            p.usize("n")?,
            p.usize("m")?,
            p.f64("theta")?,
            placement,
        )?))
    }
    ModelSpec {
        name: "brite",
        summary: "BRITE-style spatial preferential attachment (Medina-Matta-Byers 2000)",
        schema: vec![
            p_n(),
            p_int("m", "links per new node", 2),
            p_float(
                "theta",
                "locality scale (larger = distance matters less)",
                0.2,
            ),
            p_str("placement", "node placement: fractal | uniform", "fractal"),
            p_float(
                "fractal_dimension",
                "fractal dimension of the placement set",
                1.5,
            ),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn grows_connected_with_min_degree_m() {
        let mut rng = seeded_rng(1);
        let net = BriteLike::new(1000, 2, 0.3, Placement::Uniform).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 1000);
        assert!(net.graph.degrees().iter().all(|&d| d >= 2));
        let csr = net.graph.to_csr();
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn locality_shortens_links() {
        let local = BriteLike::new(800, 2, 0.05, Placement::Uniform).generate(&mut seeded_rng(2));
        let global = BriteLike::new(800, 2, 100.0, Placement::Uniform).generate(&mut seeded_rng(2));
        let mean_len = |net: &GeneratedNetwork| {
            let pos = net.positions.as_ref().unwrap();
            net.graph
                .edges()
                .map(|(u, v, _)| pos[u.index()].dist(&pos[v.index()]))
                .sum::<f64>()
                / net.graph.edge_count() as f64
        };
        assert!(
            mean_len(&local) < 0.6 * mean_len(&global),
            "local {} vs global {}",
            mean_len(&local),
            mean_len(&global)
        );
    }

    #[test]
    fn heavy_tail_survives_locality() {
        let mut rng = seeded_rng(3);
        let net = BriteLike::new(8000, 2, 0.2, Placement::Fractal(1.5)).generate(&mut rng);
        let max = *net.graph.degrees().iter().max().unwrap();
        assert!(max > 50, "max degree {max}");
    }

    #[test]
    fn determinism() {
        let a = BriteLike::new(300, 2, 0.2, Placement::Fractal(1.5)).generate(&mut seeded_rng(4));
        let b = BriteLike::new(300, 2, 0.2, Placement::Fractal(1.5)).generate(&mut seeded_rng(4));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_bad_theta() {
        let _ = BriteLike::new(100, 2, 0.0, Placement::Uniform);
    }
}
