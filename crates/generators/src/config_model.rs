//! Configuration model: uniform random simple graph with a prescribed
//! degree sequence (up to the stubs dropped to avoid self-loops and
//! duplicates).

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use rand::{rngs::StdRng, Rng};

/// Configuration model by stub matching with rejection.
///
/// Stubs are shuffled and paired; pairs that would create a self-loop or a
/// duplicate edge are re-queued a bounded number of times and eventually
/// dropped, so the realized degrees can fall slightly below the requested
/// ones on heavy-tailed sequences (the standard "erased configuration
/// model").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationModel {
    /// Requested degree sequence.
    pub degrees: Vec<u64>,
}

impl ConfigurationModel {
    /// Creates the model from a degree sequence.
    ///
    /// # Panics
    ///
    /// Panics if the degree sum is odd (not pairable);
    /// [`ConfigurationModel::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(degrees: Vec<u64>) -> Self {
        match Self::try_new(degrees) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates the model from a degree sequence, rejecting unpairable
    /// sequences with a typed error.
    pub fn try_new(degrees: Vec<u64>) -> Result<Self, ModelError> {
        let g = ConfigurationModel { degrees };
        Generator::validate(&g)?;
        Ok(g)
    }
}

impl Generator for ConfigurationModel {
    fn name(&self) -> String {
        format!("config-model n={}", self.degrees.len())
    }

    fn validate(&self) -> Result<(), ModelError> {
        let sum: u64 = self.degrees.iter().sum();
        require(
            sum % 2 == 0,
            "config-model",
            "degree sum must be even",
            format!("sum = {sum}"),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let n = self.degrees.len();
        let mut g = MultiGraph::with_capacity(n);
        g.add_nodes(n);
        // Build the stub list.
        let mut stubs: Vec<u32> = Vec::new();
        for (v, &d) in self.degrees.iter().enumerate() {
            for _ in 0..d {
                stubs.push(v as u32);
            }
        }
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        // Pair sequentially; on rejection, reshuffle the tail a few times.
        let mut rejected: Vec<u32> = Vec::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a != b && !g.has_edge(NodeId::new(a as usize), NodeId::new(b as usize)) {
                g.add_edge(NodeId::new(a as usize), NodeId::new(b as usize))
                    .expect("validity checked");
            } else {
                rejected.push(a);
                rejected.push(b);
            }
        }
        // Retry the rejected stubs with random partners, bounded effort.
        let mut attempts = 8 * rejected.len();
        while rejected.len() >= 2 && attempts > 0 {
            attempts -= 1;
            let i = rng.gen_range(0..rejected.len());
            let j = rng.gen_range(0..rejected.len());
            if i == j {
                continue;
            }
            let (a, b) = (rejected[i], rejected[j]);
            if a == b || g.has_edge(NodeId::new(a as usize), NodeId::new(b as usize)) {
                continue;
            }
            g.add_edge(NodeId::new(a as usize), NodeId::new(b as usize))
                .expect("validity checked");
            // Remove the two stubs (order-insensitive swap-remove).
            if i > j {
                rejected.swap_remove(i);
                rejected.swap_remove(j);
            } else {
                rejected.swap_remove(j);
                rejected.swap_remove(i);
            }
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn regular_sequence_is_realized_exactly() {
        let mut rng = seeded_rng(1);
        let net = ConfigurationModel::new(vec![2; 50]).generate(&mut rng);
        let degrees = net.graph.degrees();
        // 2-regular: nearly all nodes should get their two edges; allow the
        // occasional dropped stub pair.
        let realized: usize = degrees.iter().sum();
        assert!(realized >= 96, "realized stub count {realized}");
        assert!(degrees.iter().all(|&d| d <= 2));
    }

    #[test]
    fn degrees_never_exceed_request() {
        let mut rng = seeded_rng(2);
        let req = vec![5, 3, 3, 2, 2, 2, 1, 1, 1, 2];
        let net = ConfigurationModel::new(req.clone()).generate(&mut rng);
        for (v, &d) in net.graph.degrees().iter().enumerate() {
            assert!(d as u64 <= req[v], "node {v}: {d} > {}", req[v]);
        }
    }

    #[test]
    fn heavy_tail_is_preserved() {
        let mut rng = seeded_rng(3);
        let seq = crate::seq::powerlaw_degree_sequence(3000, 2.2, 1, 1000, &mut rng);
        let max_req = *seq.iter().max().unwrap();
        let net = ConfigurationModel::new(seq).generate(&mut rng);
        let max_real = *net.graph.degrees().iter().max().unwrap() as u64;
        assert!(
            max_real as f64 > 0.7 * max_req as f64,
            "hub lost too many stubs: {max_real} of {max_req}"
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = seeded_rng(4);
        let net = ConfigurationModel::new(vec![3; 40]).generate(&mut rng);
        assert!(net.graph.validate().is_ok());
        assert_eq!(net.graph.total_weight(), net.graph.edge_count() as u64);
    }

    #[test]
    #[should_panic(expected = "degree sum must be even")]
    fn odd_sum_rejected() {
        let _ = ConfigurationModel::new(vec![1, 1, 1]);
    }

    #[test]
    fn empty_sequence() {
        let mut rng = seeded_rng(5);
        let net = ConfigurationModel::new(vec![]).generate(&mut rng);
        assert_eq!(net.graph.node_count(), 0);
    }
}
