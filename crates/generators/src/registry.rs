//! Central model registry: every CLI-addressable generator family, with a
//! typed parameter schema, defaults, validation, and a builder.
//!
//! The registry is the **single point of model dispatch** for the whole
//! workspace: the CLI's `generate`, the attack sweep's model sources, and
//! the scenario pipeline all resolve model names here, so adding a
//! generator means adding one [`ModelSpec`] — no per-model match arms
//! anywhere else.
//!
//! Each entry carries:
//!
//! * a stable `name` (what users type: `"serrano"`, `"ba"`, `"glp"`, …),
//! * a one-line `summary` for `--help` / `list-models`,
//! * a typed parameter `schema` ([`ParamSpec`]: key, doc, default) —
//!   defaults reproduce the historical CLI parameterizations exactly,
//! * a `build` function turning resolved parameters into a
//!   `Box<dyn Generator>`, going through the model's `try_new` so bad
//!   values surface as a typed [`ModelError`], never a panic.
//!
//! ```
//! use inet_generators::registry;
//! let spec = registry::lookup("glp").unwrap();
//! let params = spec.resolve(&Default::default()).unwrap();
//! let generator = (spec.build)(&params).unwrap();
//! assert!(generator.validate().is_ok());
//! ```

use crate::{Generator, ModelError};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// A typed parameter value: the scalar types a model schema can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer (counts, seeds, depths).
    Int(i64),
    /// A floating-point rate, probability, or exponent.
    Float(f64),
    /// A boolean switch.
    Bool(bool),
    /// An enumerated choice, matched case-sensitively by the builder.
    Str(String),
}

impl ParamValue {
    /// The type name used in schema listings and mismatch errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "integer",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "boolean",
            ParamValue::Str(_) => "string",
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => {
                // Keep a decimal point so the rendered value parses back as
                // a float, not an integer (round-trip stability).
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "\"{v}\""),
        }
    }
}

/// One schema entry: a parameter's key, documentation, and default.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter key, as written in scenario files and `--set` overrides.
    pub key: &'static str,
    /// One-line description for `list-models`.
    pub doc: &'static str,
    /// Default value; its variant fixes the parameter's type.
    pub default: ParamValue,
}

/// Shorthand constructors used by the per-model schema functions.
pub(crate) fn p_int(key: &'static str, doc: &'static str, v: i64) -> ParamSpec {
    ParamSpec {
        key,
        doc,
        default: ParamValue::Int(v),
    }
}

pub(crate) fn p_float(key: &'static str, doc: &'static str, v: f64) -> ParamSpec {
    ParamSpec {
        key,
        doc,
        default: ParamValue::Float(v),
    }
}

pub(crate) fn p_bool(key: &'static str, doc: &'static str, v: bool) -> ParamSpec {
    ParamSpec {
        key,
        doc,
        default: ParamValue::Bool(v),
    }
}

pub(crate) fn p_str(key: &'static str, doc: &'static str, v: &str) -> ParamSpec {
    ParamSpec {
        key,
        doc,
        default: ParamValue::Str(v.to_string()),
    }
}

/// The shared "target node count" parameter every model exposes.
pub(crate) fn p_n() -> ParamSpec {
    p_int("n", "target node count", 1000)
}

/// A fully resolved parameter set: every schema key present, types
/// checked. Produced by [`ModelSpec::resolve`]; consumed by builders via
/// the typed getters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params {
    values: BTreeMap<&'static str, ParamValue>,
    model: &'static str,
}

impl Params {
    fn missing(&self, key: &str) -> ModelError {
        ModelError::Internal {
            model: self.model.to_string(),
            message: format!("registry schema is missing parameter '{key}'"),
        }
    }

    /// The resolved value of `key`, exactly as typed.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    /// Iterates `(key, value)` pairs in schema (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (*k, v))
    }

    /// A non-negative integer parameter.
    pub fn usize(&self, key: &str) -> Result<usize, ModelError> {
        match self.values.get(key) {
            Some(ParamValue::Int(v)) if *v >= 0 => Ok(*v as usize),
            Some(ParamValue::Int(v)) => Err(ModelError::Internal {
                model: self.model.to_string(),
                message: format!("parameter '{key}' must be non-negative (got {v})"),
            }),
            _ => Err(self.missing(key)),
        }
    }

    /// An unsigned 64-bit integer parameter.
    pub fn u64(&self, key: &str) -> Result<u64, ModelError> {
        self.usize(key).map(|v| v as u64)
    }

    /// An unsigned 32-bit integer parameter.
    pub fn u32(&self, key: &str) -> Result<u32, ModelError> {
        self.usize(key).map(|v| v as u32)
    }

    /// A float parameter (integers coerce).
    pub fn f64(&self, key: &str) -> Result<f64, ModelError> {
        match self.values.get(key) {
            Some(ParamValue::Float(v)) => Ok(*v),
            Some(ParamValue::Int(v)) => Ok(*v as f64),
            _ => Err(self.missing(key)),
        }
    }

    /// A boolean parameter.
    pub fn bool(&self, key: &str) -> Result<bool, ModelError> {
        match self.values.get(key) {
            Some(ParamValue::Bool(v)) => Ok(*v),
            _ => Err(self.missing(key)),
        }
    }

    /// A string parameter.
    pub fn str(&self, key: &str) -> Result<&str, ModelError> {
        match self.values.get(key) {
            Some(ParamValue::Str(v)) => Ok(v.as_str()),
            _ => Err(self.missing(key)),
        }
    }
}

/// A registered model: the unit of the registry.
pub struct ModelSpec {
    /// The name users type (CLI model argument, scenario `model` key).
    pub name: &'static str,
    /// One-line description for `--help` and `list-models`.
    pub summary: &'static str,
    /// Typed parameter schema with defaults.
    pub schema: Vec<ParamSpec>,
    /// Builds the generator from resolved parameters. Invalid values come
    /// back as a typed [`ModelError`] via the model's `try_new`.
    pub build: fn(&Params) -> Result<Box<dyn Generator>, ModelError>,
}

impl fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelSpec")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .finish()
    }
}

impl ModelSpec {
    /// Merges `overrides` over the schema defaults, rejecting unknown keys
    /// and type mismatches. The result has every schema key present.
    pub fn resolve(&self, overrides: &BTreeMap<String, ParamValue>) -> Result<Params, ModelError> {
        let mut values: BTreeMap<&'static str, ParamValue> = BTreeMap::new();
        for spec in &self.schema {
            values.insert(spec.key, spec.default.clone());
        }
        for (key, value) in overrides {
            let Some(spec) = self.schema.iter().find(|s| s.key == key.as_str()) else {
                let known: Vec<&str> = self.schema.iter().map(|s| s.key).collect();
                return Err(ModelError::Internal {
                    model: self.name.to_string(),
                    message: format!(
                        "unknown parameter '{key}' (parameters: {})",
                        known.join(" ")
                    ),
                });
            };
            let coerced = match (&spec.default, value) {
                (ParamValue::Int(_), ParamValue::Int(v)) => ParamValue::Int(*v),
                (ParamValue::Float(_), ParamValue::Float(v)) => ParamValue::Float(*v),
                (ParamValue::Float(_), ParamValue::Int(v)) => ParamValue::Float(*v as f64),
                (ParamValue::Bool(_), ParamValue::Bool(v)) => ParamValue::Bool(*v),
                (ParamValue::Str(_), ParamValue::Str(v)) => ParamValue::Str(v.clone()),
                (want, got) => {
                    return Err(ModelError::Internal {
                        model: self.name.to_string(),
                        message: format!(
                            "parameter '{key}' wants {}, got {} ({got})",
                            want.type_name(),
                            got.type_name()
                        ),
                    })
                }
            };
            values.insert(spec.key, coerced);
        }
        Ok(Params {
            values,
            model: self.name,
        })
    }

    /// Convenience: resolve defaults with only `n` overridden — the shape
    /// of every historical CLI invocation.
    pub fn resolve_n(&self, n: usize) -> Result<Params, ModelError> {
        let mut overrides = BTreeMap::new();
        overrides.insert("n".to_string(), ParamValue::Int(n as i64));
        self.resolve(&overrides)
    }
}

/// The full registry, in display order: the historical CLI model list.
pub fn registry() -> &'static [ModelSpec] {
    static REGISTRY: OnceLock<Vec<ModelSpec>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        vec![
            crate::serrano::registry_entry(),
            crate::serrano::registry_entry_nodist(),
            crate::barabasi_albert::registry_entry(),
            crate::albert_barabasi::registry_entry(),
            crate::bianconi::registry_entry(),
            crate::glp::registry_entry(),
            crate::pfp::registry_entry(),
            crate::inet::registry_entry(),
            crate::waxman::registry_entry(),
            crate::erdos_renyi::registry_entry(),
            crate::fkp::registry_entry(),
            crate::brite::registry_entry(),
            crate::goh::registry_entry(),
            crate::watts_strogatz::registry_entry(),
            crate::geometric::registry_entry(),
        ]
    })
}

/// Every registered model name, in display order.
pub fn model_names() -> Vec<&'static str> {
    registry().iter().map(|m| m.name).collect()
}

/// Failed [`lookup`]: the name is not registered. Carries the
/// closest-by-edit-distance registered name when one is plausible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModel {
    /// What the user typed.
    pub name: String,
    /// The nearest registered name (edit distance ≤ 3), if any.
    pub suggestion: Option<&'static str>,
}

impl fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model '{}'", self.name)?;
        if let Some(s) = self.suggestion {
            write!(f, ", did you mean '{s}'?")?;
        }
        write!(f, " (models: {})", model_names().join(" "))
    }
}

impl std::error::Error for UnknownModel {}

/// Resolves a model name against the registry; the error carries a
/// did-you-mean suggestion so every dispatch site reports typos the same
/// way.
pub fn lookup(name: &str) -> Result<&'static ModelSpec, UnknownModel> {
    if let Some(spec) = registry().iter().find(|m| m.name == name) {
        return Ok(spec);
    }
    let suggestion = registry()
        .iter()
        .map(|m| (edit_distance(name, m.name), m.name))
        .min()
        .filter(|(d, _)| *d <= 3)
        .map(|(_, n)| n);
    Err(UnknownModel {
        name: name.to_string(),
        suggestion,
    })
}

/// Plain Levenshtein distance (small strings; O(a·b) is fine).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn registry_has_fifteen_unique_models() {
        let names = model_names();
        assert_eq!(names.len(), 15, "{names:?}");
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate names: {names:?}");
    }

    #[test]
    fn every_model_builds_and_generates_from_defaults() {
        for spec in registry() {
            let params = spec.resolve_n(100).unwrap();
            let generator = (spec.build)(&params)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
            generator
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid defaults: {e}", spec.name));
            let mut rng = seeded_rng(7);
            let net = generator.try_generate(&mut rng).unwrap();
            assert!(net.graph.node_count() >= 50, "{}", spec.name);
            assert!(!spec.summary.is_empty());
        }
    }

    #[test]
    fn every_schema_includes_n_with_documented_defaults() {
        for spec in registry() {
            let n = spec.schema.iter().find(|p| p.key == "n");
            assert!(n.is_some(), "{} lacks the shared n parameter", spec.name);
            for p in &spec.schema {
                assert!(!p.doc.is_empty(), "{}.{} undocumented", spec.name, p.key);
            }
        }
    }

    #[test]
    fn lookup_suggests_nearest_name() {
        assert_eq!(lookup("glp").unwrap().name, "glp");
        let err = lookup("serano").unwrap_err();
        assert_eq!(err.suggestion, Some("serrano"));
        let text = err.to_string();
        assert!(text.contains("unknown model 'serano'"), "{text}");
        assert!(text.contains("did you mean 'serrano'?"), "{text}");
        assert!(text.contains("glp"), "must list models: {text}");
        // Nothing close: no suggestion, but the list still prints.
        let err = lookup("zzzzzzzzzz").unwrap_err();
        assert_eq!(err.suggestion, None);
    }

    #[test]
    fn resolve_rejects_unknown_keys_and_type_mismatches() {
        let spec = lookup("ba").unwrap();
        let mut overrides = BTreeMap::new();
        overrides.insert("bogus".to_string(), ParamValue::Int(1));
        let err = spec.resolve(&overrides).unwrap_err();
        assert!(err.to_string().contains("unknown parameter 'bogus'"));
        let mut overrides = BTreeMap::new();
        overrides.insert("m".to_string(), ParamValue::Str("two".into()));
        let err = spec.resolve(&overrides).unwrap_err();
        assert!(err.to_string().contains("wants integer"), "{err}");
        // Int → Float coercion is allowed.
        let spec = lookup("er").unwrap();
        let mut overrides = BTreeMap::new();
        overrides.insert("mean_degree".to_string(), ParamValue::Int(4));
        let params = spec.resolve(&overrides).unwrap();
        assert_eq!(params.f64("mean_degree").unwrap(), 4.0);
    }

    #[test]
    fn bad_parameter_values_surface_as_model_errors() {
        let spec = lookup("ba").unwrap();
        let mut overrides = BTreeMap::new();
        overrides.insert("n".to_string(), ParamValue::Int(2));
        overrides.insert("m".to_string(), ParamValue::Int(5));
        let params = spec.resolve(&overrides).unwrap();
        let err = match (spec.build)(&params) {
            Ok(_) => panic!("m > n must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, ModelError::InvalidParam { .. }), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("waxmann", "waxman"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn registry_defaults_match_legacy_cli_parameterizations() {
        // The historical `build_generator` hard-coded these; the registry
        // must reproduce them bit-for-bit so old invocations stay stable.
        let mut rng_a = seeded_rng(42);
        let legacy = crate::Glp::internet_2001(300).generate(&mut rng_a);
        let spec = lookup("glp").unwrap();
        let params = spec.resolve_n(300).unwrap();
        let mut rng_b = seeded_rng(42);
        let from_registry = (spec.build)(&params).unwrap().generate(&mut rng_b);
        assert_eq!(legacy.graph, from_registry.graph);
    }
}
