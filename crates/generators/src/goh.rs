//! Goh–Kahng–Kim static scale-free model (PRL 87, 278701; the source
//! text's ref. \[4\] used it to establish the linear scaling of the maximum
//! AS degree).
//!
//! Each node `i ∈ 1..=n` carries a fitness `p_i ∝ i^(−ν)` with
//! `ν ∈ [0, 1)`; `m·n` edges are laid down by repeatedly drawing two
//! distinct endpoints from the fitness distribution (rejecting self-loops
//! and duplicates). The resulting degree distribution is a power law with
//! `γ = 1 + 1/ν`, so the Internet's `γ ≈ 2.2` corresponds to `ν ≈ 0.83`.

use crate::error::require;
use crate::{GeneratedNetwork, Generator, ModelError};
use inet_graph::{MultiGraph, NodeId};
use inet_stats::CumulativeSampler;
use rand::rngs::StdRng;

/// Goh static-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GohStatic {
    /// Number of nodes.
    pub n: usize,
    /// Edges per node (total edges = `m · n`, up to duplicate rejection).
    pub m: usize,
    /// Fitness exponent `ν ∈ [0, 1)`; target `γ = 1 + 1/ν`.
    pub nu: f64,
}

impl GohStatic {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2`, `m >= 1`, `0 <= nu < 1`;
    /// [`GohStatic::try_new`] is the panic-free form.
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn new(n: usize, m: usize, nu: f64) -> Self {
        match Self::try_new(n, m, nu) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a generator, rejecting invalid parameters with a typed
    /// error.
    pub fn try_new(n: usize, m: usize, nu: f64) -> Result<Self, ModelError> {
        let g = GohStatic { n, m, nu };
        Generator::validate(&g)?;
        Ok(g)
    }

    /// Parameterized for a target degree exponent `γ > 2`
    /// (`ν = 1/(γ − 1)`).
    ///
    /// # Panics
    ///
    /// Panics unless `gamma > 2` (and the `new` constraints hold).
    #[allow(clippy::panic)] // documented fail-fast constructor
    pub fn with_gamma(n: usize, m: usize, gamma: f64) -> Self {
        match require(
            gamma > 2.0,
            "Goh-static",
            "static model needs gamma > 2",
            format!("gamma = {gamma}"),
        ) {
            Ok(()) => Self::new(n, m, 1.0 / (gamma - 1.0)),
            Err(e) => panic!("{e}"),
        }
    }
}

impl Generator for GohStatic {
    fn name(&self) -> String {
        format!("Goh-static m={} nu={:.2}", self.m, self.nu)
    }

    fn validate(&self) -> Result<(), ModelError> {
        require(
            self.n >= 2 && self.m >= 1,
            "Goh-static",
            "need n >= 2 and m >= 1",
            format!("n = {}, m = {}", self.n, self.m),
        )?;
        require(
            (0.0..1.0).contains(&self.nu),
            "Goh-static",
            "nu must lie in [0, 1)",
            format!("nu = {}", self.nu),
        )
    }

    fn generate(&self, rng: &mut StdRng) -> GeneratedNetwork {
        let weights: Vec<f64> = (1..=self.n).map(|i| (i as f64).powf(-self.nu)).collect();
        let sampler = CumulativeSampler::new(&weights).expect("positive weights");
        let mut g = MultiGraph::with_capacity(self.n);
        g.add_nodes(self.n);
        let target_edges = self.m * self.n;
        let mut placed = 0usize;
        // Duplicate rejection makes the realized count fall slightly short
        // on dense fitness cores; bound the effort like the original code.
        let mut budget = 50 * target_edges;
        while placed < target_edges && budget > 0 {
            budget -= 1;
            let a = sampler.sample(rng);
            let b = sampler.sample(rng);
            if a == b {
                continue;
            }
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            if g.has_edge(na, nb) {
                continue;
            }
            g.add_edge(na, nb).expect("checked distinct");
            placed += 1;
        }
        GeneratedNetwork::bare(g, self.name())
    }
}

/// Registry entry: the CLI's `goh` model. Defaults match the historical
/// `GohStatic::with_gamma(n, 2, 2.2)` CLI parameterization.
pub(crate) fn registry_entry() -> crate::registry::ModelSpec {
    use crate::registry::{p_float, p_int, p_n, ModelSpec, Params};
    fn build(p: &Params) -> Result<Box<dyn Generator>, ModelError> {
        let gamma = p.f64("gamma")?;
        require(
            gamma > 2.0,
            "Goh-static",
            "static model needs gamma > 2",
            format!("gamma = {gamma}"),
        )?;
        Ok(Box::new(GohStatic::try_new(
            p.usize("n")?,
            p.usize("m")?,
            1.0 / (gamma - 1.0),
        )?))
    }
    ModelSpec {
        name: "goh",
        summary: "Goh-Kahng-Kim static scale-free fitness model (PRL 2001)",
        schema: vec![
            p_n(),
            p_int("m", "mean edges per node", 2),
            p_float("gamma", "target degree exponent (> 2)", 2.2),
        ],
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn edge_count_close_to_mn() {
        let mut rng = seeded_rng(1);
        let net = GohStatic::new(2000, 2, 0.5).generate(&mut rng);
        let e = net.graph.edge_count();
        assert!((3600..=4000).contains(&e), "edges {e} far from m*n = 4000");
        assert!(net.graph.validate().is_ok());
    }

    #[test]
    fn gamma_tracks_nu() {
        let mut rng = seeded_rng(2);
        // nu = 0.5 -> gamma = 3; nu = 0.83 -> gamma ~ 2.2.
        let steep = GohStatic::new(20_000, 2, 0.5).generate(&mut rng);
        let flat = GohStatic::with_gamma(20_000, 2, 2.2).generate(&mut rng);
        let fit = |net: &GeneratedNetwork, kmin| {
            let d: Vec<u64> = net.graph.degrees().iter().map(|&x| x as u64).collect();
            inet_stats::powerlaw::fit_discrete(&d, kmin)
                .expect("fittable")
                .gamma
        };
        let g_steep = fit(&steep, 8);
        let g_flat = fit(&flat, 8);
        assert!(g_steep > g_flat + 0.3, "steep {g_steep} vs flat {g_flat}");
        assert!((g_steep - 3.0).abs() < 0.5, "gamma(nu=0.5) = {g_steep}");
        assert!((g_flat - 2.2).abs() < 0.4, "gamma(nu=0.83) = {g_flat}");
    }

    #[test]
    fn rank_one_node_is_the_hub() {
        let mut rng = seeded_rng(3);
        let net = GohStatic::with_gamma(5000, 2, 2.2).generate(&mut rng);
        let degrees = net.graph.degrees();
        let max = *degrees.iter().max().expect("non-empty");
        assert_eq!(degrees[0], max, "the highest-fitness node must be the hub");
        assert!(max > 100, "hub degree {max} too small");
    }

    #[test]
    fn determinism() {
        let a = GohStatic::new(500, 2, 0.7).generate(&mut seeded_rng(4));
        let b = GohStatic::new(500, 2, 0.7).generate(&mut seeded_rng(4));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "nu must lie in [0, 1)")]
    fn rejects_bad_nu() {
        let _ = GohStatic::new(10, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma > 2")]
    fn rejects_flat_gamma() {
        let _ = GohStatic::with_gamma(10, 1, 2.0);
    }
}
