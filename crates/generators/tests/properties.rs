//! Property-based tests across the generator suite.

use inet_generators::*;
use inet_stats::rng::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator yields a structurally valid graph of the requested
    /// size, deterministically per seed.
    #[test]
    fn generators_produce_valid_graphs(seed in 0u64..1000, which in 0usize..10) {
        let n = 120usize;
        let generator: Box<dyn Generator> = match which {
            0 => Box::new(Gnp::new(n, 0.05)),
            1 => Box::new(Gnm::new(n, 240)),
            2 => Box::new(BarabasiAlbert::new(n, 2)),
            3 => Box::new(Glp::internet_2001(n)),
            4 => Box::new(InetLike::as_map_2001(n)),
            5 => Box::new(Fkp::new(n, 6.0)),
            6 => Box::new(Pfp::internet(n)),
            7 => Box::new(Waxman::new(n, 0.5, 0.2)),
            8 => Box::new(GohStatic::with_gamma(n, 2, 2.4)),
            9 => Box::new(WattsStrogatz::new(n, 4, 0.2)),
            _ => unreachable!(),
        };
        let a = generator.generate(&mut seeded_rng(seed));
        prop_assert_eq!(a.graph.node_count(), n);
        prop_assert!(a.graph.validate().is_ok());
        let b = generator.generate(&mut seeded_rng(seed));
        prop_assert_eq!(a.graph, b.graph);
    }

    /// Growth-model generators are connected for any seed.
    #[test]
    fn growth_models_are_connected(seed in 0u64..200) {
        for generator in [
            Box::new(BarabasiAlbert::new(100, 1)) as Box<dyn Generator>,
            Box::new(Glp::internet_2001(100)),
            Box::new(Pfp::internet(100)),
            Box::new(Fkp::new(100, 4.0)),
            Box::new(InetLike::as_map_2001(100)),
        ] {
            let net = generator.generate(&mut seeded_rng(seed));
            let csr = net.graph.to_csr();
            prop_assert!(
                inet_graph::traversal::connected_components(&csr).is_connected(),
                "{} disconnected at seed {seed}", net.name
            );
        }
    }

    /// Arbitrary — including degenerate — parameters for every shipped
    /// model either come back as a typed [`ModelError`] from `try_new` /
    /// `try_generate`, or generate a structurally valid graph. Nothing in
    /// the suite may panic on bad input.
    #[test]
    fn degenerate_parameters_never_panic(
        seed in 0u64..1000,
        n in 0usize..40,
        m in 0usize..6,
        a in -1.0f64..2.0,
        b in -2.0f64..5.0,
        k in 0u64..4,
        degrees in proptest::collection::vec(0u64..6, 0..24),
    ) {
        let mut rng = seeded_rng(seed);
        let attempts: Vec<Result<Box<dyn Generator>, ModelError>> = vec![
            Gnp::try_new(n, a).map(|g| Box::new(g) as _),
            Gnm::try_new(n, m * 7).map(|g| Box::new(g) as _),
            BarabasiAlbert::try_new(n, m).map(|g| Box::new(g) as _),
            AlbertBarabasiExtended::try_new(n, m, a, b).map(|g| Box::new(g) as _),
            BianconiBarabasi::try_new(n, m, FitnessDistribution::Uniform).map(|g| Box::new(g) as _),
            Glp::try_new(n, m, a, b).map(|g| Box::new(g) as _),
            Pfp::try_new(n, a, b, a).map(|g| Box::new(g) as _),
            InetLike::try_new(n, b, k).map(|g| Box::new(g) as _),
            Waxman::try_new(n, a, b).map(|g| Box::new(g) as _),
            Fkp::try_new(n, b).map(|g| Box::new(g) as _),
            BriteLike::try_new(n, m, b, brite::Placement::Uniform).map(|g| Box::new(g) as _),
            GohStatic::try_new(n, m, b).map(|g| Box::new(g) as _),
            WattsStrogatz::try_new(n, m, a).map(|g| Box::new(g) as _),
            RandomGeometric::try_new(n, a).map(|g| Box::new(g) as _),
            ConfigurationModel::try_new(degrees.clone()).map(|g| Box::new(g) as _),
            {
                let mut params = SerranoParams::small(n.max(1));
                params.r = a;
                params.lambda = b * 0.01;
                SerranoModel::try_new(params).map(|g| Box::new(g) as _)
            },
        ];
        for generator in attempts.into_iter().flatten() {
            match generator.try_generate(&mut rng) {
                Ok(net) => prop_assert!(
                    net.graph.validate().is_ok(),
                    "{} produced an invalid graph", generator.name()
                ),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }
    }

    /// The Serrano model respects its invariants for random small
    /// parameterizations: target size reached, users conserved and positive,
    /// bandwidth monotone.
    #[test]
    fn serrano_invariants(
        seed in 0u64..100,
        r in 0.0f64..0.95,
        lambda in 0.0f64..0.1,
        stochastic in proptest::bool::ANY,
        distance in proptest::bool::ANY,
    ) {
        let mut params = SerranoParams::small(150);
        params.r = r;
        params.lambda = lambda;
        params.stochastic_users = stochastic;
        if !distance {
            params.distance = None;
        }
        let run = SerranoModel::new(params).run(&mut seeded_rng(seed));
        let g = &run.network.graph;
        prop_assert!(g.node_count() >= 150);
        prop_assert!(g.validate().is_ok());
        let users = run.network.users.as_ref().unwrap();
        prop_assert!(users.iter().all(|&u| u > 0.0));
        let total: f64 = users.iter().sum();
        let last = run.history.last().unwrap();
        prop_assert!((total - last.users).abs() < 1e-6 * total);
        for w in run.history.windows(2) {
            prop_assert!(w[1].bandwidth >= w[0].bandwidth);
            prop_assert!(w[1].nodes >= w[0].nodes);
        }
    }
}
