//! Property-based tests across the generator suite.

use inet_generators::*;
use inet_stats::rng::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator yields a structurally valid graph of the requested
    /// size, deterministically per seed.
    #[test]
    fn generators_produce_valid_graphs(seed in 0u64..1000, which in 0usize..10) {
        let n = 120usize;
        let generator: Box<dyn Generator> = match which {
            0 => Box::new(Gnp::new(n, 0.05)),
            1 => Box::new(Gnm::new(n, 240)),
            2 => Box::new(BarabasiAlbert::new(n, 2)),
            3 => Box::new(Glp::internet_2001(n)),
            4 => Box::new(InetLike::as_map_2001(n)),
            5 => Box::new(Fkp::new(n, 6.0)),
            6 => Box::new(Pfp::internet(n)),
            7 => Box::new(Waxman::new(n, 0.5, 0.2)),
            8 => Box::new(GohStatic::with_gamma(n, 2, 2.4)),
            9 => Box::new(WattsStrogatz::new(n, 4, 0.2)),
            _ => unreachable!(),
        };
        let a = generator.generate(&mut seeded_rng(seed));
        prop_assert_eq!(a.graph.node_count(), n);
        prop_assert!(a.graph.validate().is_ok());
        let b = generator.generate(&mut seeded_rng(seed));
        prop_assert_eq!(a.graph, b.graph);
    }

    /// Growth-model generators are connected for any seed.
    #[test]
    fn growth_models_are_connected(seed in 0u64..200) {
        for generator in [
            Box::new(BarabasiAlbert::new(100, 1)) as Box<dyn Generator>,
            Box::new(Glp::internet_2001(100)),
            Box::new(Pfp::internet(100)),
            Box::new(Fkp::new(100, 4.0)),
            Box::new(InetLike::as_map_2001(100)),
        ] {
            let net = generator.generate(&mut seeded_rng(seed));
            let csr = net.graph.to_csr();
            prop_assert!(
                inet_graph::traversal::connected_components(&csr).is_connected(),
                "{} disconnected at seed {seed}", net.name
            );
        }
    }

    /// The Serrano model respects its invariants for random small
    /// parameterizations: target size reached, users conserved and positive,
    /// bandwidth monotone.
    #[test]
    fn serrano_invariants(
        seed in 0u64..100,
        r in 0.0f64..0.95,
        lambda in 0.0f64..0.1,
        stochastic in proptest::bool::ANY,
        distance in proptest::bool::ANY,
    ) {
        let mut params = SerranoParams::small(150);
        params.r = r;
        params.lambda = lambda;
        params.stochastic_users = stochastic;
        if !distance {
            params.distance = None;
        }
        let run = SerranoModel::new(params).run(&mut seeded_rng(seed));
        let g = &run.network.graph;
        prop_assert!(g.node_count() >= 150);
        prop_assert!(g.validate().is_ok());
        let users = run.network.users.as_ref().unwrap();
        prop_assert!(users.iter().all(|&u| u > 0.0));
        let total: f64 = users.iter().sum();
        let last = run.history.last().unwrap();
        prop_assert!((total - last.users).abs() < 1e-6 * total);
        for w in run.history.windows(2) {
            prop_assert!(w[1].bandwidth >= w[0].bandwidth);
            prop_assert!(w[1].nodes >= w[0].nodes);
        }
    }
}
