//! Euler–Maruyama integration of the stochastic user dynamics (Eq. 2).
//!
//! The single-node Langevin equation under linear preference is
//!
//! ```text
//! dω/dt = αω − βω₀ + √((α + 2λ)ω + βω₀) ξ(t),
//! ```
//!
//! with a reflecting boundary at `ω = ω₀`. Integrating an ensemble of nodes
//! born at the exponential rate `βN(t)` lets us check the zero-noise
//! approximation behind Eq. 5 directly: the empirical size distribution of
//! the ensemble must converge to the analytic `p(ω)`, and the `λ`-term must
//! affect only the fluctuations, never the drift.

use crate::theory;
use inet_stats::dist::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the ensemble SDE integration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdeConfig {
    /// User growth rate `α`.
    pub alpha: f64,
    /// Node birth rate `β` (`< α`).
    pub beta: f64,
    /// Reallocation rate `λ ≥ 0` (diffusion only).
    pub lambda: f64,
    /// Users at birth `ω₀`.
    pub omega0: f64,
    /// Seed node count.
    pub n0: usize,
    /// Integration horizon (months).
    pub t_max: f64,
    /// Time step.
    pub dt: f64,
}

impl SdeConfig {
    /// Paper-rate configuration integrating to `t_max` months.
    pub fn paper(t_max: f64) -> Self {
        SdeConfig {
            alpha: 0.035,
            beta: 0.03,
            lambda: 0.0,
            omega0: 5000.0,
            n0: 10,
            t_max,
            dt: 0.1,
        }
    }

    fn validate(&self) {
        assert!(
            self.alpha > self.beta && self.beta > 0.0,
            "need 0 < beta < alpha"
        );
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
        assert!(
            self.omega0 > 0.0 && self.n0 >= 1,
            "need users and seed nodes"
        );
        assert!(
            self.t_max > 0.0 && self.dt > 0.0 && self.dt < self.t_max,
            "bad time grid"
        );
    }
}

/// Integrates the ensemble and returns the final user counts, one entry per
/// node (seed nodes plus all nodes born along the way).
pub fn simulate_ensemble<R: Rng>(config: SdeConfig, rng: &mut R) -> Vec<f64> {
    config.validate();
    let mut omegas: Vec<f64> = vec![config.omega0; config.n0];
    let mut t = 0.0;
    let sqrt_dt = config.dt.sqrt();
    let mut birth_debt = 0.0f64;
    while t < config.t_max {
        // Birth process: dN = beta N dt, accumulated fractionally.
        birth_debt += config.beta * omegas.len() as f64 * config.dt;
        while birth_debt >= 1.0 {
            omegas.push(config.omega0);
            birth_debt -= 1.0;
        }
        // Euler–Maruyama step for every node.
        for w in omegas.iter_mut() {
            let drift = config.alpha * *w - config.beta * config.omega0;
            let diffusion = ((config.alpha + 2.0 * config.lambda) * *w
                + config.beta * config.omega0)
                .max(0.0)
                .sqrt();
            *w += drift * config.dt + diffusion * sqrt_dt * standard_normal(rng);
            // Reflecting boundary at omega0.
            if *w < config.omega0 {
                *w = 2.0 * config.omega0 - *w;
            }
        }
        t += config.dt;
    }
    omegas
}

/// Kolmogorov–Smirnov distance between the empirical CCDF of an ensemble
/// and the analytic stationary CCDF (Eq. 5), evaluated at the sample
/// points below the finite-time cutoff.
pub fn ks_against_theory(samples: &[f64], config: SdeConfig) -> f64 {
    let cutoff = theory::size_cutoff(config.t_max, config.alpha, config.beta, config.omega0);
    let mut sorted: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&w| w <= 0.5 * cutoff) // stay clear of the finite-time edge
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite users"));
    let n = sorted.len() as f64;
    let mut ks = 0.0f64;
    for (i, &w) in sorted.iter().enumerate() {
        let emp = 1.0 - i as f64 / n; // empirical P(W >= w)
        let the = theory::size_ccdf(w, config.alpha, config.beta, config.omega0);
        ks = ks.max((emp - the).abs());
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn ensemble_grows_at_rate_beta() {
        let mut rng = seeded_rng(1);
        let config = SdeConfig::paper(120.0);
        let omegas = simulate_ensemble(config, &mut rng);
        let expected = config.n0 as f64 * (config.beta * config.t_max).exp();
        let ratio = omegas.len() as f64 / expected;
        assert!((0.8..1.25).contains(&ratio), "ensemble size off: {ratio}");
    }

    #[test]
    fn all_sizes_respect_reflecting_boundary() {
        let mut rng = seeded_rng(2);
        let config = SdeConfig::paper(60.0);
        let omegas = simulate_ensemble(config, &mut rng);
        assert!(omegas.iter().all(|&w| w >= config.omega0 * 0.999));
    }

    #[test]
    fn stationary_distribution_matches_eq5() {
        let mut rng = seeded_rng(3);
        let config = SdeConfig::paper(180.0);
        let omegas = simulate_ensemble(config, &mut rng);
        assert!(
            omegas.len() > 1000,
            "need a real ensemble, got {}",
            omegas.len()
        );
        let ks = ks_against_theory(&omegas, config);
        assert!(ks < 0.08, "KS distance to Eq. 5 too large: {ks}");
    }

    #[test]
    fn lambda_increases_fluctuations_not_drift() {
        let quiet = simulate_ensemble(SdeConfig::paper(100.0), &mut seeded_rng(4));
        let noisy = simulate_ensemble(
            SdeConfig {
                lambda: 0.5,
                ..SdeConfig::paper(100.0)
            },
            &mut seeded_rng(4),
        );
        let mean = |v: &[f64]| inet_stats::Summary::from_slice(v).mean;
        // Means (drift) agree within a few percent...
        let rel = (mean(&quiet) - mean(&noisy)).abs() / mean(&quiet);
        assert!(rel < 0.2, "lambda shifted the drift by {rel}");
    }

    #[test]
    #[should_panic(expected = "bad time grid")]
    fn rejects_bad_grid() {
        let mut rng = seeded_rng(5);
        let _ = simulate_ensemble(
            SdeConfig {
                dt: 0.0,
                ..SdeConfig::paper(10.0)
            },
            &mut rng,
        );
    }
}
