//! Synthetic Internet growth traces.
//!
//! Stand-in for the Hobbes Internet Timeline host counts and the Oregon
//! Route-Views AS-map archive (Nov 1997 – May 2002): monthly series of
//! hosts `W(t)`, ASs `N(t)` and inter-AS links `E(t)`, generated as clean
//! exponentials with multiplicative log-normal measurement noise. Initial
//! values match the real 1997 snapshot within rounding: ≈ 2.46·10⁷ hosts,
//! ≈ 3000 ASs, ≈ 5700 links.

use crate::rates::GrowthRates;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Growth rates per month.
    pub rates: GrowthRates,
    /// Number of monthly samples (Nov 97 – May 02 ⇒ 55).
    pub months: usize,
    /// Hosts at `t = 0`.
    pub w0: f64,
    /// ASs at `t = 0`.
    pub n0: f64,
    /// Links at `t = 0`.
    pub e0: f64,
    /// Log-scale standard deviation of the measurement noise.
    pub noise_sigma: f64,
}

impl TraceConfig {
    /// The Nov 1997 – May 2002 configuration with empirical rates and mild
    /// (3%) measurement noise.
    pub fn oregon_era() -> Self {
        TraceConfig {
            rates: GrowthRates::internet_empirical(),
            months: 55,
            w0: 2.46e7,
            n0: 3000.0,
            e0: 5700.0,
            noise_sigma: 0.03,
        }
    }
}

/// A synthetic growth trace: one row per month.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternetTrace {
    /// Month index `0..months`.
    pub t: Vec<f64>,
    /// Host counts.
    pub hosts: Vec<f64>,
    /// AS counts.
    pub ases: Vec<f64>,
    /// Link counts.
    pub links: Vec<f64>,
    /// The configuration that produced the trace.
    pub config: TraceConfig,
}

impl InternetTrace {
    /// Generates a trace.
    ///
    /// # Panics
    ///
    /// Panics when `months < 2` or any initial value is non-positive.
    pub fn generate<R: Rng>(config: TraceConfig, rng: &mut R) -> Self {
        assert!(
            config.months >= 2,
            "need at least two samples to fit anything"
        );
        assert!(
            config.w0 > 0.0 && config.n0 > 0.0 && config.e0 > 0.0,
            "initial populations must be positive"
        );
        assert!(config.noise_sigma >= 0.0, "noise must be non-negative");
        let mut t = Vec::with_capacity(config.months);
        let mut hosts = Vec::with_capacity(config.months);
        let mut ases = Vec::with_capacity(config.months);
        let mut links = Vec::with_capacity(config.months);
        for month in 0..config.months {
            let m = month as f64;
            let noise = |rng: &mut R| {
                if config.noise_sigma > 0.0 {
                    inet_stats::dist::log_normal(0.0, config.noise_sigma, rng)
                } else {
                    1.0
                }
            };
            t.push(m);
            hosts.push(config.w0 * (config.rates.alpha * m).exp() * noise(rng));
            ases.push(config.n0 * (config.rates.beta * m).exp() * noise(rng));
            links.push(config.e0 * (config.rates.delta * m).exp() * noise(rng));
        }
        InternetTrace {
            t,
            hosts,
            ases,
            links,
            config,
        }
    }

    /// Mean degree series `2E(t)/N(t)`.
    pub fn mean_degree(&self) -> Vec<f64> {
        self.links
            .iter()
            .zip(&self.ases)
            .map(|(&e, &n)| 2.0 * e / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn trace_shape_and_positivity() {
        let mut rng = seeded_rng(1);
        let tr = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
        assert_eq!(tr.t.len(), 55);
        assert!(tr.hosts.iter().all(|&x| x > 0.0));
        assert!(tr.ases.iter().all(|&x| x > 0.0));
        assert!(tr.links.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn noiseless_trace_is_exact_exponential() {
        let mut rng = seeded_rng(2);
        let config = TraceConfig {
            noise_sigma: 0.0,
            ..TraceConfig::oregon_era()
        };
        let tr = InternetTrace::generate(config, &mut rng);
        for (i, &h) in tr.hosts.iter().enumerate() {
            let expect = config.w0 * (config.rates.alpha * i as f64).exp();
            assert!((h - expect).abs() < 1e-6 * expect);
        }
    }

    #[test]
    fn final_era_magnitudes_are_realistic() {
        // May 2002: ~1.6e8 hosts, ~1.3e4 ASs, ~3.5e4 links in the archives.
        let mut rng = seeded_rng(3);
        let config = TraceConfig {
            noise_sigma: 0.0,
            ..TraceConfig::oregon_era()
        };
        let tr = InternetTrace::generate(config, &mut rng);
        let w_end = *tr.hosts.last().unwrap();
        let n_end = *tr.ases.last().unwrap();
        let e_end = *tr.links.last().unwrap();
        assert!((1.0e8..3.0e8).contains(&w_end), "hosts {w_end:.3e}");
        assert!((1.0e4..2.5e4).contains(&n_end), "ASs {n_end:.3e}");
        assert!((2.5e4..7.0e4).contains(&e_end), "links {e_end:.3e}");
    }

    #[test]
    fn mean_degree_increases() {
        let mut rng = seeded_rng(4);
        let config = TraceConfig {
            noise_sigma: 0.0,
            ..TraceConfig::oregon_era()
        };
        let tr = InternetTrace::generate(config, &mut rng);
        let k = tr.mean_degree();
        assert!(
            k.last().unwrap() > k.first().unwrap(),
            "delta > beta densifies"
        );
    }

    #[test]
    fn determinism_and_noise() {
        let a = InternetTrace::generate(TraceConfig::oregon_era(), &mut seeded_rng(5));
        let b = InternetTrace::generate(TraceConfig::oregon_era(), &mut seeded_rng(5));
        assert_eq!(a, b);
        let c = InternetTrace::generate(TraceConfig::oregon_era(), &mut seeded_rng(6));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_short_trace() {
        let mut rng = seeded_rng(7);
        let config = TraceConfig {
            months: 1,
            ..TraceConfig::oregon_era()
        };
        let _ = InternetTrace::generate(config, &mut rng);
    }
}
