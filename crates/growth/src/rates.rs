//! Growth-rate algebra.

use serde::{Deserialize, Serialize};

/// The three measured exponential growth rates (per month) and the algebra
/// connecting them.
///
/// `W(t) = W₀e^{αt}` (hosts/users), `N(t) = N₀e^{βt}` (ASs),
/// `E(t) = E₀e^{δt}` (links). Consistency demands `α > β` (users must
/// outgrow providers or service collapses) and `β ≤ δ < 2β` (connected,
/// with `δ < 2β` needed for a normalizable degree exponent `γ > 2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthRates {
    /// User/host growth rate `α`.
    pub alpha: f64,
    /// AS growth rate `β`.
    pub beta: f64,
    /// Link growth rate `δ`.
    pub delta: f64,
}

impl GrowthRates {
    /// The empirical rates measured on the Nov 1997 – May 2002 archives:
    /// `α = 0.036 ± 0.001`, `β = 0.0304 ± 0.0003`, `δ = 0.0330 ± 0.0002`
    /// per month.
    pub fn internet_empirical() -> Self {
        GrowthRates {
            alpha: 0.036,
            beta: 0.0304,
            delta: 0.0330,
        }
    }

    /// Creates and sanity-checks a rate triple.
    ///
    /// # Panics
    ///
    /// Panics when any rate is non-positive or the demand/supply ordering
    /// `α > β`, `β ≤ δ` is violated.
    pub fn new(alpha: f64, beta: f64, delta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0 && delta > 0.0,
            "rates must be positive"
        );
        assert!(
            alpha > beta,
            "alpha > beta required (demand keeps ahead of supply)"
        );
        assert!(
            delta >= beta,
            "delta >= beta required (connected growing network)"
        );
        GrowthRates { alpha, beta, delta }
    }

    /// `τ = β/α`: the AS-size distribution decays as `ω^−(1+τ)`.
    pub fn tau(&self) -> f64 {
        self.beta / self.alpha
    }

    /// Bandwidth growth rate `δ′ = αβ/(2β − δ)` implied by the scaling
    /// closure `E ∝ N^{2−α/δ′}`.
    ///
    /// # Panics
    ///
    /// Panics when `δ ≥ 2β` (the closure has no solution — `γ` would fall
    /// to 2 or below).
    pub fn delta_prime(&self) -> f64 {
        let denom = 2.0 * self.beta - self.delta;
        assert!(denom > 0.0, "delta must stay below 2*beta");
        self.alpha * self.beta / denom
    }

    /// Degree–bandwidth exponent `μ = β/δ′ < 1`.
    pub fn mu(&self) -> f64 {
        self.beta / self.delta_prime()
    }

    /// Predicted degree exponent `γ = 1 + 1/(2 − δ/β)` — strikingly, a
    /// function of `δ/β` alone.
    pub fn gamma(&self) -> f64 {
        1.0 + 1.0 / (2.0 - self.delta / self.beta)
    }

    /// Scaling of user count with system size: `W ∝ N^{α/β}`.
    pub fn users_size_exponent(&self) -> f64 {
        self.alpha / self.beta
    }

    /// Scaling of edges with system size: `E ∝ N^{δ/β}`.
    pub fn edges_size_exponent(&self) -> f64 {
        self.delta / self.beta
    }

    /// Scaling of mean degree with size: `⟨k⟩ ∝ N^{δ/β − 1}` (slowly
    /// densifying for `δ > β`).
    pub fn mean_degree_size_exponent(&self) -> f64 {
        self.delta / self.beta - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rates_predict_gamma_in_internet_band() {
        let r = GrowthRates::internet_empirical();
        // gamma = 1 + 1/(2 - 0.0330/0.0304) = 2.09; the source text quotes
        // 2.2 +- 0.1 after propagating the rate uncertainties, so demand the
        // broader [2.0, 2.35] Internet band here.
        assert!((2.0..2.35).contains(&r.gamma()), "gamma = {}", r.gamma());
    }

    #[test]
    fn ordering_holds_empirically() {
        let r = GrowthRates::internet_empirical();
        assert!(
            r.alpha > r.delta && r.delta > r.beta,
            "alpha > delta > beta"
        );
    }

    #[test]
    fn derived_quantities_consistent() {
        let r = GrowthRates::new(0.035, 0.03, 0.03375);
        // These are the paper-simulation numbers: delta' = 0.04, mu = 0.75.
        assert!((r.delta_prime() - 0.04).abs() < 1e-12);
        assert!((r.mu() - 0.75).abs() < 1e-12);
        assert!((r.tau() - 6.0 / 7.0).abs() < 1e-12);
        assert!(r.mu() < 1.0, "mu < 1 required for multi-connections");
        assert!(
            r.delta_prime() > r.alpha,
            "delta' > alpha: traffic outgrows users"
        );
    }

    #[test]
    fn size_scaling_exponents() {
        let r = GrowthRates::internet_empirical();
        assert!(r.users_size_exponent() > 1.0);
        assert!(r.edges_size_exponent() > 1.0);
        assert!(
            r.mean_degree_size_exponent() > 0.0,
            "the Internet densifies"
        );
        assert!(r.mean_degree_size_exponent() < 0.2);
    }

    #[test]
    #[should_panic(expected = "alpha > beta")]
    fn rejects_starved_demand() {
        let _ = GrowthRates::new(0.02, 0.03, 0.031);
    }

    #[test]
    #[should_panic(expected = "delta >= beta")]
    fn rejects_fragmenting_network() {
        let _ = GrowthRates::new(0.04, 0.03, 0.02);
    }

    #[test]
    #[should_panic(expected = "below 2*beta")]
    fn rejects_delta_above_2beta() {
        let r = GrowthRates::new(0.08, 0.03, 0.07);
        let _ = r.delta_prime();
    }
}
