//! Closed-form results of the continuum analysis.
//!
//! With linear-preference competition and exponential demand growth, the
//! number of users of an AS born at `t_i` follows (zero-noise limit, Eq. 3)
//!
//! ```text
//! ω(t | t_i) = (β/α) ω₀ + (1 − β/α) ω₀ e^{α (t − t_i)},
//! ```
//!
//! and integrating over the exponential birth-time density gives the
//! stationary AS-size distribution (Eq. 5)
//!
//! ```text
//! p(ω) = τ (1 − τ)^τ ω₀^τ / (ω − τω₀)^{1+τ},   τ = β/α,
//! ```
//!
//! valid up to a cutoff `ω_c(t) ∼ (1 − τ) ω₀ e^{αt}` that scales linearly
//! with the total number of users. Mapping sizes through the adaptation
//! relation `b = 1 + a(ω − ω₀)` and the scaling `k = b^μ` yields the degree
//! distribution (Eq. 8) with exponent `γ = 1 + τ/μ = 1 + 1/(2 − δ/β)`.

/// Zero-noise user trajectory (Eq. 3): users of a node of age
/// `age = t − t_i`.
///
/// # Panics
///
/// Panics unless `0 < beta < alpha`, `omega0 > 0`, `age >= 0`.
pub fn omega_trajectory(alpha: f64, beta: f64, omega0: f64, age: f64) -> f64 {
    assert!(alpha > beta && beta > 0.0, "need 0 < beta < alpha");
    assert!(omega0 > 0.0 && age >= 0.0, "need positive omega0 and age");
    let tau = beta / alpha;
    tau * omega0 + (1.0 - tau) * omega0 * (alpha * age).exp()
}

/// Stationary AS-size density `p(ω)` (Eq. 5, long-time limit, no cutoff).
/// Zero below `ω₀`.
pub fn size_pdf(omega: f64, alpha: f64, beta: f64, omega0: f64) -> f64 {
    assert!(
        alpha > beta && beta > 0.0 && omega0 > 0.0,
        "invalid parameters"
    );
    if omega < omega0 {
        return 0.0;
    }
    let tau = beta / alpha;
    tau * (1.0 - tau).powf(tau) * omega0.powf(tau) / (omega - tau * omega0).powf(1.0 + tau)
}

/// Analytic CCDF `P(Ω ≥ ω)` of Eq. 5: `(1−τ)^τ ω₀^τ (ω − τω₀)^{−τ}` for
/// `ω ≥ ω₀`, 1 below.
pub fn size_ccdf(omega: f64, alpha: f64, beta: f64, omega0: f64) -> f64 {
    assert!(
        alpha > beta && beta > 0.0 && omega0 > 0.0,
        "invalid parameters"
    );
    if omega <= omega0 {
        return 1.0;
    }
    let tau = beta / alpha;
    (1.0 - tau).powf(tau) * omega0.powf(tau) * (omega - tau * omega0).powf(-tau)
}

/// Size cutoff `ω_c(t) = (1 − τ) ω₀ e^{αt}` — the size of the oldest node.
pub fn size_cutoff(t: f64, alpha: f64, beta: f64, omega0: f64) -> f64 {
    let tau = beta / alpha;
    (1.0 - tau) * omega0 * (alpha * t).exp()
}

/// Degree exponent `γ = 1 + τ/μ`.
pub fn gamma_from(tau: f64, mu: f64) -> f64 {
    assert!(tau > 0.0 && mu > 0.0, "exponents must be positive");
    1.0 + tau / mu
}

/// Degree density shape of Eq. 8:
/// `P(k) ≈ [τ (1−τ)^τ (ω₀ a)^τ / μ] · k^{−γ}` for `k ≫ 1` up to the cutoff
/// `k_c = [1 + a(ω_c − ω₀)]^μ`.
pub fn degree_pdf(k: f64, tau: f64, mu: f64, omega0: f64, a: f64, omega_cutoff: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&tau) && mu > 0.0 && mu < 1.0,
        "invalid exponents"
    );
    if k < 1.0 {
        return 0.0;
    }
    let k_c = (1.0 + a * (omega_cutoff - omega0)).powf(mu);
    if k > k_c {
        return 0.0;
    }
    let gamma = gamma_from(tau, mu);
    tau * (1.0 - tau).powf(tau) * (omega0 * a).powf(tau) / mu * k.powf(-gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = 0.035;
    const BETA: f64 = 0.03;
    const OMEGA0: f64 = 5000.0;

    #[test]
    fn trajectory_starts_at_omega0_and_grows() {
        let w0 = omega_trajectory(ALPHA, BETA, OMEGA0, 0.0);
        assert!((w0 - OMEGA0).abs() < 1e-9);
        let w10 = omega_trajectory(ALPHA, BETA, OMEGA0, 10.0);
        let w20 = omega_trajectory(ALPHA, BETA, OMEGA0, 20.0);
        assert!(w20 > w10 && w10 > w0);
        // Long-time growth rate is alpha (needs a deep horizon: the
        // constant tau*omega0 term decays only relative to the exponential).
        let w300 = omega_trajectory(ALPHA, BETA, OMEGA0, 300.0);
        let w301 = omega_trajectory(ALPHA, BETA, OMEGA0, 301.0);
        assert!(((w301 / w300).ln() - ALPHA).abs() < 1e-4);
    }

    #[test]
    fn pdf_normalizes_to_one() {
        // Numerical integral of Eq. 5 over [omega0, inf).
        let mut integral = 0.0;
        let mut omega = OMEGA0;
        let step = 10.0;
        while omega < OMEGA0 * 1e6 {
            integral += size_pdf(omega + step / 2.0, ALPHA, BETA, OMEGA0) * step;
            omega += step;
            // accelerate for far tail
            if omega > OMEGA0 * 100.0 {
                break;
            }
        }
        // Tail mass from the analytic CCDF.
        integral += size_ccdf(omega, ALPHA, BETA, OMEGA0);
        assert!((integral - 1.0).abs() < 1e-2, "integral = {integral}");
    }

    #[test]
    fn ccdf_is_derivative_consistent_with_pdf() {
        let omega = 3.0 * OMEGA0;
        let h = 1.0;
        let numeric = (size_ccdf(omega - h, ALPHA, BETA, OMEGA0)
            - size_ccdf(omega + h, ALPHA, BETA, OMEGA0))
            / (2.0 * h);
        let analytic = size_pdf(omega, ALPHA, BETA, OMEGA0);
        assert!((numeric - analytic).abs() < 1e-6 * analytic.max(1e-12));
    }

    #[test]
    fn pdf_tail_exponent_is_one_plus_tau() {
        let tau = BETA / ALPHA;
        let w1 = 100.0 * OMEGA0;
        let w2 = 1000.0 * OMEGA0;
        let slope = (size_pdf(w2, ALPHA, BETA, OMEGA0) / size_pdf(w1, ALPHA, BETA, OMEGA0)).ln()
            / (w2 / w1).ln();
        assert!((slope + (1.0 + tau)).abs() < 0.01, "slope = {slope}");
    }

    #[test]
    fn cutoff_scales_linearly_with_users() {
        let c1 = size_cutoff(100.0, ALPHA, BETA, OMEGA0);
        let c2 = size_cutoff(100.0 + 1.0 / ALPHA, ALPHA, BETA, OMEGA0);
        assert!((c2 / c1 - std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn gamma_matches_paper_numbers() {
        // tau = 6/7, mu = 0.75 -> gamma = 1 + 8/7 = 2.142857.
        let gamma = gamma_from(6.0 / 7.0, 0.75);
        assert!((gamma - (1.0 + 8.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn degree_pdf_has_power_tail_and_cutoff() {
        let (tau, mu, a) = (6.0 / 7.0, 0.75, 0.01);
        let cutoff = 1e7;
        let p10 = degree_pdf(10.0, tau, mu, OMEGA0, a, cutoff);
        let p100 = degree_pdf(100.0, tau, mu, OMEGA0, a, cutoff);
        let gamma = gamma_from(tau, mu);
        let slope = (p100 / p10).ln() / (10f64).ln();
        assert!((slope + gamma).abs() < 1e-9, "slope {slope}");
        // Beyond the cutoff: zero.
        let k_c = (1.0 + a * (cutoff - OMEGA0)).powf(mu);
        assert_eq!(degree_pdf(k_c * 1.01, tau, mu, OMEGA0, a, cutoff), 0.0);
        assert_eq!(degree_pdf(0.5, tau, mu, OMEGA0, a, cutoff), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < beta < alpha")]
    fn trajectory_rejects_inverted_rates() {
        let _ = omega_trajectory(0.02, 0.03, OMEGA0, 1.0);
    }
}
