//! Recovering growth rates from a trace (the Fig. 1 analysis).

use crate::rates::GrowthRates;
use crate::timeline::InternetTrace;
use inet_stats::regression::{exp_growth_fit, ExpGrowthFit};
use serde::{Deserialize, Serialize};

/// The three exponential fits of a growth trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedRates {
    /// Fit of the host series (`α`).
    pub hosts: ExpGrowthFit,
    /// Fit of the AS series (`β`).
    pub ases: ExpGrowthFit,
    /// Fit of the link series (`δ`).
    pub links: ExpGrowthFit,
}

impl FittedRates {
    /// Fits all three series of a trace. Returns `None` when any series is
    /// too degenerate to fit (cannot happen for traces from
    /// [`InternetTrace::generate`]).
    pub fn fit(trace: &InternetTrace) -> Option<Self> {
        Some(FittedRates {
            hosts: exp_growth_fit(&trace.t, &trace.hosts)?,
            ases: exp_growth_fit(&trace.t, &trace.ases)?,
            links: exp_growth_fit(&trace.t, &trace.links)?,
        })
    }

    /// Packs the fitted rates into a [`GrowthRates`] triple.
    ///
    /// # Panics
    ///
    /// Panics if the fitted rates violate the demand/supply ordering (which
    /// indicates the trace is not Internet-like).
    pub fn rates(&self) -> GrowthRates {
        GrowthRates::new(self.hosts.rate, self.ases.rate, self.links.rate)
    }

    /// True when each fitted rate lies within `z` standard errors of the
    /// corresponding true rate.
    pub fn consistent_with(&self, truth: &GrowthRates, z: f64) -> bool {
        let ok = |fit: &ExpGrowthFit, truth: f64| {
            let se = fit.rate_se.max(1e-6);
            (fit.rate - truth).abs() <= z * se
        };
        ok(&self.hosts, truth.alpha) && ok(&self.ases, truth.beta) && ok(&self.links, truth.delta)
    }

    /// Renders the Fig.-1-style table: one row per series with the fitted
    /// rate, its standard error, and `R²`.
    pub fn render(&self) -> String {
        let row = |name: &str, f: &ExpGrowthFit| {
            format!(
                "{name:<8} rate = {:.4} +- {:.4} /month   y0 = {:.4e}   R2 = {:.4}   doubling = {:.1} months",
                f.rate, f.rate_se, f.y0, f.r2, f.doubling_time()
            )
        };
        format!(
            "{}\n{}\n{}",
            row("hosts", &self.hosts),
            row("ASs", &self.ases),
            row("links", &self.links)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TraceConfig;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn noiseless_fit_is_exact() {
        let mut rng = seeded_rng(1);
        let config = TraceConfig {
            noise_sigma: 0.0,
            ..TraceConfig::oregon_era()
        };
        let trace = InternetTrace::generate(config, &mut rng);
        let fit = FittedRates::fit(&trace).unwrap();
        assert!((fit.hosts.rate - 0.036).abs() < 1e-10);
        assert!((fit.ases.rate - 0.0304).abs() < 1e-10);
        assert!((fit.links.rate - 0.0330).abs() < 1e-10);
        assert!(fit.hosts.r2 > 0.999999);
    }

    #[test]
    fn noisy_fit_recovers_rates_within_error() {
        let mut rng = seeded_rng(2);
        let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
        let fit = FittedRates::fit(&trace).unwrap();
        let truth = GrowthRates::internet_empirical();
        assert!(
            fit.consistent_with(&truth, 4.0),
            "fits drifted:\n{}",
            fit.render()
        );
        // Error bars comparable to the paper's quoted ones (~1e-3).
        assert!(fit.hosts.rate_se < 5e-3);
    }

    #[test]
    fn rates_roundtrip_and_ordering() {
        let mut rng = seeded_rng(3);
        let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
        let rates = FittedRates::fit(&trace).unwrap().rates();
        assert!(rates.alpha > rates.beta);
        assert!(rates.delta >= rates.beta);
        // The derived gamma should stay in the Internet band.
        assert!(
            (rates.gamma() - 2.2).abs() < 0.25,
            "gamma = {}",
            rates.gamma()
        );
    }

    #[test]
    fn render_has_three_rows() {
        let mut rng = seeded_rng(4);
        let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
        let text = FittedRates::fit(&trace).unwrap().render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("hosts"));
        assert!(text.contains("doubling"));
    }
}
