//! # inet-growth — demand/supply growth machinery
//!
//! The empirical backbone of Internet growth modeling: the host, AS and
//! link populations all grew exponentially through the measurement era
//! (Nov 1997 – May 2002), with rates `α ≈ 0.036`, `β ≈ 0.0304`,
//! `δ ≈ 0.0330` per month and the strict ordering `α ≳ δ ≳ β` demanded by
//! demand/supply balance. This crate packages:
//!
//! * [`rates`] — the growth-rate algebra: [`rates::GrowthRates`] with the
//!   derived quantities (`τ`, `δ′`, `μ`, predicted degree exponent `γ`) and
//!   the demand/supply consistency checks.
//! * [`timeline`] — synthetic Hobbes-Timeline / Oregon-Route-Views-style
//!   traces: monthly `W(t)`, `N(t)`, `E(t)` series with multiplicative
//!   log-normal measurement noise. (The real archives are offline data
//!   sources; see DESIGN.md §1 for the substitution rationale.)
//! * [`fit`] — recovers the rates from a trace by log-linear regression
//!   (regenerates Fig. 1 of the source text).
//! * [`theory`] — closed-form results of the continuum analysis: the
//!   zero-noise user trajectory (Eq. 3), the stationary AS-size
//!   distribution `p(ω)` (Eq. 5), and the predicted degree distribution
//!   shape (Eq. 8).
//! * [`continuum`] — Euler–Maruyama integration of the full stochastic user
//!   dynamics (Eq. 2), used to validate the zero-noise approximation that
//!   underlies Eq. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod continuum;
pub mod fit;
pub mod rates;
pub mod theory;
pub mod timeline;

pub use fit::FittedRates;
pub use rates::GrowthRates;
pub use timeline::{InternetTrace, TraceConfig};
