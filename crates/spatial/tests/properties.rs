//! Property-based tests for spatial substrates.

use inet_spatial::{boxcount, FractalSet, GridIndex, Point2};
use inet_stats::rng::seeded_rng;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point2> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    /// Distance is a metric: symmetric, zero on the diagonal, triangle
    /// inequality.
    #[test]
    fn euclidean_is_a_metric(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-12);
        prop_assert!(a.dist(&a) < 1e-12);
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-12);
    }

    /// Toroidal distance never exceeds Euclidean distance and is bounded by
    /// the half-diagonal of the torus.
    #[test]
    fn torus_distance_bounds(a in point_strategy(), b in point_strategy()) {
        let t = a.dist_torus(&b, 1.0);
        prop_assert!(t <= a.dist(&b) + 1e-12);
        prop_assert!(t <= (0.5f64 * 0.5 + 0.5 * 0.5).sqrt() + 1e-12);
        prop_assert!((a.dist_torus(&b, 1.0) - b.dist_torus(&a, 1.0)).abs() < 1e-12);
    }

    /// Grid-index radius queries agree with brute force for arbitrary point
    /// sets, probes, radii, and cell sizes.
    #[test]
    fn grid_index_matches_brute_force(
        pts in proptest::collection::vec(point_strategy(), 1..120),
        probe in point_strategy(),
        radius in 0.0f64..0.7,
        cell in 0.01f64..0.9,
    ) {
        let idx = GridIndex::build(&pts, cell);
        let got = idx.within(&probe, radius);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| q.dist(&probe) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Occupied-box counts are monotone in resolution and bounded by the
    /// sample size.
    #[test]
    fn box_counts_are_monotone(pts in proptest::collection::vec(point_strategy(), 16..200)) {
        let mut prev = 0usize;
        for k in 1..=8 {
            let n = boxcount::occupied_boxes(&pts, k);
            prop_assert!(n >= prev, "box count decreased at k={k}");
            prop_assert!(n <= pts.len());
            prev = n;
        }
    }

    /// Fractal generation always yields points inside the unit square, for
    /// any dimension and depth in range.
    #[test]
    fn fractal_points_in_bounds(dim in 0.8f64..2.0, depth in 2u32..9, seed in 0u64..100) {
        let f = FractalSet::new(dim, depth);
        let mut rng = seeded_rng(seed);
        let pts = f.generate(200, &mut rng);
        prop_assert_eq!(pts.len(), 200);
        for p in &pts {
            prop_assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
    }
}
