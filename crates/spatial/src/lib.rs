//! # inet-spatial — spatial substrates for geography-aware topology models
//!
//! Router and AS locations are strongly clustered: empirical work (Yook,
//! Jeong & Barabási, PNAS 2002) measured a box-counting **fractal dimension
//! of ≈ 1.5** for Internet router positions. Spatial topology models (Waxman,
//! BRITE-style, the Serrano competition–adaptation model) therefore need
//! point sets with controllable fractal dimension, plus distance machinery:
//!
//! * [`Point2`] — plain 2-D points with Euclidean and toroidal metrics.
//! * [`pointset`] — uniform and Lévy-flight point clouds in the unit square.
//! * [`fractal`] — randomized Cantor-dust point sets with **tunable
//!   box-counting dimension** `D_f ∈ (0, 2]` via recursive quad subdivision.
//! * [`boxcount`] — a box-counting dimension estimator used to validate the
//!   generators (and usable on any point set).
//! * [`index`] — a uniform-grid spatial index for radius queries, used by
//!   geometric graph generators.
//!
//! All generation is deterministic given the RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxcount;
pub mod fractal;
pub mod index;
pub mod point;
pub mod pointset;

pub use boxcount::box_counting_dimension;
pub use fractal::FractalSet;
pub use index::GridIndex;
pub use point::Point2;
pub use pointset::{levy_points, uniform_points};
