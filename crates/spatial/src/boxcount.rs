//! Box-counting dimension estimation.
//!
//! The box-counting dimension of a point set is the slope of
//! `log N(ε)` versus `log (1/ε)`, where `N(ε)` is the number of grid boxes of
//! side `ε` containing at least one point. We sweep dyadic scales
//! `ε = 2^(−k)` and fit the slope by least squares, skipping the saturated
//! regimes at both ends (boxes so large everything is one box, or so small
//! every point has its own box).

use crate::Point2;
use inet_stats::regression::{linear_fit, LinearFit};
use std::collections::HashSet;

/// Counts occupied boxes at side `1 / 2^k` for points in the unit square.
pub fn occupied_boxes(points: &[Point2], k: u32) -> usize {
    let side = (1u64 << k) as f64;
    let mut boxes: HashSet<(u32, u32)> = HashSet::with_capacity(points.len());
    for p in points {
        let bx = ((p.x * side) as u32).min((1 << k) - 1);
        let by = ((p.y * side) as u32).min((1 << k) - 1);
        boxes.insert((bx, by));
    }
    boxes.len()
}

/// Estimates the box-counting dimension of a point set in the unit square.
///
/// Scales are chosen automatically: `k` runs from 1 while the box count
/// stays below `points.len() / 4` (beyond that, discreteness saturates the
/// count and flattens the curve). Returns `None` when fewer than 16 points
/// or fewer than 3 usable scales exist. The returned fit's `slope` is the
/// dimension estimate; `slope_se` quantifies scatter.
pub fn box_counting_dimension(points: &[Point2]) -> Option<LinearFit> {
    if points.len() < 16 {
        return None;
    }
    let mut log_inv_eps = Vec::new();
    let mut log_n = Vec::new();
    for k in 1..=16u32 {
        let n = occupied_boxes(points, k);
        if n > points.len() / 4 {
            break;
        }
        log_inv_eps.push(k as f64 * 2f64.ln());
        log_n.push((n as f64).ln());
    }
    if log_n.len() < 3 {
        return None;
    }
    linear_fit(&log_inv_eps, &log_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn occupied_boxes_counts_distinct_cells() {
        let pts = [
            Point2::new(0.1, 0.1),
            Point2::new(0.15, 0.12), // same cell at k=1,2
            Point2::new(0.9, 0.9),
        ];
        assert_eq!(occupied_boxes(&pts, 1), 2);
        assert_eq!(occupied_boxes(&pts, 2), 2);
        assert_eq!(
            occupied_boxes(&pts, 3),
            3,
            "0.125-cells separate the close pair"
        );
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let pts = [Point2::new(1.0, 1.0), Point2::new(0.0, 0.0)];
        assert_eq!(occupied_boxes(&pts, 2), 2);
    }

    #[test]
    fn uniform_set_has_dimension_two() {
        let mut rng = seeded_rng(1);
        let pts: Vec<Point2> = (0..50_000)
            .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let fit = box_counting_dimension(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.15, "dimension {}", fit.slope);
    }

    #[test]
    fn points_on_a_line_have_dimension_one() {
        let mut rng = seeded_rng(2);
        let pts: Vec<Point2> = (0..50_000)
            .map(|_| {
                let t: f64 = rng.gen_range(0.0..1.0);
                Point2::new(t, t)
            })
            .collect();
        let fit = box_counting_dimension(&pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.12, "dimension {}", fit.slope);
    }

    #[test]
    fn single_cluster_has_dimension_near_zero() {
        let mut rng = seeded_rng(3);
        let pts: Vec<Point2> = (0..5_000)
            .map(|_| {
                Point2::new(
                    0.5 + rng.gen_range(0.0..1e-6),
                    0.5 + rng.gen_range(0.0..1e-6),
                )
            })
            .collect();
        let fit = box_counting_dimension(&pts).unwrap();
        assert!(fit.slope.abs() < 0.2, "dimension {}", fit.slope);
    }

    #[test]
    fn too_few_points_yield_none() {
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 / 10.0, 0.5)).collect();
        assert!(box_counting_dimension(&pts).is_none());
    }
}
