//! 2-D points and metrics.

use serde::{Deserialize, Serialize};

/// A point in the plane. Model space is conventionally the unit square
/// `[0, 1)²`, but nothing in this type assumes it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in comparisons).
    pub fn dist_sq(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Toroidal (periodic) distance on a `size × size` torus — removes
    /// boundary effects in small simulation domains.
    pub fn dist_torus(&self, other: &Point2, size: f64) -> f64 {
        let wrap = |d: f64| {
            let d = d.abs() % size;
            d.min(size - d)
        };
        let dx = wrap(self.x - other.x);
        let dy = wrap(self.y - other.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint between two points.
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// Largest pairwise distance over a point set, by exhaustive scan when the
/// set is small and by convex-ish corner heuristics otherwise.
///
/// For `n ≤ 2000` this is exact (`O(n²)`); beyond that it returns the exact
/// maximum distance among the 64 points most extreme along eight compass
/// directions — a tight bound for the clustered sets used here, and the
/// quantity only ever feeds a cost *scale* (`kappa` in distance kernels).
pub fn max_pairwise_distance(points: &[Point2]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let exact = |pts: &[Point2]| {
        let mut best = 0.0f64;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                best = best.max(pts[i].dist(&pts[j]));
            }
        }
        best
    };
    if points.len() <= 2000 {
        return exact(points);
    }
    // Pick extremes along 8 directions.
    let dirs: [(f64, f64); 8] = [
        (1.0, 0.0),
        (-1.0, 0.0),
        (0.0, 1.0),
        (0.0, -1.0),
        (1.0, 1.0),
        (1.0, -1.0),
        (-1.0, 1.0),
        (-1.0, -1.0),
    ];
    let mut candidates: Vec<Point2> = Vec::new();
    for (dx, dy) in dirs {
        let mut scored: Vec<(f64, &Point2)> =
            points.iter().map(|p| (p.x * dx + p.y * dy, p)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite coordinates"));
        candidates.extend(scored.iter().take(8).map(|&(_, p)| *p));
    }
    exact(&candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn torus_distance_wraps() {
        let a = Point2::new(0.05, 0.5);
        let b = Point2::new(0.95, 0.5);
        assert!((a.dist(&b) - 0.9).abs() < 1e-12);
        assert!((a.dist_torus(&b, 1.0) - 0.1).abs() < 1e-12);
        // Within half the domain, torus = euclidean.
        let c = Point2::new(0.3, 0.5);
        assert!((a.dist_torus(&c, 1.0) - a.dist(&c)).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point2::new(0.0, 2.0).midpoint(&Point2::new(4.0, 0.0));
        assert_eq!(m, Point2::new(2.0, 1.0));
    }

    #[test]
    fn max_distance_small_exact() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.2, 0.8),
        ];
        assert!((max_pairwise_distance(&pts) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(max_pairwise_distance(&pts[..1]), 0.0);
        assert_eq!(max_pairwise_distance(&[]), 0.0);
    }

    #[test]
    fn max_distance_large_uses_extremes() {
        // Dense grid with two far corners: heuristic must find the diagonal.
        let mut pts = Vec::new();
        for i in 0..60 {
            for j in 0..60 {
                pts.push(Point2::new(i as f64 / 100.0 + 0.2, j as f64 / 100.0 + 0.2));
            }
        }
        pts.push(Point2::new(0.0, 0.0));
        pts.push(Point2::new(1.0, 1.0));
        assert!(pts.len() > 2000);
        assert!((max_pairwise_distance(&pts) - 2f64.sqrt()).abs() < 1e-9);
    }
}
