//! Uniform and Lévy-flight point clouds in the unit square.

use crate::Point2;
use rand::Rng;

/// `n` points uniformly distributed in `[0, 1)²`.
pub fn uniform_points<R: Rng>(n: usize, rng: &mut R) -> Vec<Point2> {
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect()
}

/// `n` points laid down by a Lévy flight with step-length tail exponent
/// `alpha` (`P(step ≥ s) ∝ s^(−alpha)`, `alpha > 0`), wrapped onto the unit
/// torus. Small `alpha` produces long jumps between dense local clusters —
/// a quick way to get "cities with sparse long-haul links" geometry without
/// the full fractal machinery.
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn levy_points<R: Rng>(n: usize, alpha: f64, rng: &mut R) -> Vec<Point2> {
    assert!(alpha > 0.0, "Levy exponent must be positive");
    let mut pts = Vec::with_capacity(n);
    let mut x = rng.gen_range(0.0..1.0);
    let mut y = rng.gen_range(0.0..1.0);
    let min_step = 1e-3;
    for _ in 0..n {
        pts.push(Point2::new(x, y));
        let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
        let step = (min_step * u.powf(-1.0 / alpha)).min(0.5);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        x = (x + step * theta.cos()).rem_euclid(1.0);
        y = (y + step * theta.sin()).rem_euclid(1.0);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn uniform_points_are_in_unit_square() {
        let mut rng = seeded_rng(1);
        let pts = uniform_points(500, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
    }

    #[test]
    fn uniform_points_cover_the_square() {
        let mut rng = seeded_rng(2);
        let pts = uniform_points(2000, &mut rng);
        // All four quadrants hit.
        for (qx, qy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert!(
                pts.iter().any(|p| (p.x > 0.5) == qx && (p.y > 0.5) == qy),
                "quadrant ({qx},{qy}) empty"
            );
        }
    }

    #[test]
    fn levy_points_wrap_and_cluster() {
        let mut rng = seeded_rng(3);
        let pts = levy_points(2000, 1.2, &mut rng);
        assert_eq!(pts.len(), 2000);
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
        // Clustering check: median consecutive step is much smaller than the
        // mean (heavy-tailed steps).
        let steps: Vec<f64> = pts
            .windows(2)
            .map(|w| w[0].dist_torus(&w[1], 1.0))
            .collect();
        let med = inet_stats::summary::median(&steps).unwrap();
        let mean = inet_stats::Summary::from_slice(&steps).mean;
        assert!(med < mean, "median {med} !< mean {mean}");
    }

    #[test]
    fn empty_request_yields_empty_sets() {
        let mut rng = seeded_rng(4);
        assert!(uniform_points(0, &mut rng).is_empty());
        assert!(levy_points(0, 1.5, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "Levy exponent")]
    fn levy_rejects_bad_alpha() {
        let mut rng = seeded_rng(5);
        let _ = levy_points(10, 0.0, &mut rng);
    }

    #[test]
    fn determinism_given_seed() {
        let a = uniform_points(50, &mut seeded_rng(9));
        let b = uniform_points(50, &mut seeded_rng(9));
        assert_eq!(a, b);
    }
}
