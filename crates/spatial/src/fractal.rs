//! Randomized Cantor-dust point sets with tunable fractal dimension.
//!
//! ## Construction
//!
//! Start from the unit square. At each of `depth` levels, split every
//! surviving cell into its four quadrants and keep each quadrant
//! independently with probability `p`. The surviving leaf cells form a
//! statistically self-similar set: at level `L` the expected number of
//! occupied boxes of side `2^(−L)` is `(4p)^L`, so the box-counting dimension
//! is
//!
//! ```text
//! D_f = log(4p) / log(2)   ⇔   p = 2^(D_f) / 4.
//! ```
//!
//! `D_f = 2` gives `p = 1` (the full square, i.e. uniform placement);
//! `D_f = 1.5` — the empirical dimension of Internet router locations —
//! gives `p = 2^1.5/4 ≈ 0.707`.
//!
//! Points are then drawn by picking a surviving leaf uniformly at random and
//! placing the point uniformly inside it. Because survival is supercritical
//! for `D_f > 1` (`4p > 1`), extinction is rare; the generator retries with a
//! fresh subdivision in that case.

use crate::Point2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a fractal point-set generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FractalSet {
    /// Target box-counting dimension, in `(0, 2]`.
    pub dimension: f64,
    /// Subdivision depth. Cells at the bottom have side `2^(−depth)`;
    /// 8 levels (cell side ≈ 0.004) is plenty for `10^4`–`10^5` nodes.
    pub depth: u32,
}

impl FractalSet {
    /// Generator for the Internet's empirical router dimension `D_f = 1.5`
    /// at depth 8.
    pub fn internet() -> Self {
        FractalSet {
            dimension: 1.5,
            depth: 8,
        }
    }

    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dimension <= 2` and `1 <= depth <= 16`.
    pub fn new(dimension: f64, depth: u32) -> Self {
        assert!(
            dimension > 0.0 && dimension <= 2.0,
            "fractal dimension must lie in (0, 2]"
        );
        assert!((1..=16).contains(&depth), "depth must lie in 1..=16");
        FractalSet { dimension, depth }
    }

    /// Quadrant survival probability `p = 2^D_f / 4`.
    pub fn survival_probability(&self) -> f64 {
        2f64.powf(self.dimension) / 4.0
    }

    /// Generates the surviving leaf cells as `(x, y)` integer coordinates on
    /// the `2^depth × 2^depth` grid. Retries the whole subdivision on
    /// extinction (possible but rare for `D_f ≥ 1`); gives up and returns the
    /// full grid after 64 failed attempts (only reachable for tiny `D_f`),
    /// so callers always get a usable substrate.
    pub fn generate_cells<R: Rng>(&self, rng: &mut R) -> Vec<(u32, u32)> {
        let p = self.survival_probability();
        for _attempt in 0..64 {
            let mut cells: Vec<(u32, u32)> = vec![(0, 0)];
            for _level in 0..self.depth {
                let mut next = Vec::with_capacity(cells.len() * 3);
                for (x, y) in cells {
                    for (dx, dy) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        if p >= 1.0 || rng.gen_range(0.0..1.0) < p {
                            next.push((2 * x + dx, 2 * y + dy));
                        }
                    }
                }
                cells = next;
                if cells.is_empty() {
                    break;
                }
            }
            if !cells.is_empty() {
                return cells;
            }
        }
        // Deterministic fallback: the full grid (uniform placement).
        let side = 1u32 << self.depth;
        (0..side)
            .flat_map(|x| (0..side).map(move |y| (x, y)))
            .collect()
    }

    /// Generates `n` points on a fresh fractal set.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Point2> {
        let cells = self.generate_cells(rng);
        self.place_points(&cells, n, rng)
    }

    /// Places `n` points uniformly over the given surviving cells (cells may
    /// be reused across calls to grow a network on a *fixed* geography).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn place_points<R: Rng>(&self, cells: &[(u32, u32)], n: usize, rng: &mut R) -> Vec<Point2> {
        assert!(
            !cells.is_empty(),
            "cannot place points on an empty cell set"
        );
        let side = (1u64 << self.depth) as f64;
        (0..n)
            .map(|_| {
                let &(cx, cy) = &cells[rng.gen_range(0..cells.len())];
                Point2::new(
                    (cx as f64 + rng.gen_range(0.0..1.0)) / side,
                    (cy as f64 + rng.gen_range(0.0..1.0)) / side,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box_counting_dimension;
    use inet_stats::rng::seeded_rng;

    #[test]
    fn survival_probability_formula() {
        assert!((FractalSet::new(2.0, 4).survival_probability() - 1.0).abs() < 1e-12);
        assert!(
            (FractalSet::new(1.5, 4).survival_probability() - 2f64.powf(1.5) / 4.0).abs() < 1e-12
        );
        assert!((FractalSet::new(1.0, 4).survival_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_dimension_keeps_every_cell() {
        let mut rng = seeded_rng(0);
        let cells = FractalSet::new(2.0, 3).generate_cells(&mut rng);
        assert_eq!(cells.len(), 64);
    }

    #[test]
    fn cell_count_tracks_expected_scaling() {
        let mut rng = seeded_rng(1);
        let f = FractalSet::new(1.5, 8);
        let mut counts = Vec::new();
        for _ in 0..10 {
            counts.push(f.generate_cells(&mut rng).len() as f64);
        }
        let mean = inet_stats::Summary::from_slice(&counts).mean;
        let expected = (4.0 * f.survival_probability()).powi(8);
        // Branching process: huge variance, so just demand the right order
        // of magnitude.
        assert!(
            mean > expected / 4.0 && mean < expected * 4.0,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn points_lie_in_unit_square_and_in_cells() {
        let mut rng = seeded_rng(2);
        let f = FractalSet::internet();
        let pts = f.generate(3000, &mut rng);
        assert_eq!(pts.len(), 3000);
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
    }

    #[test]
    fn measured_dimension_matches_target() {
        let mut rng = seeded_rng(3);
        for (target, tol) in [(1.5f64, 0.22), (2.0, 0.15)] {
            let f = FractalSet::new(target, 8);
            let pts = f.generate(40_000, &mut rng);
            let fit = box_counting_dimension(&pts).expect("enough points");
            assert!(
                (fit.slope - target).abs() < tol,
                "target {target}, measured {}",
                fit.slope
            );
        }
    }

    #[test]
    fn shared_cells_give_consistent_geography() {
        let mut rng = seeded_rng(4);
        let f = FractalSet::internet();
        let cells = f.generate_cells(&mut rng);
        let a = f.place_points(&cells, 100, &mut rng);
        let b = f.place_points(&cells, 100, &mut rng);
        // Different points, same support: every point of b lies in a cell.
        assert_ne!(a, b);
        let side = 1u32 << f.depth;
        let cellset: std::collections::HashSet<(u32, u32)> = cells.iter().copied().collect();
        for p in &b {
            let cx = (p.x * side as f64) as u32;
            let cy = (p.y * side as f64) as u32;
            assert!(cellset.contains(&(cx, cy)), "point outside fractal support");
        }
    }

    #[test]
    #[should_panic(expected = "fractal dimension")]
    fn rejects_bad_dimension() {
        let _ = FractalSet::new(2.5, 8);
    }

    #[test]
    #[should_panic(expected = "empty cell set")]
    fn rejects_empty_cells() {
        let mut rng = seeded_rng(5);
        let _ = FractalSet::internet().place_points(&[], 5, &mut rng);
    }
}
