//! Uniform-grid spatial index for radius queries.

use crate::Point2;

/// A uniform bucket grid over the unit square supporting "all points within
/// radius `r` of `p`" queries in expected `O(points in the r-neighborhood)`.
///
/// Used by the random-geometric-graph generator, where the naive all-pairs
/// scan would be `O(n²)`.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cells: Vec<Vec<u32>>,
    points: Vec<Point2>,
    side: usize,
}

impl GridIndex {
    /// Builds an index with cell side ≈ `cell_size` (clamped so the grid has
    /// between 1 and 1024 cells per axis). Points must lie in `[0, 1]²`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(points: &[Point2], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let side = ((1.0 / cell_size).ceil() as usize).clamp(1, 1024);
        let mut cells = vec![Vec::new(); side * side];
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = Self::cell_of(p, side);
            cells[cy * side + cx].push(i as u32);
        }
        GridIndex {
            cells,
            points: points.to_vec(),
            side,
        }
    }

    fn cell_of(p: &Point2, side: usize) -> (usize, usize) {
        let clamp = |v: f64| ((v * side as f64) as usize).min(side - 1);
        (clamp(p.x), clamp(p.y))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within Euclidean distance `radius` of `p`
    /// (including points equal to `p` itself if present). Order is
    /// deterministic (ascending index).
    pub fn within(&self, p: &Point2, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if radius < 0.0 || self.points.is_empty() {
            return out;
        }
        let cell_w = 1.0 / self.side as f64;
        let reach = (radius / cell_w).ceil() as isize + 1;
        let (cx, cy) = Self::cell_of(p, self.side);
        let r2 = radius * radius;
        for dy in -reach..=reach {
            let y = cy as isize + dy;
            if y < 0 || y >= self.side as isize {
                continue;
            }
            for dx in -reach..=reach {
                let x = cx as isize + dx;
                if x < 0 || x >= self.side as isize {
                    continue;
                }
                for &i in &self.cells[y as usize * self.side + x as usize] {
                    if self.points[i as usize].dist_sq(p) <= r2 {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;
    use rand::Rng;

    fn brute_force(points: &[Point2], p: &Point2, r: f64) -> Vec<u32> {
        points
            .iter()
            .enumerate()
            .filter(|(_, q)| q.dist(p) <= r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        let mut rng = seeded_rng(7);
        let pts: Vec<Point2> = (0..500)
            .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let idx = GridIndex::build(&pts, 0.05);
        for _ in 0..50 {
            let probe = Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let r = rng.gen_range(0.0..0.3);
            assert_eq!(idx.within(&probe, r), brute_force(&pts, &probe, r));
        }
    }

    #[test]
    fn radius_zero_finds_exact_matches_only() {
        let pts = [Point2::new(0.5, 0.5), Point2::new(0.50001, 0.5)];
        let idx = GridIndex::build(&pts, 0.1);
        assert_eq!(idx.within(&Point2::new(0.5, 0.5), 0.0), vec![0]);
    }

    #[test]
    fn negative_radius_and_empty_index() {
        let idx = GridIndex::build(&[], 0.1);
        assert!(idx.is_empty());
        assert!(idx.within(&Point2::new(0.5, 0.5), 0.5).is_empty());
        let idx = GridIndex::build(&[Point2::new(0.5, 0.5)], 0.1);
        assert!(idx.within(&Point2::new(0.5, 0.5), -1.0).is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn boundary_points_are_indexed() {
        let pts = [Point2::new(1.0, 1.0), Point2::new(0.0, 0.0)];
        let idx = GridIndex::build(&pts, 0.25);
        assert_eq!(idx.within(&Point2::new(1.0, 1.0), 0.01), vec![0]);
        assert_eq!(idx.within(&Point2::new(0.0, 0.0), 0.01), vec![1]);
    }

    #[test]
    fn coarse_grid_still_correct() {
        let mut rng = seeded_rng(8);
        let pts: Vec<Point2> = (0..200)
            .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        // One cell total: degenerate but must stay correct.
        let idx = GridIndex::build(&pts, 5.0);
        let probe = Point2::new(0.3, 0.3);
        assert_eq!(idx.within(&probe, 0.2), brute_force(&pts, &probe, 0.2));
    }
}
