//! Design-choice ablations with a time dimension (see DESIGN.md §4):
//!
//! * distance kernel on/off in the Serrano model (rejection-sampling cost);
//! * reinforcement `r` extremes (matching-loop cost);
//! * exact vs sampled betweenness (the accuracy/cost trade the report
//!   options expose).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inet_model::generators::SerranoParams;
use inet_model::metrics::{betweenness, betweenness_sampled};
use inet_model::prelude::*;

fn bench_serrano_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("serrano_ablation_n1500");
    group.sample_size(10);

    for (name, distance) in [("nodist", false), ("dist", true)] {
        group.bench_function(BenchmarkId::new("distance", name), |b| {
            let mut params = SerranoParams::small(1500);
            if !distance {
                params.distance = None;
            }
            let model = SerranoModel::new(params);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                std::hint::black_box(model.generate(&mut rng).graph.edge_count())
            });
        });
    }
    for r in [0.0, 0.8, 0.95] {
        group.bench_function(BenchmarkId::new("r", format!("{r}")), |b| {
            let mut params = SerranoParams::small(1500);
            params.distance = None;
            params.r = r;
            let model = SerranoModel::new(params);
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                std::hint::black_box(model.generate(&mut rng).graph.edge_count())
            });
        });
    }
    group.finish();
}

fn bench_betweenness_tradeoff(c: &mut Criterion) {
    let mut rng = seeded_rng(5);
    let net = InetLike::as_map_2001(1500).generate(&mut rng);
    let (g, _) = inet_model::graph::traversal::giant_component(&net.graph.to_csr());

    let mut group = c.benchmark_group("betweenness_tradeoff_n1500");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| std::hint::black_box(betweenness(&g)[0]))
    });
    for k in [50usize, 200] {
        group.bench_function(BenchmarkId::new("sampled", k), |b| {
            b.iter(|| std::hint::black_box(betweenness_sampled(&g, k, 1)[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serrano_ablations, bench_betweenness_tradeoff);
criterion_main!(benches);
