//! Generation cost of every topology family at a common size.
//!
//! One group per generator; the Serrano model is benched in both variants
//! (the distance kernel's rejection sampling is its dominant cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inet_model::prelude::*;

fn bench_generators(c: &mut Criterion) {
    let n = 2000;
    let mut group = c.benchmark_group("generate_n2000");
    group.sample_size(10);

    let generators: Vec<(&str, Box<dyn Generator>)> = vec![
        ("er_gnp", Box::new(Gnp::with_mean_degree(n, 4.2))),
        ("waxman", Box::new(Waxman::with_mean_degree(n, 0.2, 4.2))),
        ("rgg", Box::new(RandomGeometric::with_mean_degree(n, 4.2))),
        ("watts_strogatz", Box::new(WattsStrogatz::new(n, 4, 0.1))),
        ("barabasi_albert", Box::new(BarabasiAlbert::new(n, 2))),
        ("goh_static", Box::new(GohStatic::with_gamma(n, 2, 2.2))),
        ("glp", Box::new(Glp::internet_2001(n))),
        ("inet_like", Box::new(InetLike::as_map_2001(n))),
        ("fkp", Box::new(Fkp::new(n, 10.0))),
        ("pfp", Box::new(Pfp::internet(n))),
        (
            "brite",
            Box::new(BriteLike::new(
                n,
                2,
                0.2,
                inet_model::generators::brite::Placement::Fractal(1.5),
            )),
        ),
        (
            "serrano_nodist",
            Box::new(SerranoModel::new(
                inet_model::experiment::ModelVariant::WithoutDistance.params(n),
            )),
        ),
        (
            "serrano_dist",
            Box::new(SerranoModel::new(
                inet_model::experiment::ModelVariant::WithDistance.params(n),
            )),
        ),
    ];

    for (name, generator) in &generators {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                std::hint::black_box(generator.generate(&mut rng).graph.edge_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
