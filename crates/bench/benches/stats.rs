//! Cost of the statistical primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use inet_model::prelude::*;
use inet_model::stats::{ccdf::ccdf_u64, powerlaw, DynamicWeightedSampler};
use rand::Rng;

fn bench_stats(c: &mut Criterion) {
    let mut rng = seeded_rng(7);
    let sample: Vec<u64> = (0..50_000)
        .map(|_| powerlaw::sample_discrete(2.2, 1, &mut rng))
        .collect();

    let mut group = c.benchmark_group("stats");
    group.bench_function("powerlaw_fit_fixed_xmin_50k", |b| {
        b.iter(|| std::hint::black_box(powerlaw::fit_discrete(&sample, 5)))
    });
    group.bench_function("powerlaw_fit_auto_50k", |b| {
        b.iter(|| std::hint::black_box(powerlaw::fit_discrete_auto(&sample)))
    });
    group.bench_function("ccdf_50k", |b| {
        b.iter(|| std::hint::black_box(ccdf_u64(&sample).n))
    });
    group.bench_function("fenwick_draw_update_10k_items", |b| {
        let weights: Vec<f64> = (0..10_000).map(|i| (i % 97 + 1) as f64).collect();
        let mut sampler = DynamicWeightedSampler::from_weights(&weights);
        let mut rng = seeded_rng(9);
        b.iter(|| {
            let i = sampler.sample(&mut rng).expect("positive total");
            sampler.add_weight(i, 1.0);
            std::hint::black_box(i)
        })
    });
    group.bench_function("linear_fit_10k", |b| {
        let x: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut rng = seeded_rng(11);
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 2.0 * v + rng.gen_range(-1.0..1.0))
            .collect();
        b.iter(|| std::hint::black_box(inet_model::stats::regression::linear_fit(&x, &y)))
    });
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
