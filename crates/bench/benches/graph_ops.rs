//! Cost of the graph-substrate primitives, including the
//! CSR-vs-adjacency-map ablation for measurement workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use inet_model::graph::{traversal, MultiGraph, NodeId};
use inet_model::prelude::*;

fn as_like_graph(n: usize) -> MultiGraph {
    let mut rng = seeded_rng(3);
    InetLike::as_map_2001(n).generate(&mut rng).graph
}

fn bench_graph_ops(c: &mut Criterion) {
    let g = as_like_graph(4000);
    let csr = g.to_csr();

    let mut group = c.benchmark_group("graph_ops");
    group.bench_function("build_10k_edges", |b| {
        let edges: Vec<(usize, usize)> = {
            let mut rng = seeded_rng(4);
            use rand::Rng;
            (0..10_000)
                .map(|_| {
                    let u = rng.gen_range(0..2000);
                    let v = (u + rng.gen_range(1..1999usize)) % 2000;
                    (u, v)
                })
                .collect()
        };
        b.iter(|| {
            let g = MultiGraph::from_edges(2000, edges.iter().copied()).expect("valid");
            std::hint::black_box(g.edge_count())
        })
    });
    group.bench_function("reinforce_existing_edge", |b| {
        let mut g = g.clone();
        let (u, v, _) = g.edges().next().expect("non-empty");
        b.iter(|| std::hint::black_box(g.add_edge_weighted(u, v, 1)))
    });
    group.bench_function("to_csr", |b| {
        b.iter(|| std::hint::black_box(g.to_csr().edge_count()))
    });
    group.bench_function("bfs_from_hub", |b| {
        let hub = (0..csr.node_count())
            .max_by_key(|&v| csr.degree(v))
            .expect("non-empty");
        b.iter(|| std::hint::black_box(traversal::bfs_distances(&csr, hub)[0]))
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| std::hint::black_box(traversal::connected_components(&csr).count()))
    });

    // Ablation: full neighbor scan via CSR slices vs BTreeMap adjacency.
    group.bench_function("scan_neighbors_csr", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..csr.node_count() {
                for &u in csr.neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("scan_neighbors_multigraph", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..g.node_count() {
                for (u, _) in g.neighbors(NodeId::new(v)) {
                    acc = acc.wrapping_add(u.index() as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
