//! Cost of the figure-critical topology measures on an AS-like graph.
//!
//! The workload graph is an Inet-style `γ = 2.2` network of 4000 nodes —
//! heavy-tailed like the real map, so hub costs (the worst case for the
//! cycle census and clustering) are represented.

use criterion::{criterion_group, criterion_main, Criterion};
use inet_model::metrics::{
    betweenness_sampled, ClusteringStats, CycleCensus, DegreeStats, KCoreDecomposition, KnnStats,
    PathStats,
};
use inet_model::prelude::*;

fn workload() -> Csr {
    let mut rng = seeded_rng(0xBEEF);
    let net = InetLike::as_map_2001(4000).generate(&mut rng);
    let (giant, _) = inet_model::graph::traversal::giant_component(&net.graph.to_csr());
    giant
}

fn bench_metrics(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("metrics_n4000");
    group.sample_size(10);

    group.bench_function("degree_stats", |b| {
        b.iter(|| std::hint::black_box(DegreeStats::measure(&g).mean))
    });
    group.bench_function("clustering", |b| {
        b.iter(|| std::hint::black_box(ClusteringStats::measure(&g).triangle_count))
    });
    group.bench_function("knn_assortativity", |b| {
        b.iter(|| std::hint::black_box(KnnStats::measure(&g).assortativity))
    });
    group.bench_function("kcore", |b| {
        b.iter(|| std::hint::black_box(KCoreDecomposition::measure(&g).coreness()))
    });
    group.bench_function("cycle_census_345", |b| {
        b.iter(|| std::hint::black_box(CycleCensus::measure(&g).c5))
    });
    group.bench_function("paths_sampled_100", |b| {
        b.iter(|| std::hint::black_box(PathStats::measure_sampled(&g, 100, 1).mean))
    });
    group.bench_function("paths_sampled_100_threads4", |b| {
        b.iter(|| std::hint::black_box(PathStats::measure_sampled(&g, 100, 4).mean))
    });
    group.bench_function("betweenness_sampled_50", |b| {
        b.iter(|| std::hint::black_box(betweenness_sampled(&g, 50, 1)[0]))
    });
    group.bench_function("betweenness_sampled_50_threads4", |b| {
        b.iter(|| std::hint::black_box(betweenness_sampled(&g, 50, 4)[0]))
    });
    group.bench_function("powerlaw_fit_auto", |b| {
        let degrees = DegreeStats::measure(&g).degrees;
        b.iter(|| std::hint::black_box(inet_model::stats::powerlaw::fit_discrete_auto(&degrees)))
    });
    // The fused engine's headline: one sweep for paths + betweenness vs the
    // seed's two independent passes (plus seed vs forward triangle
    // counting).
    group.bench_function("fused_paths_and_betweenness_100_50", |b| {
        b.iter(|| {
            std::hint::black_box(
                inet_model::metrics::paths_and_betweenness(&g, 100, 50, 1)
                    .paths
                    .mean,
            )
        })
    });
    group.bench_function("seed_two_pass_100_50", |b| {
        b.iter(|| {
            let p = PathStats::measure_sampled_unfused(&g, 100);
            let bc = inet_model::metrics::betweenness::betweenness_sampled_unfused(&g, 50);
            std::hint::black_box((p.mean, bc[0]))
        })
    });
    group.bench_function("clustering_seed_edge_merge", |b| {
        b.iter(|| std::hint::black_box(ClusteringStats::measure_unfused(&g).triangle_count))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
