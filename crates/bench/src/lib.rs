//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! evaluation (see `EXPERIMENTS.md` at the workspace root for the index).
//! Conventions:
//!
//! * run with `cargo run --release -p inet-bench --bin <name> [size]`;
//! * the optional positional argument scales the experiment (default: the
//!   paper's `N ≈ 11 000`; pass e.g. `2000` for a quick look);
//! * rows/series print to stdout, and CSV mirrors land under
//!   `target/figures/<experiment>/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parses the experiment size from `argv[1]`, defaulting to the paper's
/// 2001 AS-map scale.
pub fn target_size() -> usize {
    parse_size_arg(std::env::args().nth(1).as_deref())
}

/// Testable core of [`target_size`]: `None` or junk falls back to 11 000;
/// values are clamped into `[64, 200_000]`.
pub fn parse_size_arg(arg: Option<&str>) -> usize {
    arg.and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(11_000)
        .clamp(64, 200_000)
}

/// Sweep sizes for scaling experiments: geometric ladder from 500 up to
/// `max` (inclusive as the last rung).
pub fn size_ladder(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut s = 500usize;
    while s < max {
        sizes.push(s);
        s *= 2;
    }
    sizes.push(max);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size_arg(None), 11_000);
        assert_eq!(parse_size_arg(Some("2000")), 2000);
        assert_eq!(parse_size_arg(Some("nonsense")), 11_000);
        assert_eq!(parse_size_arg(Some("1")), 64, "clamped low");
        assert_eq!(parse_size_arg(Some("99999999")), 200_000, "clamped high");
    }

    #[test]
    fn ladder_shape() {
        let l = size_ladder(11_000);
        assert_eq!(l, vec![500, 1000, 2000, 4000, 8000, 11_000]);
        assert_eq!(size_ladder(500), vec![500]);
        assert_eq!(size_ladder(600), vec![500, 600]);
    }
}
