//! **Diagnostic** — one-page summary of the competition–adaptation model at
//! a given size, both variants: the quick way to eyeball a calibration
//! change before re-running the full figure suite.
//!
//! `cargo run --release -p inet-bench --bin model_summary [size]`

use inet_model::experiment::ModelVariant;
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::{weighted, TopologyReport};

fn main() {
    let size = inet_bench::target_size();
    for (variant, stream) in [
        (ModelVariant::WithoutDistance, 200u64),
        (ModelVariant::WithDistance, 201),
    ] {
        let started = std::time::Instant::now();
        let run = variant.run(size, stream);
        let g = &run.network.graph;
        let (giant, _) = giant_component(&g.to_csr());
        let report = TopologyReport::measure(&giant);
        let mu = weighted::fit_mu(&giant, 4);
        println!("== {} (N = {size}) ==", variant.label());
        println!("{}", report.render());
        println!(
            "mean multiplicity : {:.2}",
            g.total_weight() as f64 / g.edge_count().max(1) as f64
        );
        println!(
            "giant fraction    : {:.3}",
            giant.node_count() as f64 / g.node_count() as f64
        );
        if let Some(mu) = mu {
            println!("mu (k ~ b^mu)     : {:.3} +- {:.3}", mu.slope, mu.slope_se);
        }
        println!(
            "generated+measured in {:.1}s\n",
            started.elapsed().as_secs_f64()
        );
    }
}
