//! **Fig. 4 + Table I** — Scaling of the number of loops of size 3, 4, 5
//! with system size: `N_h(N) ∼ N^{ξ(h)}`, for the model with and without
//! the distance constraint.
//!
//! Paper's Table I values (after Bianconi et al., PRE 71 066116):
//!
//! | system | ξ(3) | ξ(4) | ξ(5) |
//! |---|---|---|---|
//! | Internet AS map | 1.45 ± 0.07 | 2.07 ± 0.01 | 2.45 ± 0.08 |
//! | model with distance | 1.60 ± 0.01 | 2.20 ± 0.03 | 2.70 ± 0.03 |
//! | model without distance | 1.59 ± 0.03 | 2.11 ± 0.03 | 2.64 ± 0.03 |

use inet_model::experiment::{banner, pm, FigureSink, ModelVariant};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::CycleCensus;
use inet_model::stats::regression::loglog_fit;

const PAPER: [(&str, [f64; 3], [f64; 3]); 3] = [
    ("Internet AS map", [1.45, 2.07, 2.45], [0.07, 0.01, 0.08]),
    (
        "Model with distance",
        [1.60, 2.20, 2.70],
        [0.01, 0.03, 0.03],
    ),
    (
        "Model without distance",
        [1.59, 2.11, 2.64],
        [0.03, 0.03, 0.03],
    ),
];

fn main() -> std::io::Result<()> {
    let max_size = inet_bench::target_size();
    let sink = FigureSink::new("fig4_loops")?;
    banner("Fig. 4 + Table I — cycle-census scaling N_h(N) ~ N^xi(h)");

    let sizes = inet_bench::size_ladder(max_size);
    println!("\nsize ladder: {sizes:?}");

    let mut table: Vec<(String, [f64; 3], [f64; 3])> = Vec::new();
    for (variant, stream) in [
        (ModelVariant::WithDistance, 50u64),
        (ModelVariant::WithoutDistance, 60),
    ] {
        let mut ns: Vec<f64> = Vec::new();
        let mut counts: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        println!("\n{}:", variant.label());
        println!("{:<8} {:>12} {:>12} {:>12}", "N", "N_3", "N_4", "N_5");
        let mut rows = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let run = variant.run(n, stream + i as u64);
            let (giant, _) = giant_component(&run.network.graph.to_csr());
            let census = CycleCensus::measure_threaded(
                &giant,
                inet_model::graph::parallel::default_threads(),
            );
            println!(
                "{:<8} {:>12} {:>12} {:>12}",
                giant.node_count(),
                census.c3,
                census.c4,
                census.c5
            );
            rows.push(vec![
                giant.node_count() as f64,
                census.c3 as f64,
                census.c4 as f64,
                census.c5 as f64,
            ]);
            ns.push(giant.node_count() as f64);
            counts[0].push(census.c3 as f64);
            counts[1].push(census.c4 as f64);
            counts[2].push(census.c5 as f64);
        }
        let tag = match variant {
            ModelVariant::WithDistance => "loops_with_distance",
            ModelVariant::WithoutDistance => "loops_without_distance",
        };
        sink.series(tag, "n,c3,c4,c5", rows)?;

        let mut xi = [0.0f64; 3];
        let mut xi_se = [0.0f64; 3];
        for h in 0..3 {
            let fit = loglog_fit(&ns, &counts[h]).expect("scaling fittable");
            xi[h] = fit.slope;
            xi_se[h] = fit.slope_se;
        }
        table.push((variant.label().to_string(), xi, xi_se));
    }

    banner("Table I — loop-scaling exponents xi(h)");
    println!(
        "\n{:<26} {:>16} {:>16} {:>16}",
        "system", "xi(3)", "xi(4)", "xi(5)"
    );
    for (name, xi, se) in PAPER {
        println!(
            "{:<26} {:>16} {:>16} {:>16}   [paper]",
            name,
            pm(xi[0], se[0]),
            pm(xi[1], se[1]),
            pm(xi[2], se[2])
        );
    }
    for (name, xi, se) in &table {
        println!(
            "{:<26} {:>16} {:>16} {:>16}   [measured]",
            name,
            pm(xi[0], se[0]),
            pm(xi[1], se[1]),
            pm(xi[2], se[2])
        );
    }

    // Shape checks: exponents ordered and in the paper's neighborhood.
    for (name, xi, _) in &table {
        assert!(
            xi[0] < xi[1] && xi[1] < xi[2],
            "{name}: xi must increase with h"
        );
        assert!(
            (xi[0] - 1.6).abs() < 0.45,
            "{name}: xi(3) = {} off-band",
            xi[0]
        );
        assert!(
            (xi[1] - 2.15).abs() < 0.45,
            "{name}: xi(4) = {} off-band",
            xi[1]
        );
        assert!(
            (xi[2] - 2.65).abs() < 0.55,
            "{name}: xi(5) = {} off-band",
            xi[2]
        );
    }
    println!("\nfig4_loops: all shape checks passed");
    Ok(())
}
