//! **Fig. 1** — Temporal evolution of hosts, autonomous systems and
//! inter-AS connections (Nov 1997 – May 2002), with exponential fits.
//!
//! Two panels:
//!
//! 1. The synthetic archive trace (the offline substitution for the Hobbes
//!    Timeline + Oregon Route-Views data) and its fitted rates, compared to
//!    the paper's `α = 0.036 ± 0.001`, `β = 0.0304 ± 0.0003`,
//!    `δ = 0.0330 ± 0.0002` per month.
//! 2. The same analysis applied to the competition–adaptation model's own
//!    growth history: the model must *grow* at its prescribed rates, not
//!    just end at the right size.

use inet_model::experiment::{banner, FigureSink, ModelVariant};
use inet_model::growth::fit::FittedRates;
use inet_model::growth::{GrowthRates, InternetTrace, TraceConfig};
use inet_model::stats::regression::exp_growth_fit;
use inet_model::stats::rng::child_rng;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size().min(8000);
    let sink = FigureSink::new("fig1_growth")?;

    banner("Fig. 1 — exponential growth of the Internet (hosts / ASs / links)");
    let mut rng = child_rng(inet_model::experiment::BASE_SEED, 1);
    let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
    let fits = FittedRates::fit(&trace).expect("trace is fittable");
    let paper = GrowthRates::internet_empirical();

    println!("\nsynthetic archive trace (55 monthly samples, 3% log-normal noise):");
    println!("{}", fits.render());
    println!("\npaper values:  alpha = 0.036 +- 0.001   beta = 0.0304 +- 0.0003   delta = 0.0330 +- 0.0002");
    println!(
        "measured:      alpha = {:.4} +- {:.4}  beta = {:.4} +- {:.4}  delta = {:.4} +- {:.4}",
        fits.hosts.rate,
        fits.hosts.rate_se,
        fits.ases.rate,
        fits.ases.rate_se,
        fits.links.rate,
        fits.links.rate_se
    );
    let rates = fits.rates();
    println!(
        "derived:       gamma = {:.2} (paper: 2.2 +- 0.1)   tau = {:.3}   mu = {:.3}",
        rates.gamma(),
        rates.tau(),
        rates.mu()
    );

    sink.series(
        "archive_trace",
        "month,hosts,ases,links",
        trace
            .t
            .iter()
            .zip(&trace.hosts)
            .zip(&trace.ases)
            .zip(&trace.links)
            .map(|(((&t, &w), &n), &e)| vec![t, w, n, e]),
    )?;

    banner("model self-consistency: growth rates of a model run");
    let run = ModelVariant::WithoutDistance.run(size, 2);
    let t: Vec<f64> = run.history.iter().map(|h| h.t as f64).collect();
    let users: Vec<f64> = run.history.iter().map(|h| h.users).collect();
    let nodes: Vec<f64> = run.history.iter().map(|h| h.nodes as f64).collect();
    let edges: Vec<f64> = run.history.iter().map(|h| h.edges as f64).collect();
    // Skip the transient: fit the second half of the run.
    let half = t.len() / 2;
    let fit_tail = |ys: &[f64]| exp_growth_fit(&t[half..], &ys[half..]).expect("fittable");
    let (fw, fn_, fe) = (fit_tail(&users), fit_tail(&nodes), fit_tail(&edges));
    println!(
        "\nmodel run to N = {} ({} iterations):",
        run.network.graph.node_count(),
        run.iterations
    );
    println!(
        "  users  rate = {:.4}  (prescribed alpha  = 0.0350)",
        fw.rate
    );
    println!(
        "  nodes  rate = {:.4}  (prescribed beta   = 0.0300)",
        fn_.rate
    );
    println!(
        "  edges  rate = {:.4}  (predicted delta   = 0.0338)",
        fe.rate
    );

    sink.series(
        "model_history",
        "iteration,users,nodes,edges,bandwidth",
        run.history.iter().map(|h| {
            vec![
                h.t as f64,
                h.users,
                h.nodes as f64,
                h.edges as f64,
                h.bandwidth as f64,
            ]
        }),
    )?;

    // Shape checks (exit nonzero if the reproduction is broken).
    assert!(
        (fits.hosts.rate - paper.alpha).abs() < 0.004,
        "alpha fit drifted"
    );
    assert!(
        (fits.ases.rate - paper.beta).abs() < 0.004,
        "beta fit drifted"
    );
    assert!(
        (fits.links.rate - paper.delta).abs() < 0.004,
        "delta fit drifted"
    );
    assert!(
        (fw.rate - 0.035).abs() < 0.006,
        "model user growth off prescription"
    );
    assert!(
        (fn_.rate - 0.030).abs() < 0.006,
        "model node growth off prescription"
    );
    println!("\nfig1: all shape checks passed");
    Ok(())
}
