//! **Analytic checks** — the closed-form results of Sec. III-A verified
//! against simulation:
//!
//! 1. the rate algebra (`τ`, `δ`, `δ′`, `μ`, `γ`);
//! 2. the zero-noise trajectory Eq. (3) against a noiseless model run;
//! 3. the stationary size distribution Eq. (5) against the full SDE
//!    (Euler–Maruyama) ensemble, including a `λ`-reallocation sweep showing
//!    diffusion-only behavior;
//! 4. the measured degree–bandwidth exponent `μ` and size-distribution
//!    tail against their predictions.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::generators::{SerranoModel, SerranoParams};
use inet_model::growth::continuum::{ks_against_theory, simulate_ensemble, SdeConfig};
use inet_model::growth::theory;
use inet_model::prelude::*;
use inet_model::stats::ccdf::ccdf_f64;

fn main() -> std::io::Result<()> {
    let sink = FigureSink::new("analytic_checks")?;
    banner("Analytic checks — continuum theory vs simulation");

    // 1. Rate algebra.
    let p = SerranoParams::paper_2001();
    println!("\nrate algebra (paper simulation parameters):");
    println!("  tau   = beta/alpha          = {:.4}", p.tau());
    println!("  delta = 2b - ab/d'          = {:.4}", p.delta());
    println!(
        "  mu    = beta/delta'         = {:.4} (paper: 0.75)",
        p.mu()
    );
    println!(
        "  gamma = 1 + 1/(2-delta/b)   = {:.4} (paper: ~2.2)",
        p.gamma()
    );
    assert!((p.mu() - 0.75).abs() < 1e-12);
    assert!((p.gamma() - 15.0 / 7.0).abs() < 1e-12);

    // 2. Zero-noise trajectory: noiseless deterministic run, oldest node.
    let mut params = SerranoParams::small(2000);
    params.stochastic_users = false;
    params.distance = None;
    let run = SerranoModel::new(params).run(&mut child_rng(BASE_SEED, 100));
    let users = run.network.users.as_ref().expect("users recorded");
    let t_final = run.iterations as f64;
    let oldest_predicted =
        theory::omega_trajectory(params.alpha, params.beta, params.omega0, t_final);
    let oldest_measured = users.iter().fold(0.0f64, |a, &b| a.max(b));
    let rel = (oldest_measured - oldest_predicted).abs() / oldest_predicted;
    println!("\nEq. 3 (zero-noise trajectory), oldest cohort at t = {t_final}:");
    println!("  predicted omega = {oldest_predicted:.3e}");
    println!("  measured  omega = {oldest_measured:.3e}   (rel. err. {rel:.3})");
    // Discrete iterations bias the drift by a few % compounded; the
    // exponential shape (3+ decades) is what the check protects.
    assert!(rel < 0.35, "zero-noise trajectory diverged: {rel}");

    // 3. SDE ensemble vs Eq. 5, with a lambda sweep.
    println!("\nEq. 5 (stationary size distribution) vs Euler-Maruyama SDE:");
    println!(
        "{:<10} {:>12} {:>14}",
        "lambda", "KS to Eq.5", "ensemble size"
    );
    let mut rows = Vec::new();
    for (i, lambda) in [0.0, 0.05, 0.2, 0.5].into_iter().enumerate() {
        let config = SdeConfig {
            lambda,
            ..SdeConfig::paper(180.0)
        };
        let ensemble = simulate_ensemble(config, &mut child_rng(BASE_SEED, 110 + i as u64));
        let ks = ks_against_theory(&ensemble, config);
        println!("{lambda:<10} {ks:>12.4} {:>14}", ensemble.len());
        rows.push(vec![lambda, ks, ensemble.len() as f64]);
        assert!(
            ks < 0.12,
            "SDE ensemble diverged from Eq. 5 at lambda = {lambda}: KS = {ks}"
        );
    }
    sink.series("sde_lambda_sweep", "lambda,ks,ensemble", rows)?;
    println!("  (lambda only adds diffusion: KS stays flat across the sweep)");

    // 4. Model-measured exponents vs predictions.
    let run = ModelVariant::WithoutDistance.run(8000, 120);
    let (giant, _) = inet_model::graph::traversal::giant_component(&run.network.graph.to_csr());
    let mu_fit = inet_model::metrics::weighted::fit_mu(&giant, 4).expect("mu fittable");
    println!("\nmodel-measured exponents at N = 8000:");
    println!(
        "  mu measured = {:.3} +- {:.3} (predicted {:.3})",
        mu_fit.slope,
        mu_fit.slope_se,
        p.mu()
    );
    assert!((mu_fit.slope - p.mu()).abs() < 0.15, "mu off prediction");

    // Size-distribution tail: CCDF exponent should be tau.
    let users = run.network.users.as_ref().expect("users recorded");
    let ccdf = ccdf_f64(users);
    let pts: Vec<(f64, f64)> = ccdf
        .points()
        .filter(|&(w, c)| w > 4.0 * p.omega0 && c > 1e-3)
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    let tail = inet_model::stats::regression::loglog_fit(&xs, &ys).expect("tail fittable");
    println!(
        "  size CCDF tail exponent = {:.3} +- {:.3} (predicted -tau = -{:.3})",
        tail.slope,
        tail.slope_se,
        p.tau()
    );
    assert!(
        (tail.slope + p.tau()).abs() < 0.3,
        "size tail off prediction"
    );

    println!("\nanalytic_checks: all checks passed");
    Ok(())
}
