//! **Table II (toolkit)** — Cross-generator comparison against the
//! published 2001 AS-map targets.
//!
//! The keynote-era question "which generator family should you use?" in one
//! table: every generator in the suite is run at the AS-map size with
//! roughly matched mean degree, the headline measures are computed on the
//! giant component, and each row is validated against the
//! [`inet_model::reference::AS_MAP_2001`] targets.

use inet_model::experiment::{banner, FigureSink, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::prelude::*;
use inet_model::reference::AS_MAP_2001;

fn main() -> std::io::Result<()> {
    let n = inet_bench::target_size();
    let sink = FigureSink::new("table2_generators")?;
    banner("Table II — generator suite vs the 2001 AS map");

    let generators: Vec<Box<dyn Generator>> = vec![
        Box::new(Gnp::with_mean_degree(n, AS_MAP_2001.mean_degree)),
        Box::new(Waxman::with_mean_degree(n, 0.2, AS_MAP_2001.mean_degree)),
        Box::new(RandomGeometric::with_mean_degree(
            n,
            AS_MAP_2001.mean_degree,
        )),
        Box::new(WattsStrogatz::new(n, 4, 0.1)),
        Box::new(BarabasiAlbert::new(n, 2)),
        Box::new(GohStatic::with_gamma(n, 2, 2.2)),
        Box::new(AlbertBarabasiExtended::new(n, 1, 0.3, 0.2)),
        Box::new(BianconiBarabasi::new(
            n,
            2,
            inet_model::generators::bianconi::FitnessDistribution::Uniform,
        )),
        Box::new(Glp::internet_2001(n)),
        Box::new(InetLike::as_map_2001(n)),
        Box::new(Fkp::new(n, 10.0)),
        Box::new(Pfp::internet(n)),
        Box::new(BriteLike::new(
            n,
            2,
            0.2,
            inet_model::generators::brite::Placement::Fractal(1.5),
        )),
        Box::new(SerranoModel::new(
            inet_model::experiment::ModelVariant::WithoutDistance.params(n),
        )),
        Box::new(SerranoModel::new(
            inet_model::experiment::ModelVariant::WithDistance.params(n),
        )),
    ];

    println!(
        "\n{:<26} {:>6} {:>7} {:>7} {:>7} {:>8} {:>6} {:>6} {:>6}",
        "generator", "<k>", "gamma", "clust", "assort", "<l>", "core", "giant", "pass"
    );
    println!(
        "{:<26} {:>6.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>6} {:>6} {:>6}",
        "TARGET (AS 2001)",
        AS_MAP_2001.mean_degree,
        AS_MAP_2001.gamma,
        AS_MAP_2001.mean_clustering,
        AS_MAP_2001.assortativity,
        AS_MAP_2001.mean_path_length,
        AS_MAP_2001.coreness,
        "1.00",
        "6/6"
    );

    let mut rows = Vec::new();
    let mut serrano_pass = 0usize;
    let mut best_other = 0usize;
    let mut serrano_categories = 0usize;
    let mut best_classic_categories = 0usize;
    for (i, generator) in generators.iter().enumerate() {
        let mut rng = child_rng(BASE_SEED, 90 + i as u64);
        let net = generator.generate(&mut rng);
        let csr = net.graph.to_csr();
        let (giant, _) = giant_component(&csr);
        let giant_frac = giant.node_count() as f64 / csr.node_count().max(1) as f64;
        let v = ValidationReport::run(&giant, &AS_MAP_2001);
        let r = &v.report;
        println!(
            "{:<26} {:>6.2} {:>7} {:>7.2} {:>7.2} {:>8.2} {:>6} {:>6.2} {:>5}/6",
            net.name,
            r.mean_degree,
            r.gamma
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.mean_clustering,
            r.assortativity,
            r.mean_path_length,
            r.coreness,
            giant_frac,
            v.pass_count(),
        );
        rows.push(vec![
            i as f64,
            r.mean_degree,
            r.gamma.unwrap_or(f64::NAN),
            r.mean_clustering,
            r.assortativity,
            r.mean_path_length,
            r.coreness as f64,
            giant_frac,
            v.pass_count() as f64,
        ]);
        // Category score: the five *shape* properties of the AS map —
        // Internet-band heavy tail, real clustering, disassortative mixing,
        // deep core hierarchy, small world. Constants may drift between
        // parameterizations; these shapes are what discriminate model
        // families.
        let degrees: Vec<u64> = giant.degrees().iter().map(|&d| d as u64).collect();
        let gamma_tail = inet_model::stats::powerlaw::fit_discrete(&degrees, 6)
            .map(|f| f.gamma)
            .unwrap_or(f64::NAN);
        let categories = usize::from((1.7..2.8).contains(&gamma_tail))
            + usize::from(r.mean_clustering > 0.15)
            + usize::from(r.assortativity < -0.05)
            + usize::from(r.coreness >= 10)
            + usize::from(r.mean_path_length < 4.5);
        if net.name.starts_with("Serrano") {
            serrano_pass = serrano_pass.max(v.pass_count());
            serrano_categories = serrano_categories.max(categories);
        } else if [
            "ER", "Waxman", "RGG", "WS", "BA", "AB-ext", "Bianconi", "Goh", "FKP", "BRITE",
        ]
        .iter()
        .any(|p| net.name.starts_with(p))
        {
            // "Classic" baselines: the random/spatial/plain-PA families the
            // source text's intro calls out as failing beyond P(k). GLP and
            // PFP are contemporary Internet-specific models (expected to do
            // well), and Inet-like is the family the reference map is built
            // from — neither is a fair "classic" baseline.
            best_other = best_other.max(v.pass_count());
            best_classic_categories = best_classic_categories.max(categories);
        }
    }
    sink.series(
        "generator_table",
        "row,mean_degree,gamma,clustering,assortativity,mean_path,coreness,giant,pass_count",
        rows,
    )?;

    println!(
        "\nbest Serrano variant: {serrano_pass}/6 target checks, {serrano_categories}/5 shape categories"
    );
    println!(
        "best classic baseline: {best_other}/6 target checks, {best_classic_categories}/5 shape categories"
    );
    // Shape check: the paper's claim — the competition-adaptation model
    // reproduces the full battery of shape categories (heavy tail,
    // clustering, disassortativity, deep cores, small world) while every
    // classic baseline (ER, Waxman, RGG, plain PA, HOT trees, BRITE)
    // misses at least one.
    assert!(
        serrano_categories == 5,
        "Serrano model lost a shape category: {serrano_categories}/5"
    );
    assert!(
        best_classic_categories < 5,
        "a classic baseline hit all shape categories ({best_classic_categories}/5)"
    );
    println!("\ntable2_generators: all shape checks passed");
    Ok(())
}
