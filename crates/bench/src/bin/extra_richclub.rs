//! **Extra: rich-club structure** — the source text's introduction calls
//! the rich-club phenomenon out as one of the properties degree-driven
//! models "perform poorly" on. This experiment measures the normalized
//! rich-club coefficient `ρ(k) = φ(k)/φ_rand(k)` (Colizza et al. null
//! model) for the competition–adaptation model, the reference map, and a
//! BA baseline.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::richclub::RichClub;
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size().min(8000);
    let sink = FigureSink::new("extra_richclub")?;
    banner("Extra — normalized rich-club coefficient rho(k)");

    let mut rng = child_rng(BASE_SEED, 150);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let serrano = {
        let run = ModelVariant::WithDistance.run(size, 151);
        giant_component(&run.network.graph.to_csr()).0
    };
    let ba = {
        let net = BarabasiAlbert::new(size, 2).generate(&mut child_rng(BASE_SEED, 152));
        net.graph.to_csr()
    };

    let mut maxima = Vec::new();
    for (name, g) in [
        ("AS+ reference", &reference),
        ("Serrano (dist)", &serrano),
        ("BA m=2", &ba),
    ] {
        let mut null_rng = child_rng(BASE_SEED, 153);
        let threads = inet_model::graph::parallel::default_threads();
        let rho = RichClub::normalized_threaded(g, 3, 5, &mut null_rng, threads);
        println!("\n{name}: rho(k) on a log grid");
        let mut rows = Vec::new();
        let mut printed = 0.0f64;
        for (&k, &r) in rho.k.iter().zip(&rho.phi) {
            if (k as f64) >= printed {
                println!("  k = {k:<6} rho = {r:.3}");
                printed = (k as f64 * 1.8).max(printed + 1.0);
            }
            rows.push(vec![k as f64, r]);
        }
        sink.series(
            &name.replace([' ', '(', ')', '+'], "_"),
            "k,rho",
            rows.clone(),
        )?;
        // Top-decile rho summarizes the club.
        let tail: Vec<f64> = rows
            .iter()
            .rev()
            .take((rows.len() / 4).max(1))
            .map(|r| r[1])
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        println!("  high-degree mean rho: {tail_mean:.3}");
        maxima.push((name, tail_mean));
    }

    // Shape checks: the model develops a rich club at high degrees
    // (rho > 1); BA is known to have rho ~ 1 (no club).
    let get = |n: &str| {
        maxima
            .iter()
            .find(|(name, _)| *name == n)
            .expect("present")
            .1
    };
    let serrano_rho = get("Serrano (dist)");
    let ba_rho = get("BA m=2");
    println!(
        "\nhigh-degree rho: Serrano = {serrano_rho:.2}, BA = {ba_rho:.2} \
         (Internet maps: > 1; BA: ~1)"
    );
    assert!(
        serrano_rho > 1.0,
        "model lost its rich club: rho = {serrano_rho}"
    );
    assert!(
        serrano_rho > ba_rho,
        "BA ({ba_rho}) out-clubbed the model ({serrano_rho})"
    );
    println!("\nextra_richclub: all shape checks passed");
    Ok(())
}
