//! **Ablation: competition kernel `Π_i ∝ ω_i^θ`** — how the linearity of
//! the rich-get-richer competition shapes the network.
//!
//! The analysis of Sec. III-A assumes the *linear* preference `θ = 1`.
//! Sublinear competition (`θ < 1`) equalizes the user shares, killing the
//! heavy tail of both the size and degree distributions; superlinear
//! competition (`θ > 1`) triggers winner-take-all condensation where one AS
//! absorbs a finite fraction of all users.

use inet_model::experiment::{banner, FigureSink, BASE_SEED};
use inet_model::generators::{SerranoModel, SerranoParams};
use inet_model::graph::traversal::giant_component;
use inet_model::prelude::*;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size().min(6000);
    let sink = FigureSink::new("ablation_preference")?;
    banner("Ablation — competition kernel exponent theta");

    println!(
        "\n{:<8} {:>12} {:>12} {:>10} {:>10}",
        "theta", "top share", "kmax/N", "gamma", "<k>"
    );
    let mut rows = Vec::new();
    let mut top_shares: Vec<(f64, f64)> = Vec::new();
    for (i, theta) in [0.5, 0.8, 1.0, 1.15].into_iter().enumerate() {
        let mut params = SerranoParams::small(size);
        params.distance = None;
        params.theta = theta;
        let run = SerranoModel::new(params).run(&mut child_rng(BASE_SEED, 140 + i as u64));
        let users = run.network.users.as_ref().expect("users recorded");
        let w: f64 = users.iter().sum();
        let top = users.iter().copied().fold(0.0f64, f64::max) / w;
        let csr = run.network.graph.to_csr();
        let (giant, _) = giant_component(&csr);
        let degrees: Vec<u64> = giant.degrees().iter().map(|&d| d as u64).collect();
        let gamma = inet_model::stats::powerlaw::fit_discrete(&degrees, 6)
            .map(|f| f.gamma)
            .unwrap_or(f64::NAN);
        let kmax_frac = giant.max_degree() as f64 / giant.node_count() as f64;
        println!(
            "{theta:<8} {top:>12.4} {kmax_frac:>12.4} {gamma:>10.2} {:>10.2}",
            giant.mean_degree()
        );
        rows.push(vec![theta, top, kmax_frac, gamma, giant.mean_degree()]);
        top_shares.push((theta, top));
    }
    sink.series(
        "theta_sweep",
        "theta,top_user_share,kmax_over_n,gamma,mean_degree",
        rows,
    )?;

    // Shape checks: the top AS's user share grows monotonically with theta,
    // and superlinear competition condenses (a finite share at theta > 1).
    for pair in top_shares.windows(2) {
        assert!(
            pair[1].1 > pair[0].1 * 0.8,
            "top share should (weakly) grow with theta: {pair:?}"
        );
    }
    let sub = top_shares.first().expect("rows").1;
    let sup = top_shares.last().expect("rows").1;
    assert!(sup > 4.0 * sub, "condensation not visible: {sub} -> {sup}");
    println!("\nablation_preference: all shape checks passed");
    Ok(())
}
