//! **Fig. 5** — Cumulative distributions of betweenness centrality (left)
//! and of the number of triangles passing through a node (right), for the
//! AS+ reference and the model with distance.
//!
//! Both are heavy-tailed on the real map; the model must reproduce the
//! straight-line CCDFs over several decades.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::{betweenness_sampled, ClusteringStats};
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;
use inet_model::stats::ccdf::{ccdf_f64, ccdf_u64, Ccdf};

fn log_rows(c: &Ccdf) -> Vec<Vec<f64>> {
    // Sample the CCDF on a logarithmic grid of its support.
    let mut rows = Vec::new();
    let max = c.max().unwrap_or(1.0).max(1.0);
    let mut x = 1.0f64;
    while x <= max {
        rows.push(vec![x, c.at(x)]);
        x *= 1.7;
    }
    rows
}

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size();
    let sink = FigureSink::new("fig5_centrality")?;
    banner("Fig. 5 — betweenness and triangle CCDFs");

    let mut rng = child_rng(BASE_SEED, 70);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let run = ModelVariant::WithDistance.run(size, 71);
    let (model, _) = giant_component(&run.network.graph.to_csr());

    // Betweenness (sampled estimator, identical effort on both graphs).
    let sources = 300;
    let threads = inet_model::graph::parallel::default_threads();
    let bc_ref = ccdf_f64(&betweenness_sampled(&reference, sources, threads));
    let bc_model = ccdf_f64(&betweenness_sampled(&model, sources, threads));
    println!("\nbetweenness CCDF (log grid):");
    println!("{:<14} {:>14} {:>14}", "b", "AS+ reference", "model (dist)");
    for row in log_rows(&bc_ref) {
        println!(
            "{:<14.1} {:>14.5} {:>14.5}",
            row[0],
            row[1],
            bc_model.at(row[0])
        );
    }
    sink.series(
        "betweenness_ccdf",
        "b,ccdf_reference,ccdf_model",
        log_rows(&bc_ref)
            .into_iter()
            .map(|row| vec![row[0], row[1], bc_model.at(row[0])]),
    )?;

    // Triangles through a node.
    let tri_ref = ccdf_u64(&ClusteringStats::measure_threaded(&reference, threads).triangles);
    let tri_model = ccdf_u64(&ClusteringStats::measure_threaded(&model, threads).triangles);
    println!("\ntriangles-per-node CCDF (log grid):");
    println!("{:<14} {:>14} {:>14}", "T", "AS+ reference", "model (dist)");
    for row in log_rows(&tri_model) {
        println!(
            "{:<14.0} {:>14.5} {:>14.5}",
            row[0],
            tri_ref.at(row[0]),
            row[1]
        );
    }
    sink.series(
        "triangles_ccdf",
        "t,ccdf_reference,ccdf_model",
        log_rows(&tri_model)
            .into_iter()
            .map(|row| vec![row[0], tri_ref.at(row[0]), row[1]]),
    )?;

    // Shape checks: both CCDFs heavy-tailed — the top node carries orders
    // of magnitude more than the median; tails span >= 3 decades.
    let span = |c: &Ccdf| c.max().unwrap_or(1.0).log10();
    assert!(span(&bc_model) > 3.0, "model betweenness tail too short");
    assert!(span(&tri_model) > 2.0, "model triangle tail too short");
    // KS agreement between model and reference CCDFs must be moderate
    // (same family of curves).
    let ks_b = bc_model.ks_distance(&bc_ref);
    println!("\nKS(model, reference): betweenness = {ks_b:.3}");
    assert!(
        ks_b < 0.45,
        "betweenness distributions diverged: KS = {ks_b}"
    );
    println!("\nfig5_centrality: all shape checks passed");
    Ok(())
}
