//! **Performance report** — wall-clock comparison of the fused parallel
//! metrics engine against the seed's sequential two-pass pipeline.
//!
//! Grows a PFP topology (heavy-tailed, Internet-like), then times:
//!
//! 1. the **seed path**: the original sequential pipeline — a paths-only BFS
//!    sweep, a separate Brandes sweep, and the single-threaded clustering /
//!    knn / k-core kernels;
//! 2. the **fused path** at 1 thread: `TopologyReport::measure_with`, whose
//!    paths + betweenness come from one BFS sweep over the union of the
//!    source sets;
//! 3. the fused path at N threads (machine parallelism, or `--threads`).
//!
//! Results print as a table and land in `BENCH_report.json` at the
//! workspace root (`{nodes, edges, threads, wall_ms, speedup}`), where
//! `speedup` is seed wall time divided by the fused run's wall time. The
//! fused outputs are also cross-checked against the seed's numbers, and the
//! fused runs against each other for bit-identity across thread counts.
//!
//! Run with `cargo run --release -p inet-bench --bin perf_report [size]`
//! (default size 50 000; sizes below ~10 000 finish in seconds).

use inet_model::graph::traversal::giant_component;
use inet_model::metrics::report::{ReportOptions, TopologyReport};
use inet_model::metrics::{ClusteringStats, DegreeStats, KCoreDecomposition, KnnStats, PathStats};
use inet_model::prelude::*;
use std::time::Instant;

fn main() {
    let size = inet_bench::parse_size_arg(std::env::args().nth(1).as_deref()).max(1000);
    let threads = inet_model::graph::parallel::default_threads();
    let opt = ReportOptions::default();

    eprintln!("# growing PFP topology, N = {size} ...");
    let mut rng = seeded_rng(2008);
    let net = Pfp::internet(size).generate(&mut rng);
    let (g, _) = giant_component(&net.graph.to_csr());
    let (nodes, edges) = (g.node_count(), g.edge_count());
    eprintln!("# giant component: {nodes} nodes, {edges} edges");

    // 1. Seed path: the same set of observables `measure_with` produces,
    //    computed the seed way — two independent BFS sweeps plus the
    //    sequential degree / clustering / knn / k-core kernels.
    let seed_start = Instant::now();
    let seed_paths = PathStats::measure_sampled_unfused(&g, opt.path_sources);
    let t_paths = seed_start.elapsed().as_secs_f64() * 1e3;
    let seed_bc =
        inet_model::metrics::betweenness::betweenness_sampled_unfused(&g, opt.betweenness_sources);
    let t_bc = seed_start.elapsed().as_secs_f64() * 1e3 - t_paths;
    let seed_degree = DegreeStats::measure(&g);
    let seed_clustering = ClusteringStats::measure_unfused(&g);
    let seed_knn = KnnStats::measure(&g);
    let seed_kcore = KCoreDecomposition::measure(&g);
    let seed_ms = seed_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "# seed components: paths {t_paths:.1} ms, betweenness {t_bc:.1} ms, \
         degree+clustering+knn+kcore {:.1} ms",
        seed_ms - t_paths - t_bc
    );

    // 2./3. Fused path at 1 thread and at N threads.
    let mut fused_runs = Vec::new();
    for t in [1, threads] {
        let start = Instant::now();
        let report = TopologyReport::measure_with(&g, ReportOptions { threads: t, ..opt });
        let ms = start.elapsed().as_secs_f64() * 1e3;
        fused_runs.push((t, ms, report));
    }

    // Sanity: the fused engine must reproduce the seed numbers ...
    let r = &fused_runs[0].2;
    assert!(
        (r.mean_path_length - seed_paths.mean).abs() < 1e-12,
        "path mean diverged"
    );
    assert_eq!(r.diameter, seed_paths.diameter, "diameter diverged");
    let seed_max_bc = seed_bc.iter().copied().fold(0.0, f64::max);
    // Relative tolerance: the fused dependency pass hoists a per-node
    // coefficient, a couple-of-ulp deviation on values that reach 1e7 here.
    assert!(
        (r.max_betweenness - seed_max_bc).abs() <= 1e-9 * seed_max_bc.max(1.0),
        "betweenness diverged"
    );
    assert_eq!(
        r.triangles, seed_clustering.triangle_count,
        "triangles diverged"
    );
    assert!(
        (r.assortativity - seed_knn.assortativity).abs() < 1e-12,
        "assortativity diverged"
    );
    assert_eq!(r.max_degree, seed_degree.max, "max degree diverged");
    assert_eq!(r.coreness, seed_kcore.coreness(), "coreness diverged");
    // ... and be bit-identical across thread counts.
    for (t, _, other) in &fused_runs[1..] {
        assert_eq!(r, other, "fused report not bit-identical at {t} threads");
    }

    println!("\n{:<28} {:>10} {:>9}", "pipeline", "wall ms", "speedup");
    println!(
        "{:<28} {:>10.1} {:>9}",
        "seed two-pass (1 thread)", seed_ms, "1.00x"
    );
    for (t, ms, _) in &fused_runs {
        println!(
            "{:<28} {:>10.1} {:>8.2}x",
            format!("fused sweep ({t} thread{})", if *t == 1 { "" } else { "s" }),
            ms,
            seed_ms / ms
        );
    }

    // Every timed section flows through the obs histograms first, and the
    // JSON row reads the microsecond totals back from there — the artifact
    // and a live `metrics` scrape can never disagree about what was timed.
    let registry = inet_model::obs::default_registry();
    let record = |path: &str, ms: f64| {
        registry
            .histogram("inet_bench_wall_us", &[("path", path)])
            .observe((ms * 1e3) as u64);
    };
    record("seed", seed_ms);
    // Label by run position, not thread count: on a single-core host both
    // fused runs execute at 1 thread, and the second one is still the
    // "machine parallelism" measurement the headline row reports.
    for (i, (_, ms, _)) in fused_runs.iter().enumerate() {
        record(
            if i == 0 {
                "fused-1thread"
            } else {
                "fused-parallel"
            },
            *ms,
        );
    }
    let wall_us = |path: &str| {
        registry
            .histogram("inet_bench_wall_us", &[("path", path)])
            .sum()
    };

    // JSON artifact for the driver: the headline values are the fused run
    // at full parallelism. Rows append (one JSON object per line, newest
    // last) so successive benchmark runs build a history instead of
    // clobbering each other.
    let (best_t, best_ms, _) = fused_runs.last().expect("at least one fused run");
    let json = format!(
        "{{\"nodes\": {nodes}, \"edges\": {edges}, \"threads\": {best_t}, \
         \"wall_ms\": {best_ms:.1}, \"speedup\": {:.3}, \
         \"seed_wall_ms\": {seed_ms:.1}, \"fused_1thread_wall_ms\": {:.1}, \
         \"seed_wall_us\": {}, \"fused_1thread_wall_us\": {}, \"fused_parallel_wall_us\": {}}}",
        seed_ms / best_ms,
        fused_runs[0].1,
        wall_us("seed"),
        wall_us("fused-1thread"),
        wall_us("fused-parallel"),
    );
    let mut rows = std::fs::read_to_string("BENCH_report.json").unwrap_or_default();
    if !rows.is_empty() && !rows.ends_with('\n') {
        rows.push('\n');
    }
    rows.push_str(&json);
    rows.push('\n');
    std::fs::write("BENCH_report.json", rows).expect("write BENCH_report.json");
    println!("\nappended to BENCH_report.json: {json}");
}
