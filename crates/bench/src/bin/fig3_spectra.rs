//! **Fig. 3** — Clustering spectrum `c(k)` (left) and normalized average
//! nearest-neighbors degree `k̄_nn(k)·⟨k⟩/⟨k²⟩` (right), for the AS+
//! reference and the model with and without the distance constraint.
//!
//! The paper's point: the distance constraint adds a disassortative
//! component by inhibiting small-small links, pulling both spectra toward
//! the real map's hierarchy.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::{ClusteringStats, KnnStats};
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;
use inet_model::stats::binned::binned_mean_log;

/// A spectrum as `(k, value)` points.
type Spectrum = Vec<(f64, f64)>;

fn spectra(g: &Csr) -> (Spectrum, Spectrum) {
    let clustering = ClusteringStats::measure(g);
    let knn = KnnStats::measure(g);
    // Log-bin both spectra over degree for readable output.
    let (ks, cs): (Vec<f64>, Vec<f64>) = (0..g.node_count())
        .filter(|&v| g.degree(v) >= 2)
        .map(|v| (g.degree(v) as f64, clustering.local[v]))
        .unzip();
    let c_spec = binned_mean_log(&ks, &cs, 4);
    let (ks, ys): (Vec<f64>, Vec<f64>) = (0..g.node_count())
        .filter(|&v| g.degree(v) >= 1)
        .map(|v| (g.degree(v) as f64, knn.knn[v] * knn.normalization))
        .unzip();
    let k_spec = binned_mean_log(&ks, &ys, 4);
    (
        c_spec
            .x
            .iter()
            .copied()
            .zip(c_spec.y.iter().copied())
            .collect(),
        k_spec
            .x
            .iter()
            .copied()
            .zip(k_spec.y.iter().copied())
            .collect(),
    )
}

fn print_spectrum(name: &str, series: &[(&str, &Spectrum)]) {
    println!("\n--- {name} ---");
    print!("{:<10}", "k");
    for (label, _) in series {
        print!("{label:>22}");
    }
    println!();
    // Union grid of bin centers (they share binning, so just iterate each).
    for (label, pts) in series {
        let line: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("({x:.1}, {y:.3})"))
            .collect();
        println!("{label:<24} {}", line.join(" "));
    }
}

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size();
    let sink = FigureSink::new("fig3_spectra")?;
    banner("Fig. 3 — c(k) and normalized knn(k) spectra");

    let mut rng = child_rng(BASE_SEED, 40);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let with = ModelVariant::WithDistance.run(size, 41);
    let without = ModelVariant::WithoutDistance.run(size, 42);
    let (with_g, _) = giant_component(&with.network.graph.to_csr());
    let (without_g, _) = giant_component(&without.network.graph.to_csr());

    let (c_ref, k_ref) = spectra(&reference);
    let (c_with, k_with) = spectra(&with_g);
    let (c_without, k_without) = spectra(&without_g);

    print_spectrum(
        "clustering spectrum c(k)",
        &[
            ("AS+ reference", &c_ref),
            ("model with dist", &c_with),
            ("model no dist", &c_without),
        ],
    );
    print_spectrum(
        "normalized knn(k)",
        &[
            ("AS+ reference", &k_ref),
            ("model with dist", &k_with),
            ("model no dist", &k_without),
        ],
    );

    for (name, pts) in [
        ("c_reference", &c_ref),
        ("c_model_dist", &c_with),
        ("c_model_nodist", &c_without),
        ("knn_reference", &k_ref),
        ("knn_model_dist", &k_with),
        ("knn_model_nodist", &k_without),
    ] {
        sink.series(name, "k,value", pts.iter().map(|&(x, y)| vec![x, y]))?;
    }

    // Shape checks.
    let mean_c = |g: &Csr| ClusteringStats::measure(g).mean_local;
    let assort = |g: &Csr| KnnStats::measure(g).assortativity;
    let (c_w, c_wo) = (mean_c(&with_g), mean_c(&without_g));
    println!("\nmean clustering: with dist = {c_w:.3}, without = {c_wo:.3} (AS+: ~0.35)");
    println!(
        "assortativity:   with dist = {:+.3}, without = {:+.3} (AS+: -0.19)",
        assort(&with_g),
        assort(&without_g)
    );
    assert!(c_w > 0.1, "model clustering collapsed");
    assert!(
        assort(&with_g) < -0.05,
        "distance variant must be disassortative"
    );
    // knn(k) of the distance variant must decay: compare low-k vs high-k
    // bins.
    let decay = |pts: &[(f64, f64)]| {
        let lo = pts.iter().take(2).map(|&(_, y)| y).sum::<f64>() / 2.0;
        let hi = pts.iter().rev().take(2).map(|&(_, y)| y).sum::<f64>() / 2.0;
        lo / hi.max(1e-9)
    };
    assert!(
        decay(&k_with) > 1.2,
        "knn(k) of the distance variant must decay"
    );
    println!("\nfig3_spectra: all shape checks passed");
    Ok(())
}
