//! **Fig. 2 (left)** — Distribution of shortest path lengths: the
//! competition–adaptation model (`r = 0.8`, with distance) against the
//! extended AS+ reference map.
//!
//! The headline "small world" check: both distributions must peak at 3–4
//! hops with a mean near 3.6, and the model curve must track the reference
//! within a fraction of a hop.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::PathStats;
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size();
    let sink = FigureSink::new("fig2_paths")?;
    banner("Fig. 2 (left) — shortest path length distribution");

    // Reference map (AS+ substitution) and the model with distance.
    let mut rng = child_rng(BASE_SEED, 20);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let run = ModelVariant::WithDistance.run(size, 21);
    let (model, _) = giant_component(&run.network.graph.to_csr());

    let sources = 400;
    let threads = inet_model::graph::parallel::default_threads();
    let ref_paths = PathStats::measure_sampled(&reference, sources, threads);
    let model_paths = PathStats::measure_sampled(&model, sources, threads);

    println!(
        "\n{:<6} {:>14} {:>14}",
        "l", "AS+ reference", "model (dist)"
    );
    let max_d = ref_paths.counts.len().max(model_paths.counts.len());
    let mut rows = Vec::new();
    for d in 1..max_d {
        let p_ref = *ref_paths.counts.get(d).unwrap_or(&0) as f64
            / ref_paths.counts.iter().sum::<u64>() as f64;
        let p_model = *model_paths.counts.get(d).unwrap_or(&0) as f64
            / model_paths.counts.iter().sum::<u64>() as f64;
        if p_ref > 0.0 || p_model > 0.0 {
            println!("{d:<6} {p_ref:>14.4} {p_model:>14.4}");
            rows.push(vec![d as f64, p_ref, p_model]);
        }
    }
    sink.series("path_length_distribution", "l,p_reference,p_model", rows)?;

    println!(
        "\nmean path length: reference = {:.2}, model = {:.2} (paper AS+: ~3.6)",
        ref_paths.mean, model_paths.mean
    );
    println!(
        "diameter (sampled): reference = {}, model = {}",
        ref_paths.diameter, model_paths.diameter
    );

    // Shape checks.
    assert!(
        ref_paths.mean > 2.0 && ref_paths.mean < 6.0,
        "reference lost the small world"
    );
    assert!(
        model_paths.mean > 2.0 && model_paths.mean < 6.0,
        "model lost the small world"
    );
    assert!(
        (ref_paths.mean - model_paths.mean).abs() < 1.5,
        "model and reference disagree by more than 1.5 hops"
    );
    println!("\nfig2_paths: all shape checks passed");
    Ok(())
}
