//! **Fig. 6** — k-core decomposition of the AS+ reference and the model
//! with and without distance.
//!
//! The original figure is a LANET-VI visualization; its quantitative
//! content is the shell-size profile and the coreness (the maximum shell
//! index), which the paper notes is "almost the same as in the Internet
//! map" for the distance variant. We print the profile table per network.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::KCoreDecomposition;
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size();
    let sink = FigureSink::new("fig6_kcore")?;
    banner("Fig. 6 — k-core decomposition");

    let mut rng = child_rng(BASE_SEED, 80);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let with = ModelVariant::WithDistance.run(size, 81);
    let without = ModelVariant::WithoutDistance.run(size, 82);
    let (with_g, _) = giant_component(&with.network.graph.to_csr());
    let (without_g, _) = giant_component(&without.network.graph.to_csr());

    let mut corenesses = Vec::new();
    for (name, g) in [
        ("AS+ reference", &reference),
        ("model with distance", &with_g),
        ("model without distance", &without_g),
    ] {
        let d = KCoreDecomposition::measure(g);
        println!("\n{name}: coreness = {}", d.coreness());
        println!("{:<6} {:>12} {:>14}", "k", "shell size", "k-core size");
        let profile = d.shell_profile();
        // Print every shell for small corenesses, else a decimated view.
        let step = (profile.len() / 20).max(1);
        for (i, &(k, shell, core)) in profile.iter().enumerate() {
            if i % step == 0 || i + 1 == profile.len() {
                println!("{k:<6} {shell:>12} {core:>14}");
            }
        }
        let tag = name.replace([' ', '+'], "_");
        sink.series(
            &tag,
            "k,shell_size,core_size",
            profile
                .iter()
                .map(|&(k, s, c)| vec![k as f64, s as f64, c as f64]),
        )?;
        corenesses.push((name, d.coreness()));
    }

    println!("\ncoreness summary (paper: model-with-distance ~= Internet's):");
    println!("  {:<26} {}", "AS+ published value", AS_PLUS_2001.coreness);
    for (name, c) in &corenesses {
        println!("  {name:<26} {c}");
    }
    println!(
        "  (note: the Inet-style reference substitution under-builds the \
         innermost core — stub matching\n   lacks the repeated peering that \
         densifies the real top shell — so the published coreness is\n   \
         the comparison target, as in the paper.)"
    );

    // Shape checks: deep hierarchy everywhere; the with-distance coreness
    // within a factor ~2 of the *published* AS+ value (the paper's claim).
    let get = |n: &str| {
        corenesses
            .iter()
            .find(|(name, _)| *name == n)
            .expect("present")
            .1
    };
    let (c_ref, c_with) = (get("AS+ reference"), get("model with distance"));
    assert!(c_ref >= 8, "reference hierarchy too shallow: {c_ref}");
    assert!(c_with >= 8, "model hierarchy too shallow: {c_with}");
    let ratio = c_with as f64 / AS_PLUS_2001.coreness as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "coreness mismatch: model {c_with} vs published {}",
        AS_PLUS_2001.coreness
    );
    println!("\nfig6_kcore: all shape checks passed");
    Ok(())
}
