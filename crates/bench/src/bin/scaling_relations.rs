//! **Extra: size-scaling relations** — Sec. II of the source text derives
//! from the exponential growths the scaling relations with system size:
//!
//! ```text
//! W ∝ N^{α/β}     E ∝ N^{δ/β}     ⟨k⟩ ∝ N^{δ/β − 1}     k_max ∝ N
//! ```
//!
//! This experiment reads the model's own run history across a size sweep
//! and fits all four exponents.

use inet_model::experiment::{banner, FigureSink, ModelVariant};
use inet_model::generators::SerranoParams;
use inet_model::graph::traversal::giant_component;
use inet_model::stats::regression::loglog_fit;

fn main() -> std::io::Result<()> {
    let max_size = inet_bench::target_size();
    let sink = FigureSink::new("scaling_relations")?;
    banner("Extra — size-scaling relations of the growth algebra");

    let p = SerranoParams::paper_2001();
    // delta (edge growth) predicted from the closure; exponents vs N follow.
    let predicted = [
        ("W ~ N^x", p.alpha / p.beta),
        ("E ~ N^x", p.delta() / p.beta),
        ("<k> ~ N^x", p.delta() / p.beta - 1.0),
        ("kmax ~ N^x", 1.0),
    ];

    let sizes = inet_bench::size_ladder(max_size);
    let mut ns = Vec::new();
    let mut users = Vec::new();
    let mut edges = Vec::new();
    let mut mean_k = Vec::new();
    let mut kmax = Vec::new();
    println!(
        "\n{:<8} {:>12} {:>10} {:>8} {:>8}",
        "N", "W", "E", "<k>", "kmax"
    );
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let run = ModelVariant::WithoutDistance.run(n, 160 + i as u64);
        let last = run.history.last().expect("non-empty history");
        let (giant, _) = giant_component(&run.network.graph.to_csr());
        let nn = run.network.graph.node_count() as f64;
        println!(
            "{:<8} {:>12.3e} {:>10} {:>8.2} {:>8}",
            run.network.graph.node_count(),
            last.users,
            last.edges,
            2.0 * last.edges as f64 / nn,
            giant.max_degree()
        );
        ns.push(nn);
        users.push(last.users);
        edges.push(last.edges as f64);
        mean_k.push(2.0 * last.edges as f64 / nn);
        kmax.push(giant.max_degree() as f64);
        rows.push(vec![
            nn,
            last.users,
            last.edges as f64,
            giant.max_degree() as f64,
        ]);
    }
    sink.series("size_sweep", "n,users,edges,kmax", rows)?;

    println!(
        "\n{:<12} {:>10} {:>10}",
        "relation", "predicted", "measured"
    );
    let measured: Vec<f64> = [&users, &edges, &mean_k, &kmax]
        .iter()
        .map(|ys| loglog_fit(&ns, ys).expect("fittable sweep").slope)
        .collect();
    for ((name, pred), got) in predicted.iter().zip(&measured) {
        println!("{name:<12} {pred:>10.3} {got:>10.3}");
    }

    // Shape checks.
    assert!((measured[0] - predicted[0].1).abs() < 0.1, "W scaling off");
    assert!((measured[1] - predicted[1].1).abs() < 0.35, "E scaling off");
    assert!(
        measured[2] > 0.0,
        "the model must densify (<k> grows with N)"
    );
    assert!(
        (measured[3] - 1.0).abs() < 0.35,
        "kmax must scale ~linearly with N, got {}",
        measured[3]
    );
    println!("\nscaling_relations: all shape checks passed");
    Ok(())
}
