//! **Ablation: reinforcement probability `r`** — the paper's discussion of
//! the `r` parameter, quantified.
//!
//! `r` balances connection-setup costs against partner diversification:
//! raising it converts distinct links into parallel-link reinforcement,
//! tuning the average degree and clustering while leaving the degree
//! exponent alone — except toward `r → 1`, where big peers burn their
//! bandwidth on each other and the maximum degree collapses.

use inet_model::experiment::{banner, FigureSink, BASE_SEED};
use inet_model::generators::{SerranoModel, SerranoParams};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::ClusteringStats;
use inet_model::prelude::*;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size().min(6000);
    let sink = FigureSink::new("ablation_r")?;
    banner("Ablation — reinforcement probability r");

    println!(
        "\n{:<6} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "r", "<k>", "mult", "kmax", "clust", "gamma", "giant"
    );
    let mut rows = Vec::new();
    let mut results: Vec<(f64, f64, f64, usize)> = Vec::new();
    for (i, r) in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95].into_iter().enumerate() {
        let mut params = SerranoParams::small(size);
        params.distance = None;
        params.r = r;
        let run = SerranoModel::new(params).run(&mut child_rng(BASE_SEED, 130 + i as u64));
        let g = &run.network.graph;
        let csr = g.to_csr();
        let (giant, _) = giant_component(&csr);
        let mult = g.total_weight() as f64 / g.edge_count().max(1) as f64;
        let clust = ClusteringStats::measure(&giant).mean_local;
        let degrees: Vec<u64> = giant.degrees().iter().map(|&d| d as u64).collect();
        let gamma = inet_model::stats::powerlaw::fit_discrete(&degrees, 6)
            .map(|f| f.gamma)
            .unwrap_or(f64::NAN);
        let kmax = giant.max_degree();
        let giant_frac = giant.node_count() as f64 / csr.node_count() as f64;
        println!(
            "{r:<6} {:>8.2} {mult:>8.2} {kmax:>10} {clust:>8.3} {gamma:>8.2} {giant_frac:>8.2}",
            giant.mean_degree()
        );
        rows.push(vec![
            r,
            giant.mean_degree(),
            mult,
            kmax as f64,
            clust,
            gamma,
            giant_frac,
        ]);
        results.push((r, giant.mean_degree(), mult, kmax));
    }
    sink.series(
        "r_sweep",
        "r,mean_degree,multiplicity,kmax,clustering,gamma,giant",
        rows.clone(),
    )?;

    // Shape checks from the paper's discussion:
    // (a) multiplicity rises monotonically with r;
    let first_mult = results.first().expect("rows").2;
    let last_mult = results.last().expect("rows").2;
    assert!(
        last_mult > first_mult + 0.03,
        "multiplicity must rise with r ({first_mult} -> {last_mult})"
    );
    // (b) clustering falls with r: reinforcement soaks bandwidth into
    //     existing pairs instead of closing new triangles;
    let first_c = rows.first().expect("rows")[4];
    let last_c = rows.last().expect("rows")[4];
    assert!(
        last_c < 0.8 * first_c,
        "clustering must fall with r ({first_c} -> {last_c})"
    );
    // (c) r -> 1 shrinks the maximum degree (the paper's limiting-case
    //     remark: big peers burn bandwidth on multiple connections).
    let kmax_mid = results
        .iter()
        .find(|&&(r, ..)| r == 0.4)
        .expect("mid row")
        .3;
    let kmax_hi = results.last().expect("rows").3;
    assert!(
        (kmax_hi as f64) < kmax_mid as f64,
        "r -> 1 must shrink kmax ({kmax_mid} -> {kmax_hi})"
    );
    println!("\nablation_r: all shape checks passed");
    Ok(())
}
