//! **Fig. 2 (right + inset)** — Cumulative degree distribution `P_c(k)` of
//! the model vs. the AS+ reference, and the inset: degree as a function of
//! bandwidth confirming the scaling ansatz `k = b^μ` with
//! `μ = β/δ′ = 0.75`.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::traversal::giant_component;
use inet_model::metrics::{weighted, DegreeStats};
use inet_model::prelude::*;
use inet_model::reference::AS_PLUS_2001;

fn main() -> std::io::Result<()> {
    let size = inet_bench::target_size();
    let sink = FigureSink::new("fig2_degree")?;
    banner("Fig. 2 (right) — cumulative degree distribution P_c(k)");

    let mut rng = child_rng(BASE_SEED, 30);
    let reference = inet_model::reference::build_reference_csr(&AS_PLUS_2001, &mut rng);
    let run = ModelVariant::WithDistance.run(size, 31);
    let (model, _) = giant_component(&run.network.graph.to_csr());

    let ref_ccdf = DegreeStats::measure(&reference).ccdf();
    let model_ccdf = DegreeStats::measure(&model).ccdf();

    // Print on a sparse logarithmic grid.
    println!("\n{:<8} {:>14} {:>14}", "k", "AS+ P_c(k)", "model P_c(k)");
    let mut rows = Vec::new();
    let mut k = 1.0f64;
    while k
        <= ref_ccdf
            .max()
            .unwrap_or(1.0)
            .max(model_ccdf.max().unwrap_or(1.0))
    {
        let pr = ref_ccdf.at(k);
        let pm = model_ccdf.at(k);
        println!("{:<8.0} {:>14.6} {:>14.6}", k, pr, pm);
        rows.push(vec![k, pr, pm]);
        k = (k * 1.6).ceil();
    }
    sink.series("degree_ccdf", "k,ccdf_reference,ccdf_model", rows)?;

    // Tail exponents on a fixed fitting window (the CCDF mid-range).
    let fit_gamma = |g: &Csr| {
        let degrees: Vec<u64> = g.degrees().iter().map(|&d| d as u64).collect();
        inet_model::stats::powerlaw::fit_discrete(&degrees, 6).expect("fittable tail")
    };
    let gr = fit_gamma(&reference);
    let gm = fit_gamma(&model);
    println!("\ngamma (k >= 6): reference = {:.2} +- {:.2}, model = {:.2} +- {:.2}  (paper: 2.2 +- 0.1; model prediction 2.14)",
        gr.gamma, gr.gamma_se, gm.gamma, gm.gamma_se);

    banner("Fig. 2 (inset) — degree vs bandwidth, k = b^mu");
    let spectrum = weighted::degree_vs_strength(&model, 4);
    println!("\n{:<12} {:>12}", "b (binned)", "mean k");
    let mut rows = Vec::new();
    for (b, kmean, _) in spectrum.points() {
        println!("{b:<12.1} {kmean:>12.2}");
        rows.push(vec![b, kmean]);
    }
    sink.series("degree_vs_bandwidth", "b,mean_k", rows)?;

    let mu = weighted::fit_mu(&model, 4).expect("mu fittable");
    println!(
        "\nmu fit: {:.3} +- {:.3}  (prediction beta/delta' = 0.75)",
        mu.slope, mu.slope_se
    );

    // Shape checks.
    assert!(
        (gm.gamma - 2.2).abs() < 0.45,
        "model gamma {} left the band",
        gm.gamma
    );
    assert!(
        (gr.gamma - 2.25).abs() < 0.35,
        "reference gamma {} left the band",
        gr.gamma
    );
    assert!(mu.slope < 1.0, "mu must be sublinear (multi-connections)");
    assert!(
        (mu.slope - 0.75).abs() < 0.2,
        "mu {} too far from 0.75",
        mu.slope
    );
    println!("\nfig2_degree: all shape checks passed");
    Ok(())
}
