//! **Fig. 7** (extension) — resilience of the competition–adaptation model
//! vs the standard generators under random failure and targeted attack.
//!
//! The robustness literature (Albert–Jeong–Barabási; Zhou & Mondragón's
//! model comparisons) shows that matching degree statistics does not imply
//! matching attack response, so this figure overlays, for serrano vs
//! ba/glp/pfp/waxman at the same size:
//!
//! * **failure** — uniform-random removal, averaged over replicas;
//! * **attack** — adaptive highest-degree removal (`degree-recalc`);
//!
//! and reports each model's critical fraction `f_c` (smallest removal
//! fraction at which the giant component falls below `⌈√N⌉`). The expected
//! signature: heavy-tailed topologies survive failure to large `f` but
//! collapse under attack at small `f_c`, while the homogeneous Waxman graph
//! shows a much smaller gap. Curves land in
//! `target/figures/fig7_resilience/` as CSV.

use inet_model::experiment::{banner, FigureSink, ModelVariant, BASE_SEED};
use inet_model::graph::parallel::default_threads;
use inet_model::prelude::*;

/// Replicas for the stochastic (failure) arm.
const REPLICAS: usize = 4;

fn main() -> std::io::Result<()> {
    // Attack sweeps run every strategy over every replica; a quarter of the
    // headline measurement size keeps the default run under a minute.
    let size = inet_bench::target_size() / 4;
    let sink = FigureSink::new("fig7_resilience")?;
    banner("Fig. 7 — failure vs attack response, serrano vs standard models");

    let serrano = ModelVariant::WithDistance.run(size, 90).network;
    let models: Vec<(&str, Csr)> = vec![
        ("serrano", serrano.graph.to_csr()),
        (
            "ba",
            BarabasiAlbert::new(size, 2)
                .generate(&mut child_rng(BASE_SEED, 91))
                .graph
                .to_csr(),
        ),
        (
            "glp",
            Glp::internet_2001(size)
                .generate(&mut child_rng(BASE_SEED, 92))
                .graph
                .to_csr(),
        ),
        (
            "pfp",
            Pfp::internet(size)
                .generate(&mut child_rng(BASE_SEED, 93))
                .graph
                .to_csr(),
        ),
        (
            "waxman",
            Waxman::with_mean_degree(size, 0.2, 4.2)
                .generate(&mut child_rng(BASE_SEED, 94))
                .graph
                .to_csr(),
        ),
    ];

    println!(
        "\n{:<10} {:>7} {:>8}   {:>12} {:>12} {:>8}",
        "model", "nodes", "edges", "f_c failure", "f_c attack", "gap"
    );
    let mut gaps: Vec<(&str, f64, f64)> = Vec::new();
    for (name, g) in &models {
        let cfg = SweepConfig {
            strategies: vec![Strategy::Random, Strategy::Degree { recalc: true }],
            replicas: REPLICAS,
            base_seed: BASE_SEED ^ 0x7e51,
            threads: default_threads(),
            record_every: (g.node_count() / 200).max(1),
            ..SweepConfig::default()
        };
        let result = run_sweep(g, &cfg).expect("sweep configuration is valid");
        assert!(
            result.failures.is_empty(),
            "{name}: unexpected worker failures: {:?}",
            result.failures
        );

        // Average the failure replicas; the attack arm is deterministic.
        let failure_curves: Vec<&AttackCurve> = result
            .cells
            .iter()
            .filter(|c| c.strategy == "random")
            .map(|c| &c.curve)
            .collect();
        let attack = &result
            .cells
            .iter()
            .find(|c| c.strategy == "degree-recalc")
            .expect("attack cell present")
            .curve;
        let fc_failure = failure_curves
            .iter()
            .map(|c| c.critical_fraction)
            .sum::<f64>()
            / failure_curves.len() as f64;
        let fc_attack = attack.critical_fraction;
        println!(
            "{:<10} {:>7} {:>8}   {:>12.4} {:>12.4} {:>8.2}x",
            name,
            g.node_count(),
            g.edge_count(),
            fc_failure,
            fc_attack,
            fc_failure / fc_attack.max(1e-9)
        );
        gaps.push((name, fc_failure, fc_attack));

        // Overlay series: mean failure S(f) (replicas share the recording
        // grid, so pointwise averaging is exact) and the attack S(f).
        let n = g.node_count() as f64;
        let mean_failure = failure_curves[0].points.iter().enumerate().map(|(i, p)| {
            let s = failure_curves
                .iter()
                .map(|c| c.points[i].giant as f64 / n)
                .sum::<f64>()
                / failure_curves.len() as f64;
            vec![p.removed as f64 / n, s]
        });
        sink.series(&format!("{name}_failure"), "f,giant_fraction", mean_failure)?;
        sink.series(
            &format!("{name}_attack"),
            "f,giant_fraction,mean_component",
            attack
                .points
                .iter()
                .map(|p| vec![p.removed as f64 / n, p.giant as f64 / n, p.mean_component]),
        )?;
    }

    // Shape checks — the figure's claim, not exact numbers:
    // every heavy-tailed model is far more fragile to attack than failure.
    for (name, fc_failure, fc_attack) in &gaps {
        if *name != "waxman" {
            assert!(
                *fc_attack < *fc_failure,
                "{name}: attack must beat failure ({fc_attack} vs {fc_failure})"
            );
        }
    }
    // And the attack fragility gap is much wider for the heavy-tailed
    // models than for the homogeneous Waxman graph.
    let ratio = |t: &(&str, f64, f64)| t.1 / t.2.max(1e-9);
    let waxman = gaps.iter().find(|t| t.0 == "waxman").expect("present");
    for heavy in ["serrano", "ba", "pfp"] {
        let m = gaps.iter().find(|t| t.0 == heavy).expect("present");
        assert!(
            ratio(m) > ratio(waxman),
            "{heavy}: failure/attack gap {:.2} should exceed waxman's {:.2}",
            ratio(m),
            ratio(waxman)
        );
    }
    println!("\nfig7_resilience: all shape checks passed");
    Ok(())
}
