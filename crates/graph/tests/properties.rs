//! Property-based tests for the graph substrate.

use inet_graph::{traversal, Csr, MultiGraph, NodeId};
use proptest::prelude::*;

/// Strategy: a random edge set over `n` nodes (possibly with duplicates,
/// never self-loops), n in 2..40.
fn edge_set() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge =
            (0..n, 0..n).prop_filter_map(
                "no self-loops",
                |(u, v)| {
                    if u == v {
                        None
                    } else {
                        Some((u, v))
                    }
                },
            );
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    /// Sum of degrees equals twice the edge count; sum of strengths equals
    /// twice the total weight.
    #[test]
    fn handshake_lemma((n, edges) in edge_set()) {
        let g = MultiGraph::from_edges(n, edges).unwrap();
        let deg_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(deg_sum, 2 * g.edge_count());
        let strength_sum: u64 = g.strengths().iter().sum();
        prop_assert_eq!(strength_sum, 2 * g.total_weight());
        prop_assert!(g.validate().is_ok());
    }

    /// CSR snapshot and the multigraph agree on every query; round-trip is
    /// lossless.
    #[test]
    fn csr_round_trip((n, edges) in edge_set()) {
        let g = MultiGraph::from_edges(n, edges).unwrap();
        let csr = g.to_csr();
        prop_assert!(csr.validate());
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.total_weight(), g.total_weight());
        for v in 0..n {
            prop_assert_eq!(csr.degree(v), g.degree(NodeId::new(v)));
            prop_assert_eq!(csr.strength(v), g.strength(NodeId::new(v)));
            for u in 0..n {
                prop_assert_eq!(
                    csr.edge_weight(v, u),
                    g.weight(NodeId::new(v), NodeId::new(u))
                );
            }
        }
        prop_assert_eq!(csr.to_multigraph(), g);
    }

    /// Edge-list serialization round-trips exactly (non-empty graphs keep
    /// their trailing isolated nodes only if they carry edges; we compare on
    /// a graph whose last node is guaranteed to touch an edge).
    #[test]
    fn io_round_trip((n, mut edges) in edge_set()) {
        // Anchor the max node so the parsed node count matches.
        edges.push((0, n - 1));
        let g = MultiGraph::from_edges(n, edges).unwrap();
        let mut buf = Vec::new();
        inet_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let parsed = inet_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(u) - d(v)| <= 1 for every edge (u, v), and d is 0 only at source.
    #[test]
    fn bfs_distance_is_lipschitz_on_edges((n, edges) in edge_set()) {
        let csr = Csr::from_edges(n, &edges);
        let dist = traversal::bfs_distances(&csr, 0);
        prop_assert_eq!(dist[0], 0);
        for (u, v, _) in csr.edges() {
            let du = dist[u];
            let dv = dist[v];
            if du != traversal::UNREACHABLE || dv != traversal::UNREACHABLE {
                prop_assert!(du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE,
                    "an edge cannot cross the reachable boundary");
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if v != 0 {
                prop_assert!(d != 0);
            }
        }
    }

    /// Component labels partition the nodes: every edge stays within one
    /// component, sizes sum to N, and the giant component is the biggest.
    #[test]
    fn components_partition((n, edges) in edge_set()) {
        let csr = Csr::from_edges(n, &edges);
        let comps = traversal::connected_components(&csr);
        prop_assert_eq!(comps.labels.len(), n);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), n);
        for (u, v, _) in csr.edges() {
            prop_assert_eq!(comps.labels[u], comps.labels[v]);
        }
        let (giant, map) = traversal::giant_component(&csr);
        prop_assert!(giant.validate());
        let giant_label = comps.giant_label().unwrap();
        prop_assert_eq!(giant.node_count(), comps.sizes[giant_label as usize]);
        for (new, &old) in map.iter().enumerate() {
            prop_assert_eq!(giant.degree(new), csr.degree(old));
        }
    }

    /// The edge-list reader is total over arbitrary (including malformed
    /// and adversarial) input lines: every line shape either parses or
    /// returns a structured error — never a panic, and never an attempted
    /// giant allocation from an oversized id.
    #[test]
    fn reader_is_total_on_arbitrary_lines(
        lines in collection::vec((0u64..u64::MAX, 0u64..u64::MAX, 0u8..8), 0..24)
    ) {
        let text = lines
            .iter()
            .map(|&(u, v, shape)| match shape {
                0 => format!("{u} {v}"),
                1 => format!("{u} {v} {}", v.wrapping_add(1)),
                2 => format!("{u}"),
                3 => format!("x{u} {v}"),
                4 => format!("# nodes {u}"),
                5 => format!("{u} {v} 0"),
                6 => format!("{u} {v} {v} {u}"),
                _ => format!("   # junk {u}"),
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Must return (Ok or Err) promptly; a parsed graph respects the cap.
        if let Ok(g) = inet_graph::io::read_edge_list(text.as_bytes()) {
            prop_assert!(g.node_count() <= inet_graph::io::MAX_NODES);
        }
    }

    /// Any node id at or above the cap is rejected with a parse error that
    /// names the offending line.
    #[test]
    fn oversized_ids_always_error(
        small in 0u64..1000,
        huge in (inet_graph::io::MAX_NODES as u64)..u64::MAX,
        flip in 0u8..2,
    ) {
        let line = if flip == 0 {
            format!("{small} {huge}")
        } else {
            format!("{huge} {small}")
        };
        let err = inet_graph::io::read_edge_list(line.as_bytes()).unwrap_err();
        prop_assert!(err.to_string().contains("exceeds"), "{}", err);
    }

    /// Removing an edge then re-adding it with the same weight restores the
    /// exact graph.
    #[test]
    fn remove_then_readd_is_identity((n, mut edges) in edge_set()) {
        edges.push((0, 1)); // guarantee at least one edge
        let g0 = MultiGraph::from_edges(n, edges).unwrap();
        let mut g = g0.clone();
        let (u, v, w) = g0.edges().next().unwrap();
        let removed = g.remove_edge(u, v).unwrap();
        prop_assert_eq!(removed, w);
        g.add_edge_weighted(u, v, w).unwrap();
        prop_assert_eq!(g, g0);
    }
}
