//! Strongly-typed node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (an Autonomous System in Internet terms).
///
/// Node ids are dense: the `i`-th node added to a [`crate::MultiGraph`]
/// receives id `i`. The newtype prevents accidentally mixing node ids with
/// other integer quantities (degrees, counts, months, ...). Stored as `u32`:
/// Internet AS maps are well below four billion nodes, and halving the index
/// width matters for CSR memory traffic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs that large are outside
    /// this crate's design envelope).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Creates a node id from a raw `u32` index.
    #[inline]
    pub const fn from_u32(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index as `usize` (for indexing node-attribute vectors).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_between_usize_and_u32() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(NodeId::from_u32(42), id);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn debug_and_display_format() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn new_panics_on_overflow() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
