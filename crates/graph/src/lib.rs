//! # inet-graph — graph substrate for Internet topology modeling
//!
//! A from-scratch, dependency-light graph library tailored to the needs of
//! AS-level Internet topology generation and measurement:
//!
//! * [`MultiGraph`] — a mutable, undirected, **weighted multigraph**. Parallel
//!   edges between the same pair of nodes are stored as an integer
//!   multiplicity, which matches the "bandwidth as discretized multiple
//!   connections" view used by weighted Internet growth models: reinforcing an
//!   existing link is an `O(log d)` multiplicity bump, not a new edge record.
//! * [`Csr`] — an immutable compressed-sparse-row snapshot with sorted
//!   neighbor lists. All measurement code (clustering, cores, betweenness,
//!   cycle census, ...) runs on `Csr`: neighbor scans are cache-friendly slices
//!   and `has_edge` is a binary search.
//! * [`traversal`] — BFS distances, connected components, giant-component
//!   extraction.
//! * [`parallel`] — dependency-free deterministic work-stealing fan-out used
//!   by every threaded metrics kernel; results are bit-identical for any
//!   thread count. Owned by `inet-exec` since the execution-substrate
//!   extraction; re-exported here so graph-level callers keep their paths.
//! * [`cancel`] — cooperative cancellation tokens polled at batch
//!   boundaries by the pool, sweep cells, and metric kernels (also owned by
//!   `inet-exec`, re-exported).
//! * [`io`] — plain-text weighted edge-list reading/writing, so topologies can
//!   be exchanged with external tools.
//!
//! Design rules (shared by the whole workspace):
//!
//! * **Determinism.** Iteration order over nodes and neighbors is fully
//!   deterministic (sorted), so a fixed RNG seed reproduces a topology and all
//!   derived measures bit-for-bit.
//! * **No panics in library paths.** Fallible operations return
//!   [`GraphError`]; indexing helpers document their preconditions.
//! * **Self-loops are rejected.** AS-level maps have none, and silently
//!   accepting them would corrupt degree-based measures.
//!
//! ## Quick example
//!
//! ```
//! use inet_graph::{MultiGraph, NodeId};
//!
//! let mut g = MultiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! g.add_edge(a, b).unwrap();
//! g.add_edge(b, c).unwrap();
//! g.add_edge(a, b).unwrap(); // reinforce: multiplicity 2, still one edge
//!
//! assert_eq!(g.edge_count(), 2);
//! assert_eq!(g.total_weight(), 3);
//! assert_eq!(g.strength(a), 2); // weighted degree ("bandwidth")
//! assert_eq!(g.degree(a), 1);   // topological degree
//!
//! let csr = g.to_csr();
//! assert_eq!(csr.neighbors(b.index()), &[a.index() as u32, c.index() as u32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod ids;
mod multigraph;

pub use inet_exec::cancel;
pub use inet_exec::parallel;

pub mod io;
pub mod traversal;

pub use cancel::{CancelToken, Cancelled};
pub use csr::Csr;
pub use error::GraphError;
pub use ids::NodeId;
pub use multigraph::{EdgeUpdate, MultiGraph};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
