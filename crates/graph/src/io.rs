//! Plain-text weighted edge-list I/O.
//!
//! Format, one edge per line:
//!
//! ```text
//! # comment lines start with '#'
//! <u> <v> [weight]
//! ```
//!
//! Node ids are dense non-negative integers; the node count of the parsed
//! graph is `max id + 1` (or an explicit count passed by the caller). A
//! missing weight field means weight 1. This matches the format used by the
//! classic topology-analysis toolchains, so generated maps can be fed to
//! external software and vice versa.

use crate::{GraphError, MultiGraph, NodeId, Result};
use std::io::{BufRead, Write};

/// Upper bound on node ids (and declared node counts) accepted by
/// [`read_edge_list`]. Parsed graphs use dense id-indexed storage, so a
/// single typo'd id like `4000000000` would otherwise trigger a multi-GB
/// allocation; beyond this cap parsing fails with a structured
/// [`GraphError::Parse`] instead. 50 M nodes is ~500× the 2025 AS-level
/// Internet.
pub const MAX_NODES: usize = 50_000_000;

/// Writes `g` as a weighted edge list (one `u v w` line per distinct edge).
pub fn write_edge_list<W: Write>(g: &MultiGraph, mut out: W) -> Result<()> {
    inet_fault::check_contained("io.write", 0).map_err(|e| GraphError::Io(e.to_string()))?;
    writeln!(
        out,
        "# nodes {} edges {} weight {}",
        g.node_count(),
        g.edge_count(),
        g.total_weight()
    )?;
    for (u, v, w) in g.edges() {
        writeln!(out, "{} {} {}", u.index(), v.index(), w)?;
    }
    Ok(())
}

/// Reads a weighted edge list into a [`MultiGraph`].
///
/// * Lines starting with `#` and blank lines are skipped — except that a
///   header of the form `# nodes <N> ...` (as written by
///   [`write_edge_list`]) fixes the node count, so trailing isolated nodes
///   survive a round trip.
/// * Each data line is `u v` or `u v w` (whitespace separated).
/// * Duplicate pairs accumulate weight.
/// * Without a header, the resulting node count is `max id + 1`.
pub fn read_edge_list<R: BufRead>(input: R) -> Result<MultiGraph> {
    inet_fault::check_contained("io.read", 0).map_err(|e| GraphError::Io(e.to_string()))?;
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    let mut max_node = 0usize;
    let mut declared_nodes: Option<usize> = None;
    for (line_no, line) in input.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if declared_nodes.is_none() {
                let mut parts = trimmed.trim_start_matches('#').split_whitespace();
                if parts.next() == Some("nodes") {
                    if let Some(count) = parts.next().and_then(|tok| tok.parse::<u64>().ok()) {
                        if count > MAX_NODES as u64 {
                            return Err(GraphError::Parse {
                                line: line_no,
                                message: format!(
                                    "declared node count {count} exceeds the supported \
                                     maximum {MAX_NODES}"
                                ),
                            });
                        }
                        declared_nodes = Some(count as usize);
                    }
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_field = |tok: Option<&str>, what: &str, line_no: usize| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: format!("missing {what} field"),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid {what} '{tok}'"),
            })
        };
        let check_id = |id: u64, what: &str, line_no: usize| -> Result<usize> {
            if id >= MAX_NODES as u64 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!(
                        "{what} id {id} exceeds the supported maximum {}",
                        MAX_NODES - 1
                    ),
                });
            }
            Ok(id as usize)
        };
        let u = check_id(
            parse_field(parts.next(), "source", line_no)?,
            "source",
            line_no,
        )?;
        let v = check_id(
            parse_field(parts.next(), "target", line_no)?,
            "target",
            line_no,
        )?;
        let w = match parts.next() {
            Some(tok) => tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid weight '{tok}'"),
            })?,
            None => 1,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "too many fields (expected 'u v [w]')".to_string(),
            });
        }
        if w == 0 {
            return Err(GraphError::Parse {
                line: line_no,
                message: "zero edge weight".to_string(),
            });
        }
        max_node = max_node.max(u).max(v);
        edges.push((u, v, w));
    }
    let mut g = MultiGraph::new();
    let implied = if edges.is_empty() { 0 } else { max_node + 1 };
    g.add_nodes(declared_nodes.unwrap_or(implied).max(implied));
    for (u, v, w) in edges {
        g.add_edge_weighted(NodeId::new(u), NodeId::new(v), w)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiGraph {
        let mut g = MultiGraph::new();
        g.add_nodes(4);
        let n = NodeId::new;
        g.add_edge_weighted(n(0), n(1), 2).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn header_comment_is_written() {
        let mut buf = Vec::new();
        write_edge_list(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# nodes 4 edges 3 weight 4"));
    }

    #[test]
    fn parses_unweighted_lines_and_comments() {
        let input = "# a comment\n\n0 1\n1 2 5\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.weight(NodeId::new(0), NodeId::new(1)), 1);
        assert_eq!(g.weight(NodeId::new(1), NodeId::new(2)), 5);
    }

    #[test]
    fn duplicate_pairs_accumulate() {
        let g = read_edge_list("0 1 2\n1 0 3\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(NodeId::new(0), NodeId::new(1)), 5);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (input, needle) in [
            ("0\n", "missing target"),
            ("a 1\n", "invalid source"),
            ("0 b\n", "invalid target"),
            ("0 1 x\n", "invalid weight"),
            ("0 1 1 9\n", "too many fields"),
            ("0 1 0\n", "zero edge weight"),
            ("0 0\n", "self-loop"),
        ] {
            let err = read_edge_list(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn huge_node_ids_are_rejected_without_allocating() {
        // The motivating case: a typo'd id must be a one-line parse error,
        // not an attempted 4-billion-node allocation.
        let err = read_edge_list("0 4000000000\n".as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the supported maximum"),
            "{err}"
        );
        let err = read_edge_list("18446744073709551615 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // The boundary itself: MAX_NODES - 1 is the largest legal id.
        assert!(read_edge_list(format!("0 {}\n", MAX_NODES).as_bytes()).is_err());
    }

    #[test]
    fn huge_declared_node_count_is_rejected() {
        let err = read_edge_list("# nodes 4000000000\n0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared node count"), "{err}");
    }

    #[test]
    fn header_preserves_trailing_isolated_nodes() {
        let mut g = sample();
        g.add_nodes(3); // isolated tail
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.node_count(), 7);
        assert_eq!(parsed, g);
    }

    #[test]
    fn explicit_nodes_header_is_honored() {
        let g = read_edge_list("# nodes 9\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 9);
        // A lying header never truncates actual edges.
        let g = read_edge_list("# nodes 1\n0 5\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 6);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert!(g.is_empty());
        let g = read_edge_list("# only comments\n".as_bytes()).unwrap();
        assert!(g.is_empty());
    }
}
