//! Breadth-first traversal, connected components, giant component.

use crate::Csr;
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Unweighted shortest-path distances from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`]. `O(N + E)`.
///
/// # Panics
///
/// Panics if `source >= g.node_count()`.
pub fn bfs_distances(g: &Csr, source: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    bfs_distances_into(g, source, &mut dist);
    dist
}

/// Like [`bfs_distances`], but reuses a caller-provided buffer (resized and
/// reset internally). Useful in all-sources loops to avoid reallocation.
pub fn bfs_distances_into(g: &Csr, source: usize, dist: &mut Vec<u32>) {
    dist.clear();
    dist.resize(g.node_count(), UNREACHABLE);
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize] + 1;
        for &u in g.neighbors(v as usize) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = d;
                queue.push_back(u);
            }
        }
    }
}

/// Result of [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per node, in `0..count`. Labels are assigned in order
    /// of the smallest node index in each component (deterministic).
    pub labels: Vec<u32>,
    /// Size of each component, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Label of the largest component (ties broken by smallest label).
    /// `None` for an empty graph.
    pub fn giant_label(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }

    /// `true` when the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.sizes.len() == 1
    }
}

/// Labels connected components by BFS. `O(N + E)`.
pub fn connected_components(g: &Csr) -> Components {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let label = sizes.len() as u32;
        let mut size = 0usize;
        labels[start] = label;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in g.neighbors(v as usize) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = label;
                    queue.push_back(u);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Extracts the largest connected component as its own graph.
///
/// Returns the component plus the mapping `new index -> old index`.
/// For an empty graph returns an empty graph and mapping.
pub fn giant_component(g: &Csr) -> (Csr, Vec<usize>) {
    let comps = connected_components(g);
    match comps.giant_label() {
        None => (Csr::from_edges(0, &[]), Vec::new()),
        Some(giant) => {
            let keep: Vec<bool> = comps.labels.iter().map(|&l| l == giant).collect();
            g.induced_subgraph(&keep)
        }
    }
}

/// Fraction of nodes inside the largest connected component; 0 for empty.
pub fn giant_fraction(g: &Csr) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let comps = connected_components(g);
    let giant = comps
        .giant_label()
        .expect("non-empty graph has a component");
    comps.sizes[giant as usize] as f64 / g.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two components: a 4-path (0-1-2-3) and a 2-clique (4-5), plus isolate 6.
    fn sample() -> Csr {
        Csr::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = sample();
        let d = bfs_distances(&g, 0);
        assert_eq!(&d[..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], UNREACHABLE);
        assert_eq!(d[6], UNREACHABLE);
    }

    #[test]
    fn bfs_into_reuses_buffer() {
        let g = sample();
        let mut buf = vec![7u32; 1];
        bfs_distances_into(&g, 3, &mut buf);
        assert_eq!(buf.len(), 7);
        assert_eq!(buf[0], 3);
        bfs_distances_into(&g, 4, &mut buf);
        assert_eq!(buf[5], 1);
        assert_eq!(buf[0], UNREACHABLE);
    }

    #[test]
    fn components_are_labeled_deterministically() {
        let g = sample();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.labels, vec![0, 0, 0, 0, 1, 1, 2]);
        assert_eq!(c.sizes, vec![4, 2, 1]);
        assert_eq!(c.giant_label(), Some(0));
        assert!(!c.is_connected());
    }

    #[test]
    fn giant_component_extraction() {
        let g = sample();
        let (giant, map) = giant_component(&g);
        assert_eq!(giant.node_count(), 4);
        assert_eq!(giant.edge_count(), 3);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert!((giant_fraction(&g) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn giant_of_tie_prefers_smallest_label() {
        // Two components of equal size 2.
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.giant_label(), Some(0));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Csr::from_edges(0, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.giant_label(), None);
        assert_eq!(giant_fraction(&g), 0.0);
        let (giant, map) = giant_component(&g);
        assert_eq!(giant.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn connected_graph_is_one_component() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let c = connected_components(&g);
        assert!(c.is_connected());
        assert!((giant_fraction(&g) - 1.0).abs() < 1e-12);
    }
}
