//! Immutable compressed-sparse-row snapshot.

use crate::{MultiGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Immutable undirected graph in compressed-sparse-row form.
///
/// Each undirected edge is stored twice (once per direction). Neighbor lists
/// are sorted ascending, so membership tests are `O(log d)` binary searches
/// and set intersections (triangle counting) are linear merges.
///
/// `Csr` keeps the multigraph's weights but exposes the *simple* topology:
/// `degree` counts distinct neighbors, which is the quantity all standard
/// Internet-topology measures are defined on. Weighted measures read the
/// parallel `weights` array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`weights` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<u32>,
    /// Weight of the edge to the corresponding target.
    weights: Vec<u64>,
    /// Number of distinct undirected edges.
    edge_count: usize,
    /// Sum of weights over distinct undirected edges.
    total_weight: u64,
}

impl Csr {
    /// Builds a snapshot from a [`MultiGraph`].
    pub fn from_multigraph(g: &MultiGraph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        let mut weights = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for v in 0..n {
            for (u, w) in g.neighbors(NodeId::new(v)) {
                targets.push(u.as_u32());
                weights.push(w);
            }
            offsets.push(targets.len());
        }
        Csr {
            offsets,
            targets,
            weights,
            edge_count: g.edge_count(),
            total_weight: g.total_weight(),
        }
    }

    /// Builds a snapshot directly from unit-weight undirected edges over
    /// `nodes` nodes. Duplicate pairs accumulate weight; self-loops are
    /// skipped (callers that must *detect* them should use [`MultiGraph`]).
    pub fn from_edges(nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = MultiGraph::with_capacity(nodes);
        g.add_nodes(nodes);
        for &(u, v) in edges {
            if u != v && u < nodes && v < nodes {
                let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        g.to_csr()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of weights over distinct undirected edges (total bandwidth `B`).
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Sorted slice of distinct neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights parallel to [`Csr::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: usize) -> &[u64] {
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Topological degree of `v` (distinct neighbors).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Strength of `v`: sum of incident edge weights.
    #[inline]
    pub fn strength(&self, v: usize) -> u64 {
        self.neighbor_weights(v).iter().sum()
    }

    /// `true` when `u` and `v` are adjacent. `O(log d_u)`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Weight of edge `(u, v)`; 0 when absent.
    #[inline]
    pub fn edge_weight(&self, u: usize, v: usize) -> u64 {
        match self.neighbors(u).binary_search(&(v as u32)) {
            Ok(i) => self.neighbor_weights(u)[i],
            Err(_) => 0,
        }
    }

    /// Degree sequence indexed by node.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|v| self.degree(v)).collect()
    }

    /// Strength sequence indexed by node.
    pub fn strengths(&self) -> Vec<u64> {
        (0..self.node_count()).map(|v| self.strength(v)).collect()
    }

    /// Largest degree in the graph; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2E / N`; 0 for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / n as f64
        }
    }

    /// Iterates over distinct undirected edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .filter(move |(&t, _)| (t as usize) > u)
                .map(move |(&t, &w)| (u, t as usize, w))
        })
    }

    /// Rebuilds a mutable [`MultiGraph`] with identical topology and weights.
    pub fn to_multigraph(&self) -> MultiGraph {
        let mut g = MultiGraph::with_capacity(self.node_count());
        g.add_nodes(self.node_count());
        for (u, v, w) in self.edges() {
            g.add_edge_weighted(NodeId::new(u), NodeId::new(v), w)
                .expect("CSR edges are valid by construction");
        }
        g
    }

    /// Extracts the subgraph induced by the nodes where `keep[v]` is true.
    ///
    /// Returns the subgraph plus the mapping `new index -> old index`.
    /// Weights are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Csr, Vec<usize>) {
        assert_eq!(keep.len(), self.node_count(), "keep mask length mismatch");
        let mut old_to_new = vec![u32::MAX; self.node_count()];
        let mut new_to_old = Vec::new();
        for (old, &k) in keep.iter().enumerate() {
            if k {
                old_to_new[old] = new_to_old.len() as u32;
                new_to_old.push(old);
            }
        }
        let mut offsets = Vec::with_capacity(new_to_old.len() + 1);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut edge_count = 0usize;
        let mut total_weight = 0u64;
        offsets.push(0);
        for &old in &new_to_old {
            for (i, &t) in self.neighbors(old).iter().enumerate() {
                let nt = old_to_new[t as usize];
                if nt != u32::MAX {
                    let w = self.neighbor_weights(old)[i];
                    targets.push(nt);
                    weights.push(w);
                    if (t as usize) > old {
                        edge_count += 1;
                        total_weight += w;
                    }
                }
            }
            offsets.push(targets.len());
        }
        (
            Csr {
                offsets,
                targets,
                weights,
                edge_count,
                total_weight,
            },
            new_to_old,
        )
    }

    /// Checks structural invariants (sortedness, symmetry, counts). `O(E log d)`.
    pub fn validate(&self) -> bool {
        let n = self.node_count();
        let mut edge_count = 0usize;
        let mut total_weight = 0u64;
        for v in 0..n {
            let ns = self.neighbors(v);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            for (i, &t) in ns.iter().enumerate() {
                let t = t as usize;
                if t >= n || t == v {
                    return false;
                }
                if self.edge_weight(t, v) != self.neighbor_weights(v)[i] {
                    return false;
                }
                if t > v {
                    edge_count += 1;
                    total_weight += self.neighbor_weights(v)[i];
                }
            }
        }
        edge_count == self.edge_count && total_weight == self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Csr {
        // 0-1, 1-2, 0-2 (triangle), 2-3 (tail); edge 0-1 has weight 3.
        let mut g = MultiGraph::new();
        g.add_nodes(4);
        let n = |i| NodeId::new(i);
        g.add_edge_weighted(n(0), n(1), 3).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.to_csr()
    }

    #[test]
    fn counts_match_source_multigraph() {
        let csr = triangle_plus_tail();
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.total_weight(), 6);
        assert!(csr.validate());
    }

    #[test]
    fn neighbors_are_sorted_and_weighted() {
        let csr = triangle_plus_tail();
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
        assert_eq!(csr.neighbor_weights(0), &[3, 1]);
        assert_eq!(csr.degree(2), 3);
        assert_eq!(csr.strength(0), 4);
    }

    #[test]
    fn edge_queries() {
        let csr = triangle_plus_tail();
        assert!(csr.has_edge(0, 1));
        assert!(csr.has_edge(1, 0));
        assert!(!csr.has_edge(0, 3));
        assert_eq!(csr.edge_weight(0, 1), 3);
        assert_eq!(csr.edge_weight(3, 2), 1);
        assert_eq!(csr.edge_weight(0, 3), 0);
    }

    #[test]
    fn edges_iterator_and_round_trip() {
        let csr = triangle_plus_tail();
        let edges: Vec<_> = csr.edges().collect();
        assert_eq!(edges, vec![(0, 1, 3), (0, 2, 1), (1, 2, 1), (2, 3, 1)]);
        let g2 = csr.to_multigraph();
        assert_eq!(g2.to_csr(), csr);
    }

    #[test]
    fn from_edges_skips_self_loops_and_out_of_range() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 1), (1, 2), (2, 9), (0, 1)]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.edge_weight(0, 1), 2, "duplicates accumulate weight");
    }

    #[test]
    fn induced_subgraph_remaps_and_preserves_weights() {
        let csr = triangle_plus_tail();
        let (sub, map) = csr.induced_subgraph(&[true, false, true, true]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        // Surviving edges: (0,2) and (2,3) -> new (0,1), (1,2).
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        assert!(sub.validate());
    }

    #[test]
    fn empty_and_single_node() {
        let empty = Csr::from_edges(0, &[]);
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.max_degree(), 0);
        assert_eq!(empty.mean_degree(), 0.0);
        assert!(empty.validate());

        let one = Csr::from_edges(1, &[]);
        assert_eq!(one.node_count(), 1);
        assert_eq!(one.degree(0), 0);
        assert!(one.validate());
    }

    #[test]
    fn degree_and_strength_sequences() {
        let csr = triangle_plus_tail();
        assert_eq!(csr.degrees(), vec![2, 2, 3, 1]);
        assert_eq!(csr.strengths(), vec![4, 4, 3, 1]);
        assert_eq!(csr.max_degree(), 3);
        assert!((csr.mean_degree() - 2.0).abs() < 1e-12);
    }
}
