//! Error type shared by all fallible graph operations.

use crate::NodeId;
use std::fmt;

/// Errors produced by graph construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node that does not exist.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes currently in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was requested; self-loops are not representable.
    SelfLoop(NodeId),
    /// An edge weight of zero was requested; weights are strictly positive.
    ZeroWeight,
    /// An edge that was expected to exist does not.
    MissingEdge(NodeId, NodeId),
    /// A malformed line was encountered while parsing an edge list.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds (graph has {node_count} nodes)"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::ZeroWeight => write!(f, "edge weight must be strictly positive"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3 nodes"));

        assert!(GraphError::SelfLoop(NodeId::new(1))
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::ZeroWeight.to_string().contains("positive"));
        assert!(GraphError::MissingEdge(NodeId::new(0), NodeId::new(1))
            .to_string()
            .contains("does not exist"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 4"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
