//! Mutable undirected weighted multigraph.

use crate::{Csr, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of [`MultiGraph::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// The pair was not previously connected; a new edge was created.
    Created,
    /// The pair was already connected; the multiplicity was incremented and
    /// now equals the contained value.
    Reinforced(u64),
}

/// An undirected weighted multigraph.
///
/// Parallel edges between the same node pair are collapsed into a single
/// adjacency entry carrying an integer multiplicity (the *weight*). In
/// weighted Internet models the multiplicity of edge `(i, j)` is the bandwidth
/// provisioned between ASs `i` and `j`, and a node's total incident weight is
/// its *strength* (total bandwidth) `b_i`.
///
/// Adjacency is stored as one ordered map per node, giving:
///
/// * `O(log d)` edge insert / reinforce / lookup,
/// * deterministic (sorted) neighbor iteration,
/// * symmetric storage — `(i, j)` appears in both endpoints' maps with the
///   same weight; an internal invariant checked by the test suite.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiGraph {
    adj: Vec<BTreeMap<NodeId, u64>>,
    edge_count: usize,
    total_weight: u64,
}

impl MultiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        MultiGraph {
            adj: Vec::with_capacity(nodes),
            edge_count: 0,
            total_weight: 0,
        }
    }

    /// Builds a graph with `nodes` isolated nodes and the given unit-weight
    /// edges. Fails on self-loops or out-of-range endpoints; duplicate pairs
    /// reinforce (weight accumulates).
    pub fn from_edges<I>(nodes: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = MultiGraph::with_capacity(nodes);
        g.add_nodes(nodes);
        for (u, v) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adj.len());
        self.adj.push(BTreeMap::new());
        id
    }

    /// Adds `count` isolated nodes; returns the id of the first one added.
    ///
    /// Returns `NodeId::new(node_count())` (one past the end) when `count == 0`.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::new(self.adj.len());
        self.adj.resize_with(self.adj.len() + count, BTreeMap::new);
        first
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edges (node pairs with weight ≥ 1).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of edge multiplicities over all distinct edges. In the weighted
    /// Internet-model reading this is the total network bandwidth `B`.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() >= self.adj.len() {
            Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.adj.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds a unit of weight between `u` and `v`.
    ///
    /// If the pair was unconnected a new edge of weight 1 is created;
    /// otherwise the existing edge is *reinforced* (multiplicity + 1).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeUpdate> {
        self.add_edge_weighted(u, v, 1)
    }

    /// Adds `w ≥ 1` units of weight between `u` and `v` in one operation.
    pub fn add_edge_weighted(&mut self, u: NodeId, v: NodeId, w: u64) -> Result<EdgeUpdate> {
        if w == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_node(u)?;
        self.check_node(v)?;
        let entry = self.adj[u.index()].entry(v).or_insert(0);
        let created = *entry == 0;
        *entry += w;
        let new_weight = *entry;
        *self.adj[v.index()].entry(u).or_insert(0) += w;
        self.total_weight += w;
        if created {
            self.edge_count += 1;
            Ok(EdgeUpdate::Created)
        } else {
            Ok(EdgeUpdate::Reinforced(new_weight))
        }
    }

    /// Removes the edge between `u` and `v` entirely (all multiplicity).
    /// Returns the weight it had.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<u64> {
        self.check_node(u)?;
        self.check_node(v)?;
        match self.adj[u.index()].remove(&v) {
            Some(w) => {
                self.adj[v.index()].remove(&u);
                self.edge_count -= 1;
                self.total_weight -= w;
                Ok(w)
            }
            None => Err(GraphError::MissingEdge(u, v)),
        }
    }

    /// Weight (multiplicity) of the edge between `u` and `v`; 0 when absent.
    ///
    /// Out-of-range endpoints are treated as "no edge" and return 0.
    #[inline]
    pub fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.adj
            .get(u.index())
            .and_then(|m| m.get(&v).copied())
            .unwrap_or(0)
    }

    /// `true` when `u` and `v` are connected by at least one edge unit.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.weight(u, v) > 0
    }

    /// Topological degree of `v`: number of *distinct* neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Strength (weighted degree, total incident bandwidth `b_v`) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn strength(&self, v: NodeId) -> u64 {
        self.adj[v.index()].values().sum()
    }

    /// Iterates over `(neighbor, weight)` pairs of `v` in ascending neighbor
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.adj[v.index()].iter().map(|(&n, &w)| (n, w))
    }

    /// Iterates over all distinct edges as `(u, v, weight)` with `u < v`,
    /// in deterministic lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, m)| {
            let u = NodeId::new(u);
            m.iter()
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    /// Topological degree sequence, indexed by node.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(|m| m.len()).collect()
    }

    /// Strength sequence (total incident weight per node), indexed by node.
    pub fn strengths(&self) -> Vec<u64> {
        self.adj.iter().map(|m| m.values().sum()).collect()
    }

    /// Average topological degree `2E / N`; 0 for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.adj.len() as f64
        }
    }

    /// Builds an immutable CSR snapshot (weights preserved).
    pub fn to_csr(&self) -> Csr {
        Csr::from_multigraph(self)
    }

    /// Checks internal symmetry/count invariants. Intended for tests and
    /// debug assertions; `O(E log d)`.
    pub fn validate(&self) -> Result<()> {
        let mut edges = 0usize;
        let mut weight = 0u64;
        for (u, m) in self.adj.iter().enumerate() {
            let u = NodeId::new(u);
            for (&v, &w) in m {
                if w == 0 {
                    return Err(GraphError::ZeroWeight);
                }
                if v == u {
                    return Err(GraphError::SelfLoop(u));
                }
                self.check_node(v)?;
                if self.weight(v, u) != w {
                    return Err(GraphError::MissingEdge(v, u));
                }
                if u < v {
                    edges += 1;
                    weight += w;
                }
            }
        }
        if edges != self.edge_count || weight != self.total_weight {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "count invariant broken: counted {edges} edges / {weight} weight, \
                     stored {} / {}",
                    self.edge_count, self.total_weight
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> (MultiGraph, NodeId, NodeId, NodeId) {
        let mut g = MultiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph_has_no_structure() {
        let g = MultiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = MultiGraph::new();
        let first = g.add_nodes(3);
        assert_eq!(first, NodeId::new(0));
        let next = g.add_nodes(2);
        assert_eq!(next, NodeId::new(3));
        assert_eq!(g.node_count(), 5);
        // Zero-count insert returns one-past-the-end without adding.
        let none = g.add_nodes(0);
        assert_eq!(none, NodeId::new(5));
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn edges_create_and_reinforce() {
        let (mut g, a, b, _c) = path3();
        assert_eq!(g.add_edge(a, b).unwrap(), EdgeUpdate::Reinforced(2));
        assert_eq!(
            g.add_edge_weighted(a, b, 3).unwrap(),
            EdgeUpdate::Reinforced(5)
        );
        assert_eq!(g.weight(a, b), 5);
        assert_eq!(g.weight(b, a), 5, "weights are symmetric");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.strength(a), 5);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = MultiGraph::new();
        let a = g.add_node();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn zero_weight_is_rejected() {
        let (mut g, a, b, _) = path3();
        assert_eq!(g.add_edge_weighted(a, b, 0), Err(GraphError::ZeroWeight));
        assert_eq!(g.weight(a, b), 1, "failed insert must not mutate");
    }

    #[test]
    fn out_of_bounds_endpoints_are_rejected() {
        let mut g = MultiGraph::new();
        let a = g.add_node();
        let ghost = NodeId::new(7);
        assert!(matches!(
            g.add_edge(a, ghost),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_edge(ghost, a),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        // weight() is lenient: absent is 0.
        assert_eq!(g.weight(a, ghost), 0);
        assert!(!g.has_edge(ghost, a));
    }

    #[test]
    fn remove_edge_clears_all_multiplicity() {
        let (mut g, a, b, c) = path3();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.remove_edge(a, b).unwrap(), 2);
        assert!(!g.has_edge(a, b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_weight(), 1);
        assert_eq!(g.remove_edge(a, b), Err(GraphError::MissingEdge(a, b)));
        assert!(g.has_edge(b, c));
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_every_class_of_corruption() {
        // The mutators cannot produce these states, so corrupt the private
        // representation directly — this is what `--check-invariants` (and
        // the debug-assertion path) must catch on a damaged graph.
        let (mut g, a, b, _) = path3();
        g.adj[a.index()].insert(b, 9); // symmetric entry left at 1
        assert_eq!(g.validate(), Err(GraphError::MissingEdge(b, a)));

        let (mut g, a, b, _) = path3();
        g.adj[a.index()].insert(b, 0);
        g.adj[b.index()].insert(a, 0);
        assert_eq!(g.validate(), Err(GraphError::ZeroWeight));

        let (mut g, a, _, _) = path3();
        g.adj[a.index()].insert(a, 1);
        assert_eq!(g.validate(), Err(GraphError::SelfLoop(a)));

        let (mut g, ..) = path3();
        g.edge_count = 5;
        assert!(matches!(
            g.validate(),
            Err(GraphError::Parse { line: 0, .. })
        ));

        let (mut g, ..) = path3();
        g.total_weight = 99;
        assert!(matches!(
            g.validate(),
            Err(GraphError::Parse { line: 0, .. })
        ));

        let (mut g, _, b, c) = path3();
        g.adj[b.index()].insert(NodeId::new(7), 1);
        g.adj[c.index()].insert(NodeId::new(7), 1);
        assert!(matches!(
            g.validate(),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn neighbor_iteration_is_sorted() {
        let mut g = MultiGraph::new();
        let ids: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        g.add_edge(ids[2], ids[4]).unwrap();
        g.add_edge(ids[2], ids[0]).unwrap();
        g.add_edge(ids[2], ids[3]).unwrap();
        let ns: Vec<usize> = g.neighbors(ids[2]).map(|(n, _)| n.index()).collect();
        assert_eq!(ns, vec![0, 3, 4]);
    }

    #[test]
    fn edges_iterator_lists_each_pair_once() {
        let (mut g, a, b, c) = path3();
        g.add_edge(a, c).unwrap();
        g.add_edge(a, b).unwrap();
        let edges: Vec<(usize, usize, u64)> = g
            .edges()
            .map(|(u, v, w)| (u.index(), v.index(), w))
            .collect();
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 1), (1, 2, 1)]);
    }

    #[test]
    fn from_edges_builds_and_accumulates() {
        let g = MultiGraph::from_edges(4, [(0, 1), (1, 2), (0, 1), (2, 3)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.weight(NodeId::new(0), NodeId::new(1)), 2);
        assert!(MultiGraph::from_edges(2, [(0, 0)]).is_err());
        assert!(MultiGraph::from_edges(2, [(0, 5)]).is_err());
    }

    #[test]
    fn sequences_and_mean_degree() {
        let (mut g, a, b, _c) = path3();
        g.add_edge_weighted(a, b, 4).unwrap();
        assert_eq!(g.degrees(), vec![1, 2, 1]);
        assert_eq!(g.strengths(), vec![5, 6, 1]);
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let (g, ..) = path3();
        let ser = serde_json_like(&g);
        assert!(ser.contains("edge_count"));
    }

    /// Minimal check that serde derives exist without pulling serde_json:
    /// serialize into the `serde` test-friendly `Debug` of a token stream is
    /// overkill, so just ensure `serde::Serialize` is implemented by taking
    /// the trait object path through a formatter.
    fn serde_json_like<T: serde::Serialize>(_t: &T) -> String {
        // Compile-time assertion of the bound; runtime content is irrelevant.
        "edge_count".to_string()
    }
}
