//! # inet-pipeline — declarative experiment pipeline
//!
//! Turns a TOML **scenario** into a staged run: *source* (generate a
//! topology from the [`inet_generators::registry()`] or load an edge list)
//! → *measure* (the panic-fenced [`inet_metrics::measure_robust`] battery,
//! with kernel selection and soft deadlines) → *attack* (the checkpointed
//! [`inet_resilience::run_sweep`] percolation engine) → *report* (summary
//! text plus optional edge-list / curve-CSV / summary-file sinks).
//!
//! The CLI's `generate`, `measure`, and `attack` subcommands are thin
//! builders over [`Scenario`]; `inet run <scenario.toml>` executes a file
//! directly. Model dispatch happens exactly once, in the registry — the
//! pipeline never matches on model names.
//!
//! Every stage is wrapped in the `pipeline.stage` failpoint (scope 0 =
//! source, 1 = measure, 2 = attack, 3 = report) and a panic fence, so a
//! chaos plan can abort any stage deterministically and still get a typed
//! [`PipelineError`] instead of a crash.
//!
//! ```
//! use inet_pipeline::{run_scenario, Scenario};
//! let scenario = Scenario::parse(
//!     r#"
//!     [generator]
//!     model = "ba"
//!     n = 60
//!     seed = 7
//!     [measure]
//!     metrics = ["degree", "giant"]
//!     "#,
//! )
//! .unwrap();
//! let outcome = run_scenario(&scenario).unwrap();
//! assert_eq!(outcome.nodes, 60);
//! assert!(outcome.robust.unwrap().fully_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod run;
pub mod runstore;
pub mod scenario;
pub mod service;
pub mod telemetry;
pub mod toml;

pub use run::{run_scenario, run_scenario_with, ExecOptions, RunOutcome};
pub use runstore::{list_runs, scan_runs, CommitRecord, RunInfo, RunScan, RunStore};
pub use scenario::{AttackSpec, GeneratorSpec, MeasureSpec, ReportSpec, Scenario, Source};
pub use service::{ServeExit, Service, ServiceConfig};
pub use telemetry::{Telemetry, TELEMETRY_FILE};
pub use toml::{TomlError, TomlValue};

use std::fmt;

/// A pipeline failure with its exit-code class. The classes mirror the
/// CLI's documented contract (scripts branch on them):
///
/// | code | class | variant |
/// |---|---|---|
/// | 2 | scenario/usage (malformed file, unknown model or key) | [`PipelineError::Scenario`] |
/// | 3 | invalid model parameters | [`PipelineError::Model`] |
/// | 4 | data / IO (unreadable or malformed files) | [`PipelineError::Data`] |
/// | 5 | checkpoint belongs to a different run | [`PipelineError::CheckpointIncompatible`] |
/// | 6 | interrupted, resumable (`inet run --resume <run-id>`) | [`PipelineError::Interrupted`] |
/// | 1 | stage aborted (injected fault, caught panic), anything else | [`PipelineError::Stage`] |
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The scenario itself is unusable: TOML syntax, unknown keys or
    /// models, out-of-range settings.
    Scenario(String),
    /// A generator rejected its parameters (a `ModelError` one-liner).
    Model(String),
    /// Unreadable or malformed input/output data.
    Data(String),
    /// The attack checkpoint belongs to a different graph or sweep; the
    /// message names the differing field.
    CheckpointIncompatible(String),
    /// A stage died mid-flight: an injected `pipeline.stage` fault or a
    /// caught panic.
    Stage(String),
    /// The run was cancelled cooperatively (SIGINT or a fired
    /// [`inet_graph::CancelToken`]); completed work is journaled and the
    /// message carries the exact resume command.
    Interrupted(String),
}

impl PipelineError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            PipelineError::Stage(_) => 1,
            PipelineError::Scenario(_) => 2,
            PipelineError::Model(_) => 3,
            PipelineError::Data(_) => 4,
            PipelineError::CheckpointIncompatible(_) => 5,
            PipelineError::Interrupted(_) => 6,
        }
    }

    /// The one-line message.
    pub fn message(&self) -> &str {
        match self {
            PipelineError::Scenario(m)
            | PipelineError::Model(m)
            | PipelineError::Data(m)
            | PipelineError::CheckpointIncompatible(m)
            | PipelineError::Stage(m)
            | PipelineError::Interrupted(m) => m,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_the_cli_contract() {
        let cases = [
            (PipelineError::Stage("x".into()), 1),
            (PipelineError::Scenario("x".into()), 2),
            (PipelineError::Model("x".into()), 3),
            (PipelineError::Data("x".into()), 4),
            (PipelineError::CheckpointIncompatible("x".into()), 5),
            (PipelineError::Interrupted("x".into()), 6),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (e, want) in cases {
            assert_eq!(e.exit_code(), want, "{e}");
            assert!(seen.insert(e.exit_code()), "duplicate exit code {want}");
        }
    }
}
