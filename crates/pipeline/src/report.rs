//! Report rendering and sinks: the summary text, the attack response
//! table, and per-cell curve CSVs.
//!
//! The table and CSV formats are byte-for-byte the legacy `inet attack`
//! output, so scripts that scraped the old CLI keep working and the CLI's
//! thin builders can share this code with `inet run`.

use std::fmt::Write as _;
use std::path::Path;

use inet_metrics::RobustReport;
use inet_resilience::{AttackCurve, SweepResult};

use crate::run::RunOutcome;
use crate::scenario::Scenario;
use crate::PipelineError;

/// The per-cell response table, exactly as the legacy CLI printed it:
/// header plus one line per cell, each `\n`-terminated.
pub fn attack_table(result: &SweepResult) -> String {
    let mut out = String::from("strategy             rep    f_c   S(.05)  S(.20)  S(.50)\n");
    for cell in &result.cells {
        let _ = writeln!(
            out,
            "{:<20} {:>3}  {:>5.3}   {:>5.3}   {:>5.3}   {:>5.3}{}",
            cell.strategy,
            cell.replica,
            cell.curve.critical_fraction,
            cell.curve.giant_fraction_at(0.05),
            cell.curve.giant_fraction_at(0.20),
            cell.curve.giant_fraction_at(0.50),
            if cell.resampled { "  (resampled)" } else { "" }
        );
    }
    out
}

/// The "resumed N finished cell(s) from X" line, when the sweep resumed.
pub fn resumed_line(result: &SweepResult, checkpoint: Option<&Path>) -> Option<String> {
    (result.resumed > 0).then(|| {
        format!(
            "resumed {} finished cell(s) from {}",
            result.resumed,
            checkpoint
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "checkpoint".to_string())
        )
    })
}

/// One attack curve as CSV, with the legacy header.
pub fn curve_csv(curve: &AttackCurve) -> String {
    let mut csv = String::from("removed,giant,edges,mean_component\n");
    for p in &curve.points {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            p.removed, p.giant, p.edges, p.mean_component
        );
    }
    csv
}

/// Writes one `{strategy}-r{replica}.csv` per cell into `dir`.
pub fn write_curves(dir: &Path, result: &SweepResult) -> Result<(), PipelineError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| PipelineError::Data(format!("curves: {}: {e}", dir.display())))?;
    for cell in &result.cells {
        let path = dir.join(format!("{}-r{}.csv", cell.strategy, cell.replica));
        std::fs::write(&path, curve_csv(&cell.curve))
            .map_err(|e| PipelineError::Data(format!("curves: {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Creates the parent directory of a file sink, so scenarios can point
/// sinks into not-yet-existing figure directories.
fn ensure_parent(path: &Path) -> Result<(), PipelineError> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => std::fs::create_dir_all(parent)
            .map_err(|e| PipelineError::Data(format!("{}: {e}", parent.display()))),
        _ => Ok(()),
    }
}

/// Appends `text` ensuring exactly one trailing newline.
fn push_block(out: &mut String, text: &str) {
    out.push_str(text.trim_end_matches('\n'));
    out.push('\n');
}

/// Renders the measurement section of the summary: the metrics report
/// plus (when interesting) the kernel-status block and any soft-deadline
/// overruns — the overruns go into the report sink itself, not only onto
/// stderr. This exact string is also the stage-1 artifact, replayed
/// verbatim on resume.
pub fn render_measure_block(scenario: &Scenario, r: &RobustReport) -> String {
    let mut s = String::new();
    s.push('\n');
    push_block(&mut s, &r.report.render());
    let deadline = scenario.measure.and_then(|m| m.deadline_ms);
    if !r.fully_ok() || deadline.is_some() {
        push_block(&mut s, "# kernel status");
        push_block(&mut s, &r.render_status());
    }
    for (kernel, elapsed, limit) in r.deadline_exceeded() {
        push_block(
            &mut s,
            &format!("# deadline exceeded: {kernel} ran {elapsed} ms against a {limit} ms budget"),
        );
    }
    s
}

/// Renders the run summary: source line, measurement report, attack table.
pub fn render_summary(scenario: &Scenario, outcome: &RunOutcome) -> String {
    let mut s = String::new();
    push_block(&mut s, &format!("scenario: {}", outcome.name));
    if !scenario.description.is_empty() {
        push_block(&mut s, &scenario.description);
    }
    push_block(&mut s, &format!("# {}", outcome.source));
    if let Some(block) = &outcome.measure_replay {
        s.push_str(block);
    } else if let Some(r) = &outcome.robust {
        s.push_str(&render_measure_block(scenario, r));
    }
    if let Some(sweep) = &outcome.sweep {
        s.push('\n');
        let checkpoint = scenario
            .attack
            .as_ref()
            .and_then(|a| a.checkpoint.as_deref());
        if let Some(line) = resumed_line(sweep, checkpoint) {
            push_block(&mut s, &line);
        }
        push_block(&mut s, &attack_table(sweep));
    }
    s
}

/// Validates every configured sink *before* any compute runs: parent
/// directories are created and probed for writability, so a typo'd or
/// read-only output path fails in milliseconds with a usage error (exit
/// 2) instead of after a long sweep.
pub fn preflight(scenario: &Scenario) -> Result<(), PipelineError> {
    let unwritable = |label: &str, path: &Path, e: std::io::Error| {
        PipelineError::Scenario(format!(
            "[report] {label}: '{}' is not writable: {e}",
            path.display()
        ))
    };
    let probe_file = |label: &str, path: &Path| -> Result<(), PipelineError> {
        let existed = path.exists();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| unwritable(label, path, e))?;
        }
        // Append mode never truncates a pre-existing sink; a probe that
        // had to create the file is removed again.
        std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| unwritable(label, path, e))?;
        if !existed {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    };
    if let Some(path) = scenario.report.edge_list.as_deref().filter(|p| *p != "-") {
        probe_file("edge_list", Path::new(path))?;
    }
    if let Some(dir) = &scenario.report.curves {
        std::fs::create_dir_all(dir).map_err(|e| unwritable("curves", dir, e))?;
        probe_file("curves", &dir.join(".inet-preflight"))?;
    }
    if let Some(path) = &scenario.report.summary {
        probe_file("summary", path)?;
    }
    Ok(())
}

/// Stage 3: fills `outcome.summary` and writes the configured sinks.
pub(crate) fn emit(
    scenario: &Scenario,
    graph: &inet_graph::MultiGraph,
    outcome: &mut RunOutcome,
) -> Result<(), PipelineError> {
    outcome.summary = render_summary(scenario, outcome);
    if let Some(path) = &scenario.report.edge_list {
        let mut buf = Vec::new();
        inet_graph::io::write_edge_list(graph, &mut buf)
            .map_err(|e| PipelineError::Data(format!("edge_list: {e}")))?;
        if path == "-" {
            print!("{}", String::from_utf8_lossy(&buf));
            outcome.written.push("edge list -> stdout".to_string());
        } else {
            ensure_parent(Path::new(path))?;
            std::fs::write(path, &buf)
                .map_err(|e| PipelineError::Data(format!("edge_list: {path}: {e}")))?;
            outcome.written.push(format!("edge list -> {path}"));
        }
    }
    if let (Some(dir), Some(sweep)) = (&scenario.report.curves, &outcome.sweep) {
        write_curves(dir, sweep)?;
        outcome.written.push(format!("curves -> {}", dir.display()));
    }
    if let Some(path) = &scenario.report.summary {
        ensure_parent(path)?;
        std::fs::write(path, &outcome.summary)
            .map_err(|e| PipelineError::Data(format!("summary: {}: {e}", path.display())))?;
        outcome
            .written
            .push(format!("summary -> {}", path.display()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_resilience::{CellRecord, CurvePoint};

    fn sweep_with_one_cell() -> SweepResult {
        SweepResult {
            cells: vec![CellRecord {
                strategy: "random".to_string(),
                replica: 0,
                resampled: true,
                curve: AttackCurve {
                    nodes: 10,
                    edges: 20,
                    points: vec![CurvePoint {
                        removed: 1,
                        giant: 9,
                        edges: 15,
                        mean_component: 4.5,
                    }],
                    critical_fraction: 0.5,
                },
            }],
            failures: Vec::new(),
            resumed: 1,
            warnings: Vec::new(),
            interrupted: false,
        }
    }

    #[test]
    fn attack_table_matches_the_legacy_format() {
        let table = attack_table(&sweep_with_one_cell());
        let mut lines = table.lines();
        assert_eq!(
            lines.next().unwrap(),
            "strategy             rep    f_c   S(.05)  S(.20)  S(.50)"
        );
        // nodes=10 with a single recorded point at giant=9 → S = 0.900
        // everywhere; f_c comes straight from the struct.
        assert_eq!(
            lines.next().unwrap(),
            "random                 0  0.500   0.900   0.900   0.900  (resampled)"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn curve_csv_has_header_and_rows() {
        let csv = curve_csv(&sweep_with_one_cell().cells[0].curve);
        assert_eq!(csv, "removed,giant,edges,mean_component\n1,9,15,4.5\n");
    }

    #[test]
    fn resumed_line_names_the_checkpoint() {
        let sweep = sweep_with_one_cell();
        assert_eq!(
            resumed_line(&sweep, Some(Path::new("ck.json"))).unwrap(),
            "resumed 1 finished cell(s) from ck.json"
        );
        assert_eq!(
            resumed_line(&sweep, None).unwrap(),
            "resumed 1 finished cell(s) from checkpoint"
        );
        let fresh = SweepResult {
            resumed: 0,
            ..sweep
        };
        assert!(resumed_line(&fresh, None).is_none());
    }
}
