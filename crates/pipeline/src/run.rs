//! The staged executor: source → measure → attack → report.
//!
//! Each stage runs behind the `pipeline.stage` failpoint (scope = stage
//! index) *and* a panic fence, so an injected fault or a kernel bug aborts
//! the run with a typed [`PipelineError`] — never a crash — and earlier
//! stages' results are still described in the error path (checkpoints on
//! disk, sinks already written).
//!
//! The stages reuse the existing engines verbatim: generation goes through
//! the registry builder and [`Generator::try_generate`]'s containment,
//! measurement through [`inet_metrics::measure_robust`] on the giant
//! component, attacks through [`inet_resilience::run_sweep`] on the full
//! graph — so scenario runs are bit-identical to the legacy subcommands
//! for any thread count.
//!
//! [`Generator::try_generate`]: inet_generators::Generator::try_generate

use std::io::Read;

use inet_exec::{run_fenced, Task, TaskError};
use inet_graph::{CancelToken, MultiGraph};
use inet_metrics::{measure_robust_cancellable, ReportOptions, RobustOptions, RobustReport};
use inet_resilience::{run_sweep, SweepConfig, SweepResult};
use inet_stats::rng::seeded_rng;

use crate::report;
use crate::runstore::RunStore;
use crate::scenario::{Scenario, Source};
use crate::telemetry::Telemetry;
use crate::PipelineError;

/// Stage names, indexed by their `pipeline.stage` failpoint scope.
pub const STAGE_NAMES: [&str; 4] = ["source", "measure", "attack", "report"];

/// Everything a finished run produced, for the caller to print or persist.
#[derive(Debug)]
pub struct RunOutcome {
    /// Scenario display name.
    pub name: String,
    /// One-line description of the topology source (model + sizes, or the
    /// loaded path).
    pub source: String,
    /// Node count of the topology under study.
    pub nodes: usize,
    /// Edge count of the topology under study.
    pub edges: usize,
    /// The measurement stage's report, when the stage ran.
    pub robust: Option<RobustReport>,
    /// The attack stage's sweep result, when the stage ran.
    pub sweep: Option<SweepResult>,
    /// The rendered summary text (also written to the summary sink).
    pub summary: String,
    /// Non-fatal warnings collected across stages (kernel failures,
    /// resampled replicas, sweep warnings) for the caller's stderr.
    pub warnings: Vec<String>,
    /// One line per report sink actually written.
    pub written: Vec<String>,
    /// The run-store id, when the run was journaled.
    pub run_id: Option<String>,
    /// The measurement block replayed verbatim from a committed stage-1
    /// artifact; set instead of `robust` on resume, so the summary is
    /// byte-identical to the interrupted run's.
    pub measure_replay: Option<String>,
}

/// Runs one stage behind the failpoint and a panic fence. The failpoint
/// sits *inside* the fence so an injected `Panic` action is contained
/// exactly like an organic stage panic.
fn stage<T>(index: u64, f: impl FnOnce() -> Result<T, PipelineError>) -> Result<T, PipelineError> {
    let name = STAGE_NAMES[index as usize];
    let task = Task::new("pipeline.stage", index);
    match run_fenced(&task, || {
        inet_fault::check("pipeline.stage", index)
            .map_err(|e| PipelineError::Stage(format!("{name} stage aborted: {e}")))
            .and_then(|()| f())
    }) {
        Ok(result) => result,
        Err(TaskError::Fault(e)) => Err(PipelineError::Stage(format!("{name} stage aborted: {e}"))),
        Err(TaskError::Panicked(msg)) => Err(PipelineError::Stage(format!(
            "{name} stage panicked: {msg}"
        ))),
    }
}

/// Execution options for [`run_scenario_with`]: cooperative cancellation
/// plus the optional crash-safe run store.
#[derive(Debug, Default)]
pub struct ExecOptions {
    /// Polled between pool chunks, sweep cells, and metric kernels. Once
    /// fired, the run stops after the in-flight batch with
    /// [`PipelineError::Interrupted`]; completed work is already
    /// journaled/checkpointed.
    pub cancel: CancelToken,
    /// When present, every stage journals begin/commit records and writes
    /// checksummed artifacts; on resume, committed stages replay from
    /// their artifacts instead of re-executing.
    pub store: Option<RunStore>,
}

/// Executes a scenario start to finish and returns what it produced —
/// the legacy single-shot path (no journal, no cancellation), which stays
/// byte-identical to earlier releases.
pub fn run_scenario(scenario: &Scenario) -> Result<RunOutcome, PipelineError> {
    run_scenario_with(scenario, &ExecOptions::default())
}

/// The [`PipelineError::Interrupted`] for this run, carrying the exact
/// resume command when a run store exists.
fn interrupted_error(store: Option<&RunStore>) -> PipelineError {
    PipelineError::Interrupted(match store {
        Some(st) => format!(
            "interrupted; committed stages are journaled — resume with: inet run --resume {}",
            st.id()
        ),
        None => "interrupted (no run store; re-run the same command — an attack checkpoint, \
                 if configured, resumes finished cells)"
            .to_string(),
    })
}

/// Per-kernel warning lines, shared between the caller's stderr and the
/// stage-1 journal detail: failures plus soft-deadline overruns (which
/// used to be visible only in the kernel-status block).
fn measure_warnings(r: &RobustReport) -> Vec<String> {
    let mut out: Vec<String> = r
        .failures()
        .iter()
        .map(|(kernel, reason)| format!("kernel '{kernel}' failed: {reason}"))
        .collect();
    for (kernel, elapsed, limit) in r.deadline_exceeded() {
        out.push(format!(
            "kernel '{kernel}' overran the {limit} ms soft deadline ({elapsed} ms); \
             its numbers are exact but the budget was blown"
        ));
    }
    out
}

/// Executes a scenario with cancellation and (optionally) the journaled
/// run store: stage-level resume replays committed stages from their
/// artifacts and re-executes from the first uncommitted one.
///
/// The whole run executes under a captured `run` span; for journaled runs
/// the captured subtree is appended to the run's `telemetry.json`
/// (accumulating across resume sessions). Telemetry is inert: a persist
/// failure is swallowed, and the spans never influence the outcome.
pub fn run_scenario_with(
    scenario: &Scenario,
    opts: &ExecOptions,
) -> Result<RunOutcome, PipelineError> {
    let (result, spans) = inet_obs::span::capture("run", 0, || run_scenario_inner(scenario, opts));
    if let Some(st) = opts.store.as_ref() {
        let mut telemetry = Telemetry::load(st);
        telemetry.append(spans);
        let _ = telemetry.save(st);
    }
    result
}

fn run_scenario_inner(
    scenario: &Scenario,
    opts: &ExecOptions,
) -> Result<RunOutcome, PipelineError> {
    let threads = scenario
        .threads
        .unwrap_or_else(inet_graph::parallel::default_threads);
    let store = opts.store.as_ref();
    let cancel = &opts.cancel;

    // Fail fast on unwritable sinks — before any compute, not after.
    report::preflight(scenario)?;

    let committed = match store {
        Some(st) => st.committed(),
        None => vec![None; STAGE_NAMES.len()],
    };
    let mut warnings = Vec::new();
    if cancel.is_cancelled() {
        return Err(interrupted_error(store));
    }

    // Stage 0: source — replay the committed edge list when possible (the
    // adjacency is canonical, so the round trip rebuilds the identical
    // graph), otherwise execute and commit.
    let mut replayed_source = None;
    if let (Some(st), Some(rec)) = (store, committed[0].as_ref()) {
        let _replay = inet_obs::span::enter("pipeline.replay", 0);
        match st.load_artifact(rec).and_then(|bytes| {
            inet_graph::io::read_edge_list(&bytes[..])
                .map_err(|e| PipelineError::Data(format!("source artifact: {e}")))
        }) {
            Ok(g) => replayed_source = Some((g, rec.detail.clone())),
            Err(e) => warnings.push(format!("{e}; re-executing the source stage")),
        }
    }
    let (graph, source_desc) = match replayed_source {
        Some(pair) => pair,
        None => stage(0, || {
            if let Some(st) = store {
                st.begin(0)?;
            }
            let (graph, desc) = build_source(scenario)?;
            if let Some(st) = store {
                let mut buf = Vec::new();
                inet_graph::io::write_edge_list(&graph, &mut buf)
                    .map_err(|e| PipelineError::Data(format!("source artifact: {e}")))?;
                st.commit_bytes(0, "source.edges", &buf, &desc)?;
            }
            Ok((graph, desc))
        })?,
    };
    if cancel.is_cancelled() {
        return Err(interrupted_error(store));
    }

    // Stage 1: measure — replay the committed rendered block verbatim, or
    // run the (cancellable) kernel battery and commit it.
    let mut robust = None;
    let mut measure_replay = None;
    if let Some(m) = scenario.measure {
        let mut replayed = false;
        if let (Some(st), Some(rec)) = (store, committed[1].as_ref()) {
            let _replay = inet_obs::span::enter("pipeline.replay", 1);
            match st.load_artifact(rec) {
                Ok(bytes) => {
                    measure_replay = Some(String::from_utf8_lossy(&bytes).into_owned());
                    warnings.extend(rec.detail.lines().map(str::to_string));
                    replayed = true;
                }
                Err(e) => warnings.push(format!("{e}; re-executing the measure stage")),
            }
        }
        if !replayed {
            let r = stage(1, || {
                if let Some(st) = store {
                    st.begin(1)?;
                }
                let giant = inet_graph::traversal::giant_component(&graph.to_csr()).0;
                let opt = RobustOptions {
                    report: ReportOptions {
                        path_sources: m.path_sources,
                        betweenness_sources: m.betweenness_sources,
                        threads,
                    },
                    soft_deadline_millis: m.deadline_ms,
                    selection: m.selection,
                };
                let r = measure_robust_cancellable(&giant, opt, cancel);
                if !r.interrupted() {
                    if let Some(st) = store {
                        st.commit_bytes(
                            1,
                            "measure.txt",
                            report::render_measure_block(scenario, &r).as_bytes(),
                            &measure_warnings(&r).join("\n"),
                        )?;
                    }
                }
                Ok(r)
            })?;
            if r.interrupted() {
                return Err(interrupted_error(store));
            }
            robust = Some(r);
        }
    } else if let (Some(st), None) = (store, committed[1].as_ref()) {
        // The scenario has no measure section: journal the skip so the
        // run's progress reads "complete" once the later stages land.
        st.begin(1)?;
        st.commit_bytes(1, "measure.skip", b"", "skipped")?;
    }
    if cancel.is_cancelled() {
        return Err(interrupted_error(store));
    }

    // Stage 2: attack — the checkpoint *is* the artifact, at cell
    // granularity: journaled runs auto-wire one into the run directory,
    // and resume (committed or mid-sweep) picks finished cells back up
    // from it bit-identically.
    let mut sweep = None;
    if let Some(a) = &scenario.attack {
        let checkpoint = match (&a.checkpoint, store) {
            (Some(path), _) => Some(path.clone()),
            (None, Some(st)) => Some(st.path("attack.ckpt.json")),
            (None, None) => None,
        };
        let s = stage(2, || {
            if let Some(st) = store {
                st.begin(2)?;
            }
            let csr = graph.to_csr();
            let record_every = if a.record_every == 0 {
                (csr.node_count() / 200).max(1)
            } else {
                a.record_every
            };
            let cfg = SweepConfig {
                strategies: a.strategies.clone(),
                replicas: a.replicas,
                base_seed: a.seed,
                threads,
                record_every,
                bc_sources: a.bc_sources,
                checkpoint: checkpoint.clone(),
                cancel: cancel.clone(),
                ..SweepConfig::default()
            };
            let result = run_sweep(&csr, &cfg).map_err(|e| {
                if e.is_incompatible() {
                    PipelineError::CheckpointIncompatible(format!("attack: {e}"))
                } else {
                    PipelineError::Data(format!("attack: {e}"))
                }
            })?;
            if !result.interrupted {
                if let (Some(st), Some(ckpt)) = (store, checkpoint.as_deref()) {
                    st.commit_external(2, ckpt, "")?;
                }
            }
            Ok(result)
        })?;
        if s.interrupted {
            return Err(interrupted_error(store));
        }
        sweep = Some(s);
    } else if let (Some(st), None) = (store, committed[2].as_ref()) {
        st.begin(2)?;
        st.commit_bytes(2, "attack.skip", b"", "skipped")?;
    }
    if cancel.is_cancelled() {
        return Err(interrupted_error(store));
    }

    if let Some(r) = &robust {
        warnings.extend(measure_warnings(r));
    }
    if let Some(s) = &sweep {
        for f in &s.failures {
            warnings.push(format!(
                "{} replica {} failed on attempt {}: {}",
                f.strategy, f.replica, f.attempt, f.message
            ));
        }
        warnings.extend(s.warnings.iter().cloned());
    }

    let mut outcome = RunOutcome {
        name: scenario.name.clone(),
        source: source_desc,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        robust,
        sweep,
        summary: String::new(),
        warnings,
        written: Vec::new(),
        run_id: store.map(|st| st.id().to_string()),
        measure_replay,
    };
    stage(3, || {
        if let Some(st) = store {
            st.begin(3)?;
        }
        report::emit(scenario, &graph, &mut outcome)?;
        if let Some(st) = store {
            st.commit_bytes(
                3,
                "summary.txt",
                outcome.summary.as_bytes(),
                &outcome.written.join("\n"),
            )?;
        }
        Ok(())
    })?;
    Ok(outcome)
}

/// Stage 0: grow or load the topology, with the invariant check the legacy
/// CLI ran (always in debug builds, opt-in in release).
fn build_source(scenario: &Scenario) -> Result<(MultiGraph, String), PipelineError> {
    match &scenario.source {
        Source::Generator(g) => {
            let generator =
                (g.spec.build)(&g.params).map_err(|e| PipelineError::Model(e.to_string()))?;
            let mut rng = seeded_rng(g.seed);
            let net = generator
                .try_generate(&mut rng)
                .map_err(|e| PipelineError::Model(e.to_string()))?;
            check_graph(&net.graph, scenario.check_invariants, "generate")?;
            let desc = format!(
                "generated {} ({} nodes, {} edges, weight {})",
                net.name,
                net.graph.node_count(),
                net.graph.edge_count(),
                net.graph.total_weight()
            );
            Ok((net.graph, desc))
        }
        Source::Input { path } => {
            let graph = load_graph(path)?;
            check_graph(&graph, scenario.check_invariants, "input")?;
            let desc = format!(
                "loaded {} ({} nodes, {} edges)",
                path,
                graph.node_count(),
                graph.edge_count()
            );
            Ok((graph, desc))
        }
    }
}

/// Reads an edge list from a file, or stdin when `path` is `-`.
pub fn load_graph(path: &str) -> Result<MultiGraph, PipelineError> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| PipelineError::Data(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| PipelineError::Data(format!("{path}: {e}")))?
    };
    inet_graph::io::read_edge_list(text.as_bytes())
        .map_err(|e| PipelineError::Data(format!("{path}: {e}")))
}

fn check_graph(g: &MultiGraph, enabled: bool, what: &str) -> Result<(), PipelineError> {
    if enabled || cfg!(debug_assertions) {
        g.validate().map_err(|e| {
            PipelineError::Data(format!("{what}: graph invariant check failed: {e}"))
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use inet_resilience::Strategy;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("inet_pipeline_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generator_scenario_measures_and_attacks() {
        let scenario = Scenario::parse(
            r#"
            [generator]
            model = "ba"
            n = 80
            seed = 11
            [measure]
            metrics = ["degree", "giant"]
            [attack]
            strategies = ["random"]
            replicas = 1
            record = 1
            "#,
        )
        .unwrap();
        let outcome = run_scenario(&scenario).unwrap();
        assert_eq!(outcome.nodes, 80);
        assert!(outcome.edges > 0);
        let robust = outcome.robust.as_ref().unwrap();
        assert!(robust.fully_ok());
        let sweep = outcome.sweep.as_ref().unwrap();
        assert_eq!(sweep.cells.len(), 1);
        assert!(outcome.summary.contains("generated"), "{}", outcome.summary);
        assert!(outcome.summary.contains("strategy"), "{}", outcome.summary);
    }

    #[test]
    fn scenario_attack_is_bit_identical_to_a_direct_sweep() {
        // The pipeline must add nothing to the numbers: same generator call,
        // same sweep config => identical cells, for any thread count.
        let direct = {
            let spec = inet_generators::lookup("ba").unwrap();
            let params = spec.resolve_n(80).unwrap();
            let generator = (spec.build)(&params).unwrap();
            let mut rng = seeded_rng(11);
            let csr = generator.try_generate(&mut rng).unwrap().graph.to_csr();
            let cfg = SweepConfig {
                strategies: vec![Strategy::Random, Strategy::Degree { recalc: false }],
                replicas: 2,
                base_seed: 11,
                threads: 1,
                record_every: 1,
                bc_sources: 64,
                ..SweepConfig::default()
            };
            run_sweep(&csr, &cfg).unwrap()
        };
        for threads in [1usize, 2, 7] {
            let scenario = Scenario::parse(&format!(
                "threads = {threads}\n[generator]\nmodel = \"ba\"\nn = 80\nseed = 11\n\
                 [attack]\nreplicas = 2\nrecord = 1"
            ))
            .unwrap();
            let outcome = run_scenario(&scenario).unwrap();
            assert_eq!(
                outcome.sweep.unwrap().cells,
                direct.cells,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn input_scenario_round_trips_through_sinks() {
        let dir = temp_dir("sinks");
        let edge_list = dir.join("graph.txt");
        let generated = Scenario::parse(&format!(
            "[generator]\nmodel = \"glp\"\nn = 120\nseed = 3\n[report]\nedge_list = \"{}\"",
            edge_list.display()
        ))
        .unwrap();
        let first = run_scenario(&generated).unwrap();
        assert!(edge_list.exists());
        assert_eq!(first.written.len(), 1);

        let summary = dir.join("summary.txt");
        let curves = dir.join("curves");
        let measured = Scenario::parse(&format!(
            "[input]\npath = \"{}\"\n[measure]\nmetrics = [\"degree\"]\n\
             [attack]\nstrategies = [\"degree\"]\nreplicas = 1\n\
             [report]\nsummary = \"{}\"\ncurves = \"{}\"",
            edge_list.display(),
            summary.display(),
            curves.display()
        ))
        .unwrap();
        let outcome = run_scenario(&measured).unwrap();
        assert_eq!(outcome.nodes, first.nodes);
        assert_eq!(outcome.edges, first.edges);
        let summary_text = std::fs::read_to_string(&summary).unwrap();
        assert_eq!(summary_text, outcome.summary);
        assert!(curves.join("degree-r0.csv").exists());
        let csv = std::fs::read_to_string(curves.join("degree-r0.csv")).unwrap();
        assert!(
            csv.starts_with("removed,giant,edges,mean_component\n"),
            "{csv}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_errors_keep_their_exit_codes() {
        // Unreadable input is a data error (4).
        let scenario = Scenario::parse("[input]\npath = \"/nonexistent/g.txt\"").unwrap();
        assert_eq!(run_scenario(&scenario).unwrap_err().exit_code(), 4);
        // A generator rejecting its parameters is a model error (3): the
        // schema accepts any positive m, the builder enforces m <= n.
        let scenario = Scenario::parse("[generator]\nmodel = \"ba\"\nn = 10\nm = 50").unwrap();
        let e = run_scenario(&scenario).unwrap_err();
        assert_eq!(e.exit_code(), 3, "{e}");
    }

    #[test]
    fn incompatible_checkpoint_exits_5() {
        let dir = temp_dir("ckpt");
        let ckpt = dir.join("state.json");
        let mk = |seed: u64| {
            Scenario::parse(&format!(
                "[generator]\nmodel = \"ba\"\nn = 60\nseed = {seed}\n\
                 [attack]\nstrategies = [\"random\"]\nreplicas = 1\ncheckpoint = \"{}\"",
                ckpt.display()
            ))
            .unwrap()
        };
        run_scenario(&mk(11)).unwrap();
        let resumed = run_scenario(&mk(11)).unwrap();
        assert_eq!(resumed.sweep.as_ref().unwrap().resumed, 1);
        assert!(resumed.summary.contains("resumed 1 finished cell(s)"));
        let e = run_scenario(&mk(12)).unwrap_err();
        assert_eq!(e.exit_code(), 5, "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_run_commits_every_stage_and_resumes_from_artifacts() {
        let dir = temp_dir("journal");
        let runs = dir.join("runs");
        let curves = dir.join("curves");
        let text = format!(
            "[generator]\nmodel = \"ba\"\nn = 80\nseed = 11\n\
             [measure]\nmetrics = [\"degree\", \"giant\"]\n\
             [attack]\nstrategies = [\"random\"]\nreplicas = 2\nrecord = 1\n\
             [report]\ncurves = \"{}\"",
            curves.display()
        );
        let scenario = Scenario::parse(&text).unwrap();
        let store = RunStore::create(&runs, &scenario.name, &text, "s.toml", &[]).unwrap();
        let id = store.id().to_string();
        let clean = run_scenario_with(
            &scenario,
            &ExecOptions {
                store: Some(store),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(clean.run_id.as_deref(), Some(id.as_str()));
        let clean_cells = clean.sweep.as_ref().unwrap().cells.clone();
        let csv_before = std::fs::read_to_string(curves.join("random-r0.csv")).unwrap();

        // Every stage committed, every artifact passes its checksum.
        let store = RunStore::open(&runs, &id).unwrap();
        let committed = store.committed();
        assert!(committed.iter().all(Option::is_some), "{committed:?}");
        for rec in committed.iter().flatten() {
            store.load_artifact(rec).unwrap();
        }
        assert!(store.path("attack.ckpt.json").exists());

        // Resume replays source + measure from artifacts, the attack from
        // its checkpoint — cells and curve CSVs bit-identical.
        let resumed = run_scenario_with(
            &scenario,
            &ExecOptions {
                store: Some(RunStore::open(&runs, &id).unwrap()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(resumed.robust.is_none(), "measure must replay, not re-run");
        assert!(resumed.measure_replay.is_some());
        assert_eq!(resumed.source, clean.source);
        let resumed_sweep = resumed.sweep.as_ref().unwrap();
        assert_eq!(resumed_sweep.cells, clean_cells);
        assert_eq!(
            resumed_sweep.resumed, 2,
            "both cells come from the checkpoint"
        );
        assert_eq!(
            std::fs::read_to_string(curves.join("random-r0.csv")).unwrap(),
            csv_before
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifact_degrades_to_re_execution_with_a_warning() {
        let dir = temp_dir("degrade");
        let runs = dir.join("runs");
        let text = "[generator]\nmodel = \"ba\"\nn = 60\nseed = 7\n\
                    [measure]\nmetrics = [\"degree\"]";
        let scenario = Scenario::parse(text).unwrap();
        let store = RunStore::create(&runs, &scenario.name, text, "s.toml", &[]).unwrap();
        let id = store.id().to_string();
        let clean = run_scenario_with(
            &scenario,
            &ExecOptions {
                store: Some(store),
                ..Default::default()
            },
        )
        .unwrap();
        let store = RunStore::open(&runs, &id).unwrap();
        std::fs::write(store.path("measure.txt"), "tampered").unwrap();
        let resumed = run_scenario_with(
            &scenario,
            &ExecOptions {
                store: Some(store),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            resumed
                .warnings
                .iter()
                .any(|w| w.contains("failed its checksum") && w.contains("re-executing")),
            "{:?}",
            resumed.warnings
        );
        assert!(resumed.robust.is_some(), "stage must re-execute");
        assert_eq!(
            resumed.summary, clean.summary,
            "re-execution is deterministic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_run_exits_6_and_names_the_resume_command() {
        let dir = temp_dir("cancel");
        let text = "[generator]\nmodel = \"ba\"\nn = 60";
        let scenario = Scenario::parse(text).unwrap();
        let store =
            RunStore::create(&dir.join("runs"), &scenario.name, text, "s.toml", &[]).unwrap();
        let id = store.id().to_string();
        let cancel = inet_graph::CancelToken::new();
        cancel.cancel();
        let e = run_scenario_with(
            &scenario,
            &ExecOptions {
                cancel,
                store: Some(store),
            },
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 6, "{e}");
        assert!(
            e.message().contains(&format!("inet run --resume {id}")),
            "{e}"
        );
        // Without a store the class is the same, just without the command.
        let cancel = inet_graph::CancelToken::new();
        cancel.cancel();
        let e = run_scenario_with(
            &scenario,
            &ExecOptions {
                cancel,
                store: None,
            },
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 6, "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_sinks_fail_fast_with_exit_2_before_any_compute() {
        let dir = temp_dir("preflight");
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "x").unwrap();
        // The parent of each sink is a *file*, so no directory can be made.
        for section in [
            format!("summary = \"{}\"", blocker.join("sub/out.txt").display()),
            format!("edge_list = \"{}\"", blocker.join("sub/g.txt").display()),
        ] {
            let scenario = Scenario::parse(&format!(
                "[generator]\nmodel = \"ba\"\nn = 60\n[report]\n{section}"
            ))
            .unwrap();
            let e = run_scenario(&scenario).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{section}: {e}");
            assert!(e.message().contains("not writable"), "{e}");
        }
        let scenario = Scenario::parse(&format!(
            "[generator]\nmodel = \"ba\"\nn = 60\n[attack]\nreplicas = 1\n\
             [report]\ncurves = \"{}\"",
            blocker.join("curves").display()
        ))
        .unwrap();
        let e = run_scenario(&scenario).unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    mod faults {
        use super::*;
        use inet_fault::{install, FaultAction, FaultPlan};

        fn scenario() -> Scenario {
            Scenario::parse(
                "[generator]\nmodel = \"ba\"\nn = 60\n\
                 [measure]\nmetrics = [\"degree\"]\n\
                 [attack]\nstrategies = [\"random\"]\nreplicas = 1",
            )
            .unwrap()
        }

        #[test]
        fn injected_stage_faults_abort_with_exit_1() {
            for (scope, name) in STAGE_NAMES.iter().enumerate() {
                let _guard = install(FaultPlan::single(
                    "pipeline.stage",
                    Some(scope as u64),
                    FaultAction::Error,
                ));
                let e = run_scenario(&scenario()).unwrap_err();
                assert_eq!(e.exit_code(), 1, "{name}: {e}");
                assert!(
                    e.message().contains(&format!("{name} stage aborted")),
                    "{name}: {e}"
                );
            }
        }

        #[test]
        fn panics_inside_a_stage_are_contained() {
            // The failpoint sits inside the fence, so an injected panic
            // becomes a Stage error instead of unwinding through the run.
            let _guard = install(FaultPlan::single(
                "pipeline.stage",
                Some(3),
                FaultAction::Panic,
            ));
            let e = run_scenario(&scenario()).unwrap_err();
            assert_eq!(e.exit_code(), 1, "{e}");
            assert!(e.message().contains("report stage panicked"), "{e}");
        }
    }
}
