//! A small, dependency-free parser for the TOML subset scenarios use.
//!
//! Supported: `[table]` / `[table.sub]` headers, `key = value` pairs
//! (dotted keys nest), integers, floats, booleans, double-quoted strings,
//! and flat arrays of those scalars. Comments (`#`) and blank lines are
//! skipped. Everything else — multi-line values, inline tables, array
//! tables, date-times — is rejected with a line-numbered error, which is
//! all a scenario file ever needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A double-quoted string.
    Str(String),
    /// A flat array of scalars.
    Array(Vec<TomlValue>),
    /// A nested table.
    Table(BTreeMap<String, TomlValue>),
}

impl TomlValue {
    /// Human-readable name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Str(_) => "string",
            TomlValue::Array(_) => "array",
            TomlValue::Table(_) => "table",
        }
    }

    /// The table contents, when this is a table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, TomlValue>> {
        match self {
            TomlValue::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// Line the problem was found on (0 when not line-specific).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a scenario document into its root table.
pub fn parse(text: &str) -> Result<BTreeMap<String, TomlValue>, TomlError> {
    let mut root: BTreeMap<String, TomlValue> = BTreeMap::new();
    let mut current: Vec<String> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unclosed table header"))?;
            if header.starts_with('[') {
                return Err(err(lineno, "array-of-tables is not supported"));
            }
            current = split_key(header, lineno)?;
            // Materialize the table so `[attack]` with no keys still exists.
            ensure_table(&mut root, &current, lineno)?;
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(lineno, format!("expected 'key = value', got '{line}'")))?;
        let key_part = line[..eq].trim();
        let value_part = line[eq + 1..].trim();
        if key_part.is_empty() {
            return Err(err(lineno, "missing key before '='"));
        }
        if value_part.is_empty() {
            return Err(err(lineno, format!("missing value for key '{key_part}'")));
        }
        let mut path = current.clone();
        path.extend(split_key(key_part, lineno)?);
        let value = parse_value(value_part, lineno)?;
        insert(&mut root, &path, value, lineno)?;
    }
    Ok(root)
}

/// Removes a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Splits a (possibly dotted) key into path segments.
pub(crate) fn split_key(key: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut out = Vec::new();
    for part in key.split('.') {
        let part = part.trim();
        if part.is_empty() {
            return Err(err(line, format!("empty segment in key '{key}'")));
        }
        if !part
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err(
                line,
                format!("key '{part}' has characters outside [A-Za-z0-9_-]"),
            ));
        }
        out.push(part.to_string());
    }
    Ok(out)
}

/// Walks/creates the table at `path`, erroring when a segment is occupied
/// by a non-table value.
fn ensure_table<'a>(
    root: &'a mut BTreeMap<String, TomlValue>,
    path: &[String],
    line: usize,
) -> Result<&'a mut BTreeMap<String, TomlValue>, TomlError> {
    let mut node = root;
    for seg in path {
        let entry = node
            .entry(seg.clone())
            .or_insert_with(|| TomlValue::Table(BTreeMap::new()));
        node = match entry {
            TomlValue::Table(t) => t,
            other => {
                return Err(err(
                    line,
                    format!("'{seg}' is a {}, not a table", other.type_name()),
                ))
            }
        };
    }
    Ok(node)
}

/// Inserts `value` at the dotted `path`, rejecting duplicates.
fn insert(
    root: &mut BTreeMap<String, TomlValue>,
    path: &[String],
    value: TomlValue,
    line: usize,
) -> Result<(), TomlError> {
    let (last, parents) = path.split_last().expect("split_key never returns empty");
    let table = ensure_table(root, parents, line)?;
    if table.contains_key(last) {
        return Err(err(line, format!("duplicate key '{last}'")));
    }
    table.insert(last.clone(), value);
    Ok(())
}

/// Parses one scalar or array literal (also used for `--set` overrides,
/// which share TOML's value grammar).
pub(crate) fn parse_value(text: &str, line: usize) -> Result<TomlValue, TomlError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .filter(|s| !s.contains('"'))
            .ok_or_else(|| err(line, format!("malformed string {text}")))?;
        return Ok(TomlValue::Str(inner.to_string()));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unclosed array (arrays must be single-line)"))?;
        let mut items = Vec::new();
        for piece in split_array(body, line)? {
            let item = parse_value(&piece, line)?;
            if matches!(item, TomlValue::Array(_)) {
                return Err(err(line, "nested arrays are not supported"));
            }
            items.push(item);
        }
        return Ok(TomlValue::Array(items));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let numeric = text.replace('_', "");
    if let Ok(v) = numeric.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    if let Ok(v) = numeric.parse::<f64>() {
        if v.is_finite() {
            return Ok(TomlValue::Float(v));
        }
    }
    Err(err(line, format!("cannot parse value '{text}'")))
}

/// Splits an array body on top-level commas, respecting quoted strings.
fn split_array(body: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut pieces = Vec::new();
    let mut depth_string = false;
    let mut start = 0usize;
    for (idx, c) in body.char_indices() {
        match c {
            '"' => depth_string = !depth_string,
            ',' if !depth_string => {
                pieces.push(body[start..idx].trim().to_string());
                start = idx + 1;
            }
            _ => {}
        }
    }
    if depth_string {
        return Err(err(line, "unterminated string inside array"));
    }
    let tail = body[start..].trim().to_string();
    if !tail.is_empty() {
        pieces.push(tail);
    }
    // Drop empty pieces only when they come from a trailing comma; interior
    // empties (",,") are malformed.
    if pieces.iter().any(String::is_empty) {
        return Err(err(line, "empty element in array"));
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
            name = "demo"          # trailing comment
            threads = 4
            ratio = 0.25
            flag = true
            [generator]
            model = "glp"
            n = 1_000
            [generator.params]
            p = 0.4695
            [attack]
            strategies = ["random", "degree-recalc"]
            sizes = [1, 2, 3]
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(root["name"], TomlValue::Str("demo".into()));
        assert_eq!(root["threads"], TomlValue::Int(4));
        assert_eq!(root["ratio"], TomlValue::Float(0.25));
        assert_eq!(root["flag"], TomlValue::Bool(true));
        let generator = root["generator"].as_table().unwrap();
        assert_eq!(generator["model"], TomlValue::Str("glp".into()));
        assert_eq!(generator["n"], TomlValue::Int(1000));
        let params = generator["params"].as_table().unwrap();
        assert_eq!(params["p"], TomlValue::Float(0.4695));
        let attack = root["attack"].as_table().unwrap();
        assert_eq!(
            attack["strategies"],
            TomlValue::Array(vec![
                TomlValue::Str("random".into()),
                TomlValue::Str("degree-recalc".into()),
            ])
        );
        assert_eq!(
            attack["sizes"],
            TomlValue::Array(vec![
                TomlValue::Int(1),
                TomlValue::Int(2),
                TomlValue::Int(3)
            ])
        );
    }

    #[test]
    fn dotted_keys_nest() {
        let root = parse("a.b.c = 1").unwrap();
        let a = root["a"].as_table().unwrap();
        let b = a["b"].as_table().unwrap();
        assert_eq!(b["c"], TomlValue::Int(1));
    }

    #[test]
    fn empty_section_still_exists() {
        let root = parse("[attack]").unwrap();
        assert!(root["attack"].as_table().unwrap().is_empty());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let root = parse(r##"tag = "a#b""##).unwrap();
        assert_eq!(root["tag"], TomlValue::Str("a#b".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (doc, needle) in [
            ("x", "expected 'key = value'"),
            ("[open", "unclosed table header"),
            ("[[t]]", "array-of-tables"),
            ("k = ", "missing value"),
            (" = 3", "missing key"),
            ("k = \"unterminated", "malformed string"),
            ("k = [1, 2", "unclosed array"),
            ("k = [1,, 2]", "empty element"),
            ("k = [[1]]", "nested arrays"),
            ("k = zebra", "cannot parse"),
            ("k = 1\nk = 2", "duplicate key"),
            ("k = 1\n[k]", "not a table"),
            ("bad key = 1", "characters outside"),
        ] {
            let e = parse(doc).unwrap_err();
            assert!(e.to_string().contains(needle), "{doc:?}: {e}");
            assert!(e.line > 0, "{doc:?}");
        }
        assert_eq!(parse("a = 1\nb = \n").unwrap_err().line, 2);
    }

    #[test]
    fn duplicate_table_headers_merge() {
        // Re-opening a table is accepted (TOML forbids it, but merging is
        // harmless here and keeps the parser small); duplicate *keys* are
        // still rejected.
        let root = parse("[t]\na = 1\n[t]\nb = 2").unwrap();
        let t = root["t"].as_table().unwrap();
        assert_eq!(t.len(), 2);
        assert!(parse("[t]\na = 1\n[t]\na = 2").is_err());
    }
}
