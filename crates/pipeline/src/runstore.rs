//! The crash-safe run store: `runs/<run-id>/` with a content-hashed
//! manifest, an append-only journal, and atomically written, checksummed
//! per-stage artifacts.
//!
//! ## Layout
//!
//! ```text
//! runs/<run-id>/
//!   manifest.json      identity: scenario + overrides + version, FNV-hashed
//!   scenario.toml      verbatim copy of the scenario document
//!   journal.jsonl      append-only begin/commit records, one JSON per line
//!   source.edges       stage-0 artifact (edge list of the topology)
//!   measure.txt        stage-1 artifact (rendered measurement block)
//!   attack.ckpt.json   stage-2 artifact (the sweep checkpoint, cell-level)
//!   summary.txt        stage-3 artifact (the rendered run summary)
//! ```
//!
//! ## Commit protocol
//!
//! A stage is *committed* when its commit record is in the journal. The
//! order is: write the artifact to `<name>.tmp`, fsync, rename into place
//! (the `artifact.rename` failpoint sits on the rename), then append the
//! commit record carrying the artifact's FNV-64 checksum (the
//! `journal.write` failpoint sits on every append). A crash between any
//! two steps leaves the stage uncommitted, and resume simply re-executes
//! it — artifacts are only trusted when a commit record with a matching
//! checksum exists. Torn trailing journal lines (a crash mid-append) are
//! ignored by the reader for the same reason.
//!
//! ## Crash matrix
//!
//! | crash point                         | on resume                       |
//! |-------------------------------------|---------------------------------|
//! | before the artifact `.tmp` write    | stage re-executes               |
//! | after `.tmp`, before rename         | stage re-executes, tmp ignored  |
//! | after rename, before journal append | stage re-executes, overwrites   |
//! | after the commit record             | stage replays from its artifact |
//!
//! The manifest hash covers the scenario text, every `--set` override, and
//! the crate version; [`RunStore::open`] refuses to resume when it no
//! longer matches, so a resumed run can never silently mix state from two
//! different experiments.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use inet_resilience::checkpoint::fnv64;

use crate::run::STAGE_NAMES;
use crate::PipelineError;

/// Default directory the CLI keeps run stores under.
pub const DEFAULT_RUNS_DIR: &str = "runs";
/// Manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Journal file name inside a run directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Stored scenario copy inside a run directory.
pub const SCENARIO_FILE: &str = "scenario.toml";
/// Version stamped into (and hashed into) every manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// One committed stage, as recorded in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Stage index (`pipeline.stage` scope).
    pub stage: usize,
    /// Artifact file name (relative to the run directory) or path.
    pub artifact: String,
    /// FNV-64 checksum of the artifact bytes at commit time.
    pub checksum: u64,
    /// Free-form stage detail replayed on resume (source description,
    /// warning lines, sink list).
    pub detail: String,
}

/// The parsed identity block of a run.
#[derive(Debug, Clone)]
struct Manifest {
    version: String,
    name: String,
    scenario_file: String,
    overrides: Vec<String>,
    content_hash: u64,
}

/// A handle on one `runs/<run-id>/` directory.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    id: String,
    manifest: Manifest,
}

fn data(msg: impl Into<String>) -> PipelineError {
    PipelineError::Data(msg.into())
}

/// The manifest content hash: scenario text, every override, and the
/// crate version, NUL-separated so field boundaries cannot collide.
fn content_hash(scenario_text: &str, overrides: &[String]) -> u64 {
    let mut bytes = Vec::with_capacity(scenario_text.len() + 64);
    bytes.extend_from_slice(scenario_text.as_bytes());
    bytes.push(0);
    for o in overrides {
        bytes.extend_from_slice(o.as_bytes());
        bytes.push(0);
    }
    bytes.extend_from_slice(VERSION.as_bytes());
    fnv64(&bytes)
}

/// Lowercases a scenario name into a directory-safe id stem.
fn sanitize(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars().take(32) {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        "run".to_string()
    } else {
        trimmed.to_string()
    }
}

impl RunStore {
    /// Creates a fresh run directory under `root`, stamping the manifest
    /// and the scenario copy. The id is `<name>-<hash8>`, with a numeric
    /// suffix on collision, so re-running the same scenario never clobbers
    /// an earlier run.
    pub fn create(
        root: &Path,
        name: &str,
        scenario_text: &str,
        scenario_file: &str,
        overrides: &[String],
    ) -> Result<RunStore, PipelineError> {
        fs::create_dir_all(root)
            .map_err(|e| data(format!("run store: {}: {e}", root.display())))?;
        let hash = content_hash(scenario_text, overrides);
        let base = format!("{}-{:08x}", sanitize(name), (hash >> 32) as u32);
        let mut id = base.clone();
        let mut k = 1usize;
        let dir = loop {
            let dir = root.join(&id);
            match fs::create_dir(&dir) {
                Ok(()) => break dir,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    k += 1;
                    if k > 10_000 {
                        return Err(data(format!("run store: cannot allocate an id for {base}")));
                    }
                    id = format!("{base}-{k}");
                }
                Err(e) => return Err(data(format!("run store: {}: {e}", dir.display()))),
            }
        };
        let manifest = Manifest {
            version: VERSION.to_string(),
            name: name.to_string(),
            scenario_file: scenario_file.to_string(),
            overrides: overrides.to_vec(),
            content_hash: hash,
        };
        let store = RunStore { dir, id, manifest };
        fs::write(store.dir.join(SCENARIO_FILE), scenario_text)
            .map_err(|e| data(format!("run store: scenario copy: {e}")))?;
        fs::write(store.dir.join(MANIFEST_FILE), store.render_manifest())
            .map_err(|e| data(format!("run store: manifest: {e}")))?;
        Ok(store)
    }

    /// Opens an existing run for resumption, verifying the manifest's
    /// content hash against the stored scenario, overrides, and this
    /// binary's version. A mismatch refuses with a diagnostic rather than
    /// resuming into a different experiment.
    pub fn open(root: &Path, id: &str) -> Result<RunStore, PipelineError> {
        let dir = root.join(id);
        if !dir.join(MANIFEST_FILE).is_file() {
            return Err(data(format!(
                "no run '{id}' under {} (try 'inet runs list')",
                root.display()
            )));
        }
        let manifest_text = fs::read_to_string(dir.join(MANIFEST_FILE))
            .map_err(|e| data(format!("run '{id}': manifest: {e}")))?;
        let manifest = parse_manifest(&manifest_text)
            .ok_or_else(|| data(format!("run '{id}': manifest.json is malformed")))?;
        let scenario_text = fs::read_to_string(dir.join(SCENARIO_FILE))
            .map_err(|e| data(format!("run '{id}': stored scenario: {e}")))?;
        let actual = content_hash(&scenario_text, &manifest.overrides);
        if actual != manifest.content_hash {
            let mut msg = format!(
                "run '{id}' refuses to resume: manifest hash {:016x} no longer matches the \
                 stored scenario + overrides (which hash to {actual:016x})",
                manifest.content_hash
            );
            if manifest.version != VERSION {
                let _ = write!(
                    msg,
                    "; the run was created by inet {} but this binary is {VERSION}",
                    manifest.version
                );
            }
            msg.push_str("; start a fresh run instead");
            return Err(PipelineError::CheckpointIncompatible(msg));
        }
        Ok(RunStore {
            dir,
            id: id.to_string(),
            manifest,
        })
    }

    /// The run id (`runs list` / `--resume` handle).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A path inside the run directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// The stored scenario document, verbatim.
    pub fn scenario_text(&self) -> Result<String, PipelineError> {
        fs::read_to_string(self.dir.join(SCENARIO_FILE))
            .map_err(|e| data(format!("run '{}': stored scenario: {e}", self.id)))
    }

    /// The `--set` overrides recorded at creation, replayed on resume.
    pub fn overrides(&self) -> &[String] {
        &self.manifest.overrides
    }

    /// The scenario file path the run was started from (informational).
    pub fn scenario_file(&self) -> &str {
        &self.manifest.scenario_file
    }

    fn render_manifest(&self) -> String {
        let overrides = self
            .manifest
            .overrides
            .iter()
            .map(|o| format!("\"{}\"", escape_json(o)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"version\": \"{}\",\n  \"run\": \"{}\",\n  \"name\": \"{}\",\n  \
             \"scenario_file\": \"{}\",\n  \"overrides\": [{overrides}],\n  \
             \"content_hash\": \"{:016x}\"\n}}\n",
            escape_json(&self.manifest.version),
            escape_json(&self.id),
            escape_json(&self.manifest.name),
            escape_json(&self.manifest.scenario_file),
            self.manifest.content_hash,
        )
    }

    /// Appends one line to the journal, fsynced, behind the
    /// `journal.write` failpoint (scope = stage index).
    fn append(&self, stage: usize, line: &str) -> Result<(), PipelineError> {
        inet_fault::check("journal.write", stage as u64)
            .map_err(|e| data(format!("run '{}': journal: {e}", self.id)))?;
        let path = self.dir.join(JOURNAL_FILE);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| data(format!("run '{}': journal: {e}", self.id)))?;
        f.write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .and_then(|()| f.sync_all())
            .map_err(|e| data(format!("run '{}': journal: {e}", self.id)))
    }

    /// Journals the start of a stage.
    pub fn begin(&self, stage: usize) -> Result<(), PipelineError> {
        self.append(
            stage,
            &format!(
                r#"{{"event":"begin","stage":{stage},"name":"{}"}}"#,
                STAGE_NAMES[stage]
            ),
        )
    }

    fn append_commit(
        &self,
        stage: usize,
        artifact: &str,
        checksum: u64,
        detail: &str,
    ) -> Result<(), PipelineError> {
        self.append(
            stage,
            &format!(
                r#"{{"event":"commit","stage":{stage},"name":"{}","artifact":"{}","checksum":"{checksum:016x}","detail":"{}"}}"#,
                STAGE_NAMES[stage],
                escape_json(artifact),
                escape_json(detail)
            ),
        )
    }

    /// Commits a stage whose artifact is `bytes`: atomic tmp-write +
    /// rename (the `artifact.rename` failpoint sits on the rename), then
    /// the journal record with the content checksum.
    pub fn commit_bytes(
        &self,
        stage: usize,
        artifact: &str,
        bytes: &[u8],
        detail: &str,
    ) -> Result<(), PipelineError> {
        let tmp = self.dir.join(format!("{artifact}.tmp"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()
        };
        write().map_err(|e| data(format!("run '{}': artifact '{artifact}': {e}", self.id)))?;
        inet_fault::check("artifact.rename", stage as u64)
            .map_err(|e| data(format!("run '{}': artifact '{artifact}': {e}", self.id)))?;
        fs::rename(&tmp, self.dir.join(artifact))
            .map_err(|e| data(format!("run '{}': artifact '{artifact}': {e}", self.id)))?;
        self.append_commit(stage, artifact, fnv64(bytes), detail)
    }

    /// Commits a stage whose artifact already exists on disk (the attack
    /// checkpoint, written atomically by the checkpoint layer itself):
    /// records its checksum without rewriting it.
    pub fn commit_external(
        &self,
        stage: usize,
        artifact_path: &Path,
        detail: &str,
    ) -> Result<(), PipelineError> {
        let bytes = fs::read(artifact_path).map_err(|e| {
            data(format!(
                "run '{}': artifact '{}': {e}",
                self.id,
                artifact_path.display()
            ))
        })?;
        let artifact = match artifact_path.strip_prefix(&self.dir) {
            Ok(rel) => rel.display().to_string(),
            Err(_) => artifact_path.display().to_string(),
        };
        self.append_commit(stage, &artifact, fnv64(&bytes), detail)
    }

    /// The latest commit record per stage (last record wins, torn or
    /// malformed lines ignored — see the crash matrix).
    pub fn committed(&self) -> Vec<Option<CommitRecord>> {
        committed_in(&self.dir)
    }

    /// Loads a committed artifact and verifies its checksum. A mismatch
    /// (silent corruption, or a crash that journaled before the rename
    /// landed) is an error the caller degrades to re-execution.
    pub fn load_artifact(&self, rec: &CommitRecord) -> Result<Vec<u8>, PipelineError> {
        let path = self.dir.join(&rec.artifact);
        let bytes = fs::read(&path).map_err(|e| {
            data(format!(
                "run '{}': artifact '{}': {e}",
                self.id, rec.artifact
            ))
        })?;
        let actual = fnv64(&bytes);
        if actual != rec.checksum {
            return Err(data(format!(
                "run '{}': artifact '{}' failed its checksum (journal {:016x}, file {actual:016x})",
                self.id, rec.artifact, rec.checksum
            )));
        }
        Ok(bytes)
    }
}

/// Writes `bytes` to `dir/name` atomically (tmp write + fsync + rename),
/// with no journal record and no failpoint — for side artifacts like
/// `telemetry.json` that sit outside the stage-commit protocol.
pub(crate) fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join(name))
}

fn committed_in(dir: &Path) -> Vec<Option<CommitRecord>> {
    let mut out: Vec<Option<CommitRecord>> = vec![None; STAGE_NAMES.len()];
    let Ok(text) = fs::read_to_string(dir.join(JOURNAL_FILE)) else {
        return out;
    };
    for line in text.lines() {
        let Some(obj) = parse_flat(line) else {
            continue; // torn trailing line from a crash mid-append
        };
        if obj.get("event").and_then(JsonVal::as_str) != Some("commit") {
            continue;
        }
        let Some(stage) = obj
            .get("stage")
            .and_then(JsonVal::as_int)
            .and_then(|v| usize::try_from(v).ok())
            .filter(|s| *s < out.len())
        else {
            continue;
        };
        let Some(checksum) = obj
            .get("checksum")
            .and_then(JsonVal::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            continue;
        };
        out[stage] = Some(CommitRecord {
            stage,
            artifact: obj
                .get("artifact")
                .and_then(JsonVal::as_str)
                .unwrap_or_default()
                .to_string(),
            checksum,
            detail: obj
                .get("detail")
                .and_then(JsonVal::as_str)
                .unwrap_or_default()
                .to_string(),
        });
    }
    out
}

/// One run's identity + progress, for `inet runs list`.
#[derive(Debug)]
pub struct RunInfo {
    /// The run id (the directory name).
    pub id: String,
    /// The scenario display name from the manifest.
    pub name: String,
    /// Which stages have commit records.
    pub committed: Vec<bool>,
}

impl RunInfo {
    /// `complete`, or `at <stage>` naming the first uncommitted stage.
    pub fn status(&self) -> String {
        match self.committed.iter().position(|c| !c) {
            None => "complete".to_string(),
            Some(i) => format!("at {}", STAGE_NAMES[i]),
        }
    }
}

/// The result of scanning a runs directory: the readable runs plus one
/// warning line per directory that had to be skipped (missing, torn, or
/// malformed manifest) — a single corrupted run must degrade to a
/// warning, never abort the whole listing.
#[derive(Debug, Default)]
pub struct RunScan {
    /// Every run with a readable, well-formed manifest, sorted by id.
    pub runs: Vec<RunInfo>,
    /// One human-readable line per skipped directory.
    pub skipped: Vec<String>,
}

/// Scans every entry under `root`: directories with a parseable manifest
/// become [`RunInfo`]s; directories without one are reported in
/// [`RunScan::skipped`] with a one-line reason. Plain files (editor
/// droppings, lock files) are ignored silently.
pub fn scan_runs(root: &Path) -> RunScan {
    let Ok(entries) = fs::read_dir(root) else {
        return RunScan::default();
    };
    let mut scan = RunScan::default();
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        let id = entry.file_name().to_string_lossy().into_owned();
        match fs::read_to_string(dir.join(MANIFEST_FILE)) {
            Err(e) => scan
                .skipped
                .push(format!("{id}: unreadable {MANIFEST_FILE}: {e}")),
            Ok(text) => match parse_manifest(&text) {
                None => scan
                    .skipped
                    .push(format!("{id}: {MANIFEST_FILE} is torn or malformed")),
                Some(manifest) => scan.runs.push(RunInfo {
                    id,
                    name: manifest.name,
                    committed: committed_in(&dir).iter().map(Option::is_some).collect(),
                }),
            },
        }
    }
    scan.runs.sort_by(|a, b| a.id.cmp(&b.id));
    scan.skipped.sort();
    scan
}

/// Lists every readable run under `root`, sorted by id. Directories
/// without a parseable manifest are skipped (see [`scan_runs`] for the
/// variant that reports them).
pub fn list_runs(root: &Path) -> Vec<RunInfo> {
    scan_runs(root).runs
}

fn parse_manifest(text: &str) -> Option<Manifest> {
    let obj = parse_flat(text)?;
    Some(Manifest {
        version: obj.get("version").and_then(JsonVal::as_str)?.to_string(),
        name: obj.get("name").and_then(JsonVal::as_str)?.to_string(),
        scenario_file: obj
            .get("scenario_file")
            .and_then(JsonVal::as_str)
            .unwrap_or_default()
            .to_string(),
        overrides: match obj.get("overrides")? {
            JsonVal::Arr(items) => items.clone(),
            _ => return None,
        },
        content_hash: obj
            .get("content_hash")
            .and_then(JsonVal::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())?,
    })
}

// ---------------------------------------------------------------------
// Minimal flat-JSON reader for the store's own documents and the serve
// protocol: one object of string / integer / string-array values.
// Anything else is `None`.

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonVal {
    Str(String),
    Int(i64),
    Arr(Vec<String>),
}

impl JsonVal {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Option<i64> {
        match self {
            JsonVal::Int(v) => Some(*v),
            _ => None,
        }
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl Reader<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next_byte(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn eat(&mut self, want: u8) -> Option<()> {
        (self.next_byte()? == want).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Some(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next_byte()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.i - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.b.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.i = start + len;
                }
            }
        }
    }

    fn int(&mut self) -> Option<i64> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }
}

/// Parses one flat JSON object (string, integer, or string-array values).
pub(crate) fn parse_flat(text: &str) -> Option<BTreeMap<String, JsonVal>> {
    let mut r = Reader {
        b: text.as_bytes(),
        i: 0,
    };
    r.ws();
    r.eat(b'{')?;
    let mut map = BTreeMap::new();
    r.ws();
    if r.peek() == Some(b'}') {
        return Some(map);
    }
    loop {
        r.ws();
        let key = r.string()?;
        r.ws();
        r.eat(b':')?;
        r.ws();
        let val = match r.peek()? {
            b'"' => JsonVal::Str(r.string()?),
            b'[' => {
                r.i += 1;
                let mut items = Vec::new();
                r.ws();
                if r.peek() == Some(b']') {
                    r.i += 1;
                } else {
                    loop {
                        r.ws();
                        items.push(r.string()?);
                        r.ws();
                        match r.next_byte()? {
                            b',' => continue,
                            b']' => break,
                            _ => return None,
                        }
                    }
                }
                JsonVal::Arr(items)
            }
            _ => JsonVal::Int(r.int()?),
        };
        map.insert(key, val);
        r.ws();
        match r.next_byte()? {
            b',' => continue,
            b'}' => return Some(map),
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("inet_runstore_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const DOC: &str = "[generator]\nmodel = \"ba\"\nn = 60\n";

    #[test]
    fn create_open_round_trips_the_manifest() {
        let root = temp_root("roundtrip");
        let sets = vec!["n=200".to_string(), "attack.replicas=2".to_string()];
        let store = RunStore::create(&root, "serrano attack", DOC, "s.toml", &sets).unwrap();
        assert!(store.id().starts_with("serrano-attack-"), "{}", store.id());
        let reopened = RunStore::open(&root, store.id()).unwrap();
        assert_eq!(reopened.overrides(), &sets[..]);
        assert_eq!(reopened.scenario_file(), "s.toml");
        assert_eq!(reopened.scenario_text().unwrap(), DOC);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn same_scenario_twice_gets_distinct_ids() {
        let root = temp_root("collision");
        let a = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        let b = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        assert_ne!(a.id(), b.id());
        assert!(b.id().starts_with(a.id()), "{} vs {}", a.id(), b.id());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_scenario_refuses_to_resume_with_exit_5() {
        let root = temp_root("tamper");
        let store = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        fs::write(store.path(SCENARIO_FILE), DOC.replace("60", "61")).unwrap();
        let e = RunStore::open(&root, store.id()).unwrap_err();
        assert_eq!(e.exit_code(), 5, "{e}");
        assert!(e.message().contains("refuses to resume"), "{e}");
        assert!(e.message().contains("hash"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_run_is_a_data_error_naming_runs_list() {
        let root = temp_root("missing");
        let e = RunStore::open(&root, "nope-12345678").unwrap_err();
        assert_eq!(e.exit_code(), 4, "{e}");
        assert!(e.message().contains("inet runs list"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_journal_and_artifact_round_trip() {
        let root = temp_root("commit");
        let store = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        assert_eq!(store.committed(), vec![None, None, None, None]);
        store.begin(0).unwrap();
        let detail = "generated \"BA\"\nwith newline\tand tab";
        store
            .commit_bytes(0, "source.edges", b"0 1 1\n", detail)
            .unwrap();
        let committed = store.committed();
        let rec = committed[0].as_ref().unwrap();
        assert_eq!(rec.stage, 0);
        assert_eq!(rec.artifact, "source.edges");
        assert_eq!(rec.detail, detail, "detail must survive JSON escaping");
        assert_eq!(store.load_artifact(rec).unwrap(), b"0 1 1\n");
        assert!(committed[1].is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_artifact_fails_its_checksum() {
        let root = temp_root("corrupt");
        let store = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        store
            .commit_bytes(0, "source.edges", b"0 1 1\n", "d")
            .unwrap();
        fs::write(store.path("source.edges"), b"9 9 9\n").unwrap();
        let committed = store.committed();
        let e = store
            .load_artifact(committed[0].as_ref().unwrap())
            .unwrap_err();
        assert_eq!(e.exit_code(), 4);
        assert!(e.message().contains("failed its checksum"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_journal_tail_leaves_the_stage_uncommitted() {
        let root = temp_root("torn");
        let store = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        store
            .commit_bytes(0, "source.edges", b"0 1 1\n", "")
            .unwrap();
        // Simulate a crash mid-append of the stage-1 commit record.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(store.path(JOURNAL_FILE))
            .unwrap();
        f.write_all(br#"{"event":"commit","stage":1,"name":"meas"#)
            .unwrap();
        drop(f);
        let committed = store.committed();
        assert!(committed[0].is_some());
        assert!(committed[1].is_none(), "torn record must not count");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_external_records_a_run_relative_name() {
        let root = temp_root("external");
        let store = RunStore::create(&root, "ba", DOC, "s.toml", &[]).unwrap();
        fs::write(store.path("attack.ckpt.json"), b"{}\n").unwrap();
        store
            .commit_external(2, &store.path("attack.ckpt.json"), "")
            .unwrap();
        let committed = store.committed();
        let rec = committed[2].as_ref().unwrap();
        assert_eq!(rec.artifact, "attack.ckpt.json");
        assert_eq!(store.load_artifact(rec).unwrap(), b"{}\n");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_runs_reports_progress() {
        let root = temp_root("list");
        assert!(list_runs(&root.join("void")).is_empty());
        let a = RunStore::create(&root, "Alpha Run", DOC, "s.toml", &[]).unwrap();
        let b = RunStore::create(&root, "beta", DOC, "s.toml", &[]).unwrap();
        a.commit_bytes(0, "source.edges", b"x", "").unwrap();
        for stage in 0..STAGE_NAMES.len() {
            b.commit_bytes(stage, "a.bin", b"x", "").unwrap();
        }
        let infos = list_runs(&root);
        assert_eq!(infos.len(), 2);
        let alpha = infos.iter().find(|i| i.id == a.id()).unwrap();
        assert_eq!(alpha.name, "Alpha Run");
        assert_eq!(alpha.status(), "at measure");
        let beta = infos.iter().find(|i| i.id == b.id()).unwrap();
        assert_eq!(beta.status(), "complete");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_runs_warns_about_corrupted_directories_instead_of_aborting() {
        let root = temp_root("scan");
        let good = RunStore::create(&root, "good", DOC, "s.toml", &[]).unwrap();
        // A torn manifest (crash mid-write), a directory with no manifest
        // at all, and a stray plain file must all leave the listing alive.
        let torn = RunStore::create(&root, "torn", DOC, "s.toml", &[]).unwrap();
        fs::write(torn.path(MANIFEST_FILE), "{\"version\": \"0.").unwrap();
        fs::create_dir(root.join("empty-dir")).unwrap();
        fs::write(root.join("stray.txt"), "not a run").unwrap();
        let scan = scan_runs(&root);
        assert_eq!(scan.runs.len(), 1, "{:?}", scan.runs);
        assert_eq!(scan.runs[0].id, good.id());
        assert_eq!(scan.skipped.len(), 2, "{:?}", scan.skipped);
        assert!(
            scan.skipped.iter().any(|w| w.contains("empty-dir")),
            "{:?}",
            scan.skipped
        );
        assert!(
            scan.skipped
                .iter()
                .any(|w| w.contains(torn.id()) && w.contains("torn or malformed")),
            "{:?}",
            scan.skipped
        );
        // The plain listing stays corruption-tolerant too.
        assert_eq!(list_runs(&root).len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flat_json_reader_handles_escapes_and_rejects_junk() {
        let obj =
            parse_flat(r#"{"a": "x\n\"y\"", "b": 42, "c": ["p", "q"], "d": "\u0007"}"#).unwrap();
        assert_eq!(obj.get("a").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(obj.get("b").unwrap().as_int(), Some(42));
        assert_eq!(
            obj.get("c"),
            Some(&JsonVal::Arr(vec!["p".to_string(), "q".to_string()]))
        );
        assert_eq!(obj.get("d").unwrap().as_str(), Some("\u{7}"));
        assert!(parse_flat("{\"a\": ").is_none());
        assert!(parse_flat("not json").is_none());
        assert_eq!(
            parse_flat(&format!("{{\"s\": \"{}\"}}", escape_json("ü—\u{1}")))
                .unwrap()
                .get("s")
                .unwrap()
                .as_str(),
            Some("ü—\u{1}")
        );
    }
}
