//! The per-run telemetry artifact: `telemetry.json` in the run directory.
//!
//! Every journaled run persists the span tree its driving thread recorded
//! (captured via [`inet_obs::span::capture`], so concurrent jobs in the
//! same daemon never contaminate each other). The artifact accumulates
//! across sessions: a resumed run **appends** a new session rather than
//! overwriting, so `inet trace <run-id>` reports the cumulative truth —
//! the crashed attempt's spans and the resumed attempt's spans, in order.
//!
//! Telemetry is inert by contract: the artifact is written through the
//! same atomic tmp-fsync-rename path as stage artifacts but outside the
//! journal protocol, and every persistence failure is swallowed by the
//! caller — a run can never fail because its timing file could not be
//! written. The file carries its own FNV-64 checksum; a torn or tampered
//! file loads as empty (the next session starts a fresh accumulation)
//! instead of erroring.

use std::path::Path;

use inet_obs::span::{render_tree, SpanRecord};
use inet_resilience::checkpoint::fnv64;

use crate::runstore::{self, escape_json, parse_flat, JsonVal, RunStore};

/// Telemetry artifact file name inside a run directory.
pub const TELEMETRY_FILE: &str = "telemetry.json";

/// The accumulated span tree of one run, across every session that worked
/// on it (initial run + resumes).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// How many sessions (initial run + resumes) contributed spans.
    pub sessions: u64,
    /// Every span, parents as indices into this vector; sessions are
    /// time-shifted so they sequence one after another.
    pub spans: Vec<SpanRecord>,
}

impl Telemetry {
    /// Loads the artifact at `path`. Missing, torn, malformed, or
    /// checksum-failing files all load as `None` — the caller degrades to
    /// an empty accumulation, never an error.
    pub fn load_path(path: &Path) -> Option<Telemetry> {
        let text = std::fs::read_to_string(path).ok()?;
        let obj = parse_flat(&text)?;
        let sessions = u64::try_from(obj.get("sessions").and_then(JsonVal::as_int)?).ok()?;
        let lines = match obj.get("spans")? {
            JsonVal::Arr(items) => items.clone(),
            _ => return None,
        };
        let checksum = obj
            .get("checksum")
            .and_then(JsonVal::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())?;
        if fnv64(lines.join("\n").as_bytes()) != checksum {
            return None;
        }
        let spans = lines
            .iter()
            .map(|l| SpanRecord::parse_line(l))
            .collect::<Option<Vec<_>>>()?;
        Some(Telemetry { sessions, spans })
    }

    /// Loads the run's telemetry, or an empty accumulation when the run
    /// has none yet (pre-telemetry runs, torn files).
    pub fn load(store: &RunStore) -> Telemetry {
        Telemetry::load_path(&store.path(TELEMETRY_FILE)).unwrap_or_default()
    }

    /// Appends one session's span batch: parents are rebased onto this
    /// accumulation and start times shifted so the new session sequences
    /// after everything already stored (sessions never interleave).
    pub fn append(&mut self, records: Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        let base = self.len_us();
        let first = records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let offset = self.spans.len();
        for mut r in records {
            r.start_us = base.saturating_add(r.start_us.saturating_sub(first));
            r.parent = r.parent.map(|p| p + offset);
            self.spans.push(r);
        }
        self.sessions += 1;
    }

    /// The latest end time stored, in microseconds — where the next
    /// session's clock starts.
    fn len_us(&self) -> u64 {
        self.spans
            .iter()
            .map(|r| r.start_us.saturating_add(r.dur_us))
            .max()
            .unwrap_or(0)
    }

    /// Renders the artifact: flat JSON with the span lines and their
    /// FNV-64 checksum.
    pub fn render(&self) -> String {
        let lines: Vec<String> = self.spans.iter().map(SpanRecord::to_line).collect();
        let checksum = fnv64(lines.join("\n").as_bytes());
        let spans = lines
            .iter()
            .map(|l| format!("\"{}\"", escape_json(l)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"version\": 1,\n  \"sessions\": {},\n  \"spans\": [{spans}],\n  \
             \"checksum\": \"{checksum:016x}\"\n}}\n",
            self.sessions
        )
    }

    /// Persists atomically into the run directory (no journal record —
    /// telemetry sits outside the commit protocol).
    pub fn save(&self, store: &RunStore) -> std::io::Result<()> {
        runstore::atomic_write(store.dir(), TELEMETRY_FILE, self.render().as_bytes())
    }

    /// The stored span tree as an indented table with self/total times.
    pub fn render_trace(&self) -> String {
        render_tree(&self.spans)
    }

    /// `(total wall microseconds, stage-span count)` for `runs list
    /// --stats`: wall time sums the root `run` spans (one per session),
    /// stages count both executed (`pipeline.stage`) and replayed
    /// (`pipeline.replay`) stage spans.
    pub fn totals(&self) -> (u64, usize) {
        let total = self
            .spans
            .iter()
            .filter(|r| r.name == "run" && r.parent.is_none())
            .map(|r| r.dur_us)
            .fold(0, u64::saturating_add);
        let stages = self
            .spans
            .iter()
            .filter(|r| r.name == "pipeline.stage" || r.name == "pipeline.replay")
            .count();
        (total, stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("inet_telemetry_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn span(
        name: &str,
        scope: u64,
        start_us: u64,
        dur_us: u64,
        parent: Option<usize>,
    ) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            scope,
            thread: 0,
            start_us,
            dur_us,
            parent,
        }
    }

    #[test]
    fn save_load_round_trips_through_the_store() {
        let root = temp_root("roundtrip");
        let store = RunStore::create(
            &root,
            "t",
            "[generator]\nmodel = \"ba\"\nn = 10\n",
            "s.toml",
            &[],
        )
        .unwrap();
        let mut t = Telemetry::default();
        t.append(vec![
            span("run", 0, 50, 900, None),
            span("pipeline.stage", 0, 60, 400, Some(0)),
        ]);
        t.save(&store).unwrap();
        let back = Telemetry::load(&store);
        assert_eq!(back, t);
        assert_eq!(back.sessions, 1);
        // The first session is rebased to start at 0.
        assert_eq!(back.spans[0].start_us, 0);
        assert_eq!(back.spans[1].start_us, 10);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn append_sequences_sessions_and_rebases_parents() {
        let mut t = Telemetry::default();
        t.append(vec![
            span("run", 0, 100, 1_000, None),
            span("pipeline.stage", 1, 150, 500, Some(0)),
        ]);
        t.append(vec![
            span("run", 0, 9_000, 2_000, None),
            span("pipeline.replay", 0, 9_010, 30, Some(0)),
        ]);
        assert_eq!(t.sessions, 2);
        assert_eq!(t.spans.len(), 4);
        // Session 2 starts where session 1 ended (at 1_000 us).
        assert_eq!(t.spans[2].start_us, 1_000);
        assert_eq!(t.spans[3].start_us, 1_010);
        assert_eq!(t.spans[3].parent, Some(2), "parent rebased onto the store");
        let (total, stages) = t.totals();
        assert_eq!(total, 3_000, "both sessions' run roots counted");
        assert_eq!(stages, 2, "one executed + one replayed stage");
    }

    #[test]
    fn torn_or_tampered_files_load_as_empty() {
        let root = temp_root("torn");
        let store = RunStore::create(
            &root,
            "t",
            "[generator]\nmodel = \"ba\"\nn = 10\n",
            "s.toml",
            &[],
        )
        .unwrap();
        assert_eq!(Telemetry::load(&store), Telemetry::default(), "missing");
        std::fs::write(store.path(TELEMETRY_FILE), "{\"version\": 1, \"sess").unwrap();
        assert_eq!(Telemetry::load(&store), Telemetry::default(), "torn");
        let mut t = Telemetry::default();
        t.append(vec![span("run", 0, 0, 10, None)]);
        let tampered = t.render().replace("run|", "fun|");
        std::fs::write(store.path(TELEMETRY_FILE), tampered).unwrap();
        assert_eq!(
            Telemetry::load(&store),
            Telemetry::default(),
            "checksum mismatch degrades to empty"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn render_trace_shows_the_tree() {
        let mut t = Telemetry::default();
        t.append(vec![
            span("run", 0, 0, 10_000, None),
            span("pipeline.stage", 2, 100, 4_000, Some(0)),
        ]);
        let table = t.render_trace();
        assert!(table.contains("run[0]"), "{table}");
        assert!(table.contains("  pipeline.stage[2]"), "{table}");
        assert_eq!(Telemetry::default().render_trace(), "(no spans recorded)\n");
    }
}
