//! The declarative [`Scenario`]: a validated description of one experiment.
//!
//! A scenario is authored as TOML (or built programmatically by the CLI's
//! thin `generate`/`measure`/`attack` builders) and fully validated *before*
//! anything runs: model names go through the generator registry (with
//! did-you-mean suggestions), parameters through each model's typed schema,
//! metric names through [`KernelSelection::from_names`], and strategy names
//! through [`Strategy::parse`]. A scenario that parses is a scenario whose
//! knobs all exist.
//!
//! ## File format
//!
//! ```toml
//! name = "serrano attack sweep"          # optional
//! description = "fig 7 reproduction"     # optional
//! threads = 4                            # optional; default = all cores
//! check_invariants = false               # optional; extra graph validation
//!
//! [generator]                            # exactly one of [generator]/[input]
//! model = "serrano"                      # any registry name
//! seed = 42                              # optional; default 42
//! n = 500                                # every other key is a model param
//!
//! [generator.params]                     # optional, merged with the above
//! alpha = 0.035
//!
//! [input]                                # alternative source: an edge list
//! path = "graph.txt"                     # "-" reads stdin
//!
//! [measure]                              # optional stage
//! metrics = ["degree", "giant"]          # optional; default = all kernels
//! deadline_ms = 30000                    # optional soft deadline
//! path_sources = 400                     # optional sampling knobs
//! betweenness_sources = 200
//!
//! [attack]                               # optional stage
//! strategies = ["random", "degree"]      # optional; this is the default
//! replicas = 4                           # optional; 1..=10000
//! record = 0                             # optional; 0 = auto granularity
//! seed = 42                              # optional; default = generator seed
//! checkpoint = "sweep.ckpt"              # optional resume file
//! bc_sources = 64                        # optional betweenness sampling
//!
//! [report]                               # optional sinks
//! edge_list = "out.txt"                  # "-" writes stdout
//! curves = "curves/"                     # per-cell CSV directory
//! summary = "summary.txt"                # the rendered report text
//! ```
//!
//! `--set key=value` overrides re-use the same value grammar: a bare key
//! targets `[generator]` (so `--set n=200` shrinks any scenario), a dotted
//! key targets an existing section (`--set attack.replicas=8`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use inet_generators::{lookup, ModelSpec, ParamValue, Params};
use inet_metrics::KernelSelection;
use inet_resilience::Strategy;

use crate::toml::{self, TomlValue};
use crate::PipelineError;

/// Node-count bounds shared with the legacy CLI flags.
pub const N_RANGE: std::ops::RangeInclusive<usize> = 8..=500_000;
/// Replica bounds shared with the legacy CLI flags.
pub const REPLICA_RANGE: std::ops::RangeInclusive<usize> = 1..=10_000;

/// Default seed when a scenario does not pick one.
pub const DEFAULT_SEED: u64 = 42;

type Table = BTreeMap<String, TomlValue>;

/// Where the topology comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// Grow it from a registered model.
    Generator(GeneratorSpec),
    /// Load an edge list from a file, or stdin when the path is `-`.
    Input {
        /// File path, or `-` for stdin.
        path: String,
    },
}

/// A resolved generator invocation: registry entry + typed parameters.
#[derive(Debug, Clone)]
pub struct GeneratorSpec {
    /// The registry entry (name, schema, builder).
    pub spec: &'static ModelSpec,
    /// Fully resolved parameters (defaults filled in, types checked).
    pub params: Params,
    /// RNG seed for generation.
    pub seed: u64,
}

/// The measurement stage: which kernels, how sampled, how long.
#[derive(Debug, Clone, Copy)]
pub struct MeasureSpec {
    /// Kernels to run; deselected kernels report as skipped.
    pub selection: KernelSelection,
    /// Soft deadline in milliseconds; `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// BFS sources sampled for path statistics.
    pub path_sources: usize,
    /// Sources sampled for betweenness.
    pub betweenness_sources: usize,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        let defaults = inet_metrics::ReportOptions::default();
        MeasureSpec {
            selection: KernelSelection::all(),
            deadline_ms: None,
            path_sources: defaults.path_sources,
            betweenness_sources: defaults.betweenness_sources,
        }
    }
}

/// The attack stage: a percolation sweep over the full graph.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Strategies, in report order.
    pub strategies: Vec<Strategy>,
    /// Replicas per stochastic strategy.
    pub replicas: usize,
    /// Curve granularity; `0` = automatic (≈200 points).
    pub record_every: usize,
    /// Base seed for the sweep's RNG streams.
    pub seed: u64,
    /// Checkpoint file to resume from / write to.
    pub checkpoint: Option<PathBuf>,
    /// Betweenness sources for betweenness-driven strategies.
    pub bc_sources: usize,
}

impl AttackSpec {
    /// The legacy `inet attack` defaults with the given base seed.
    pub fn with_seed(seed: u64) -> AttackSpec {
        AttackSpec {
            strategies: vec![Strategy::Random, Strategy::Degree { recalc: false }],
            replicas: 4,
            record_every: 0,
            seed,
            checkpoint: None,
            bc_sources: 64,
        }
    }
}

/// Where results land. All sinks are optional; the run summary always
/// comes back in-memory on [`crate::RunOutcome`].
#[derive(Debug, Clone, Default)]
pub struct ReportSpec {
    /// Write the (possibly generated) topology as an edge list; `-` = stdout.
    pub edge_list: Option<String>,
    /// Directory for per-cell attack curve CSVs.
    pub curves: Option<PathBuf>,
    /// File for the rendered summary text.
    pub summary: Option<PathBuf>,
}

/// One validated experiment: source → optional measure → optional attack
/// → report sinks.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (defaults to the model or input path).
    pub name: String,
    /// Free-form description; informational only.
    pub description: String,
    /// Worker threads; `None` = all cores.
    pub threads: Option<usize>,
    /// Run full graph-invariant validation after loading/generating.
    pub check_invariants: bool,
    /// Where the topology comes from.
    pub source: Source,
    /// Measurement stage, when present.
    pub measure: Option<MeasureSpec>,
    /// Attack stage, when present.
    pub attack: Option<AttackSpec>,
    /// Output sinks.
    pub report: ReportSpec,
}

fn bad(msg: impl Into<String>) -> PipelineError {
    PipelineError::Scenario(msg.into())
}

impl Scenario {
    /// A scenario skeleton with no stages; the CLI builders start here.
    pub fn new(name: impl Into<String>, source: Source) -> Scenario {
        Scenario {
            name: name.into(),
            description: String::new(),
            threads: None,
            check_invariants: false,
            source,
            measure: None,
            attack: None,
            report: ReportSpec::default(),
        }
    }

    /// Builds a generator-backed scenario from a model name and parameter
    /// overrides — the programmatic twin of a `[generator]` section. Unlike
    /// the TOML path this skips the node-count range check: CLI callers
    /// enforce their own argument ranges, and out-of-domain sizes still
    /// surface from the model builder as model errors.
    pub fn from_generator(
        model: &str,
        overrides: &BTreeMap<String, ParamValue>,
        seed: u64,
    ) -> Result<Scenario, PipelineError> {
        let spec = lookup(model).map_err(|e| bad(e.to_string()))?;
        let params = spec.resolve(overrides).map_err(|e| bad(e.to_string()))?;
        Ok(Scenario::new(
            spec.name,
            Source::Generator(GeneratorSpec { spec, params, seed }),
        ))
    }

    /// Parses a scenario document.
    pub fn parse(text: &str) -> Result<Scenario, PipelineError> {
        Scenario::parse_with_overrides::<&str>(text, &[])
    }

    /// Parses a scenario document, then applies `--set key=value` overrides
    /// before validation.
    pub fn parse_with_overrides<S: AsRef<str>>(
        text: &str,
        sets: &[S],
    ) -> Result<Scenario, PipelineError> {
        let mut root = toml::parse(text).map_err(|e| bad(format!("scenario: {e}")))?;
        for set in sets {
            apply_override(&mut root, set.as_ref())?;
        }
        Scenario::from_root(&root)
    }

    /// Reads and parses a scenario file. Unreadable files are data errors
    /// (exit 4); malformed contents are scenario errors (exit 2).
    pub fn load<S: AsRef<str>>(
        path: &std::path::Path,
        sets: &[S],
    ) -> Result<Scenario, PipelineError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            PipelineError::Data(format!("cannot read scenario '{}': {e}", path.display()))
        })?;
        Scenario::parse_with_overrides(&text, sets).map_err(|e| match e {
            PipelineError::Scenario(m) => bad(format!("{}: {m}", path.display())),
            other => other,
        })
    }

    fn from_root(root: &Table) -> Result<Scenario, PipelineError> {
        reject_unknown(
            "scenario",
            root,
            &[
                "name",
                "description",
                "threads",
                "check_invariants",
                "generator",
                "input",
                "measure",
                "attack",
                "report",
            ],
        )?;
        let source = match (section(root, "generator")?, section(root, "input")?) {
            (Some(generator), None) => parse_generator(generator)?,
            (None, Some(input)) => parse_input(input)?,
            (Some(_), Some(_)) => {
                return Err(bad("scenario has both [generator] and [input]; pick one"))
            }
            (None, None) => return Err(bad("scenario needs a [generator] or [input] section")),
        };
        let generator_seed = match &source {
            Source::Generator(g) => g.seed,
            Source::Input { .. } => DEFAULT_SEED,
        };
        let default_name = match &source {
            Source::Generator(g) => g.spec.name.to_string(),
            Source::Input { path } => path.clone(),
        };
        let threads = get_usize("scenario", root, "threads")?;
        if threads == Some(0) {
            return Err(bad("scenario threads: must be at least 1"));
        }
        let scenario = Scenario {
            name: get_str("scenario", root, "name")?.unwrap_or(default_name),
            description: get_str("scenario", root, "description")?.unwrap_or_default(),
            threads,
            check_invariants: get_bool("scenario", root, "check_invariants")?.unwrap_or(false),
            source,
            measure: match section(root, "measure")? {
                Some(t) => Some(parse_measure(t)?),
                None => None,
            },
            attack: match section(root, "attack")? {
                Some(t) => Some(parse_attack(t, generator_seed)?),
                None => None,
            },
            report: match section(root, "report")? {
                Some(t) => parse_report(t)?,
                None => ReportSpec::default(),
            },
        };
        if scenario.report.curves.is_some() && scenario.attack.is_none() {
            return Err(bad(
                "[report] curves: needs an [attack] section to produce curves",
            ));
        }
        Ok(scenario)
    }
}

/// Enforces the CLI's node-count bounds on a resolved parameter set.
pub fn check_n_range(params: &Params) -> Result<(), PipelineError> {
    if let Some(ParamValue::Int(v)) = params.get("n") {
        let ok = usize::try_from(*v).is_ok_and(|n| N_RANGE.contains(&n));
        if !ok {
            return Err(bad(format!(
                "parameter 'n' must be in {}..={} (got {v})",
                N_RANGE.start(),
                N_RANGE.end()
            )));
        }
    }
    Ok(())
}

fn parse_generator(table: &Table) -> Result<Source, PipelineError> {
    let model = get_str("[generator]", table, "model")?
        .ok_or_else(|| bad("[generator] needs a 'model' key"))?;
    let spec = lookup(&model).map_err(|e| bad(e.to_string()))?;
    let seed = get_usize("[generator]", table, "seed")?
        .map(|v| v as u64)
        .unwrap_or(DEFAULT_SEED);
    let mut overrides: BTreeMap<String, ParamValue> = BTreeMap::new();
    for (key, value) in table {
        if key == "model" || key == "seed" || key == "params" {
            continue;
        }
        overrides.insert(key.clone(), param_value("[generator]", key, value)?);
    }
    if let Some(TomlValue::Table(params)) = table.get("params") {
        for (key, value) in params {
            let v = param_value("[generator.params]", key, value)?;
            if overrides.insert(key.clone(), v).is_some() {
                return Err(bad(format!(
                    "parameter '{key}' set both inline and in [generator.params]"
                )));
            }
        }
    } else if let Some(other) = table.get("params") {
        return Err(bad(format!(
            "[generator] params: expected a table, got {}",
            other.type_name()
        )));
    }
    let params = spec.resolve(&overrides).map_err(|e| bad(e.to_string()))?;
    check_n_range(&params)?;
    Ok(Source::Generator(GeneratorSpec { spec, params, seed }))
}

fn param_value(ctx: &str, key: &str, value: &TomlValue) -> Result<ParamValue, PipelineError> {
    match value {
        TomlValue::Int(v) => Ok(ParamValue::Int(*v)),
        TomlValue::Float(v) => Ok(ParamValue::Float(*v)),
        TomlValue::Bool(v) => Ok(ParamValue::Bool(*v)),
        TomlValue::Str(v) => Ok(ParamValue::Str(v.clone())),
        other => Err(bad(format!(
            "{ctx} {key}: model parameters must be scalars, got {}",
            other.type_name()
        ))),
    }
}

fn parse_input(table: &Table) -> Result<Source, PipelineError> {
    reject_unknown("[input]", table, &["path"])?;
    let path =
        get_str("[input]", table, "path")?.ok_or_else(|| bad("[input] needs a 'path' key"))?;
    Ok(Source::Input { path })
}

fn parse_measure(table: &Table) -> Result<MeasureSpec, PipelineError> {
    reject_unknown(
        "[measure]",
        table,
        &[
            "metrics",
            "deadline_ms",
            "path_sources",
            "betweenness_sources",
        ],
    )?;
    let mut spec = MeasureSpec::default();
    if let Some(names) = get_str_array("[measure]", table, "metrics")? {
        spec.selection = KernelSelection::from_names(&names)
            .map_err(|e| bad(format!("[measure] metrics: {e}")))?;
    }
    spec.deadline_ms = get_usize("[measure]", table, "deadline_ms")?.map(|v| v as u64);
    if let Some(v) = get_usize("[measure]", table, "path_sources")? {
        spec.path_sources = v;
    }
    if let Some(v) = get_usize("[measure]", table, "betweenness_sources")? {
        spec.betweenness_sources = v;
    }
    Ok(spec)
}

fn parse_attack(table: &Table, default_seed: u64) -> Result<AttackSpec, PipelineError> {
    reject_unknown(
        "[attack]",
        table,
        &[
            "strategies",
            "replicas",
            "record",
            "seed",
            "checkpoint",
            "bc_sources",
        ],
    )?;
    let mut spec = AttackSpec::with_seed(default_seed);
    if let Some(names) = get_str_array("[attack]", table, "strategies")? {
        if names.is_empty() {
            return Err(bad("[attack] strategies: must name at least one strategy"));
        }
        spec.strategies = names
            .iter()
            .map(|s| Strategy::parse(s))
            .collect::<Result<_, _>>()
            .map_err(|e| bad(format!("[attack] strategies: {e}")))?;
    }
    if let Some(v) = get_usize("[attack]", table, "replicas")? {
        if !REPLICA_RANGE.contains(&v) {
            return Err(bad(format!(
                "[attack] replicas: must be in {}..={} (got {v})",
                REPLICA_RANGE.start(),
                REPLICA_RANGE.end()
            )));
        }
        spec.replicas = v;
    }
    if let Some(v) = get_usize("[attack]", table, "record")? {
        spec.record_every = v;
    }
    if let Some(v) = get_usize("[attack]", table, "seed")? {
        spec.seed = v as u64;
    }
    spec.checkpoint = get_str("[attack]", table, "checkpoint")?.map(PathBuf::from);
    if let Some(v) = get_usize("[attack]", table, "bc_sources")? {
        if v == 0 {
            return Err(bad("[attack] bc_sources: must be at least 1"));
        }
        spec.bc_sources = v;
    }
    Ok(spec)
}

fn parse_report(table: &Table) -> Result<ReportSpec, PipelineError> {
    reject_unknown("[report]", table, &["edge_list", "curves", "summary"])?;
    Ok(ReportSpec {
        edge_list: get_str("[report]", table, "edge_list")?,
        curves: get_str("[report]", table, "curves")?.map(PathBuf::from),
        summary: get_str("[report]", table, "summary")?.map(PathBuf::from),
    })
}

/// Applies one `key=value` override to the parsed document. Bare keys
/// target `[generator]`; dotted keys target an existing section.
fn apply_override(root: &mut Table, set: &str) -> Result<(), PipelineError> {
    let (key, value) = set
        .split_once('=')
        .ok_or_else(|| bad(format!("--set '{set}': expected key=value")))?;
    let key = key.trim();
    let value = value.trim();
    if key.is_empty() || value.is_empty() {
        return Err(bad(format!("--set '{set}': expected key=value")));
    }
    let mut path =
        toml::split_key(key, 0).map_err(|e| bad(format!("--set '{set}': {}", e.message)))?;
    if path.len() == 1 {
        path.insert(0, "generator".to_string());
    }
    let parsed =
        toml::parse_value(value, 0).map_err(|e| bad(format!("--set '{set}': {}", e.message)))?;
    // Walk to the parent table without creating anything: an override can
    // tune an existing section but never conjure a new stage into the run.
    let (last, parents) = path.split_last().expect("split_key never returns empty");
    let mut node = &mut *root;
    for seg in parents {
        node = match node.get_mut(seg) {
            Some(TomlValue::Table(t)) => t,
            Some(other) => {
                return Err(bad(format!(
                    "--set '{set}': '{seg}' is a {}, not a table",
                    other.type_name()
                )))
            }
            None => {
                return Err(bad(format!(
                    "--set '{set}': scenario has no [{seg}] section to override"
                )))
            }
        };
    }
    node.insert(last.clone(), parsed);
    Ok(())
}

fn section<'a>(root: &'a Table, key: &str) -> Result<Option<&'a Table>, PipelineError> {
    match root.get(key) {
        None => Ok(None),
        Some(TomlValue::Table(t)) => Ok(Some(t)),
        Some(other) => Err(bad(format!(
            "scenario {key}: expected a [{key}] table, got {}",
            other.type_name()
        ))),
    }
}

fn reject_unknown(ctx: &str, table: &Table, allowed: &[&str]) -> Result<(), PipelineError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(format!(
                "{ctx} has unknown key '{key}' (keys: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn get_str(ctx: &str, table: &Table, key: &str) -> Result<Option<String>, PipelineError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Str(v)) => Ok(Some(v.clone())),
        Some(other) => Err(bad(format!(
            "{ctx} {key}: expected string, got {}",
            other.type_name()
        ))),
    }
}

fn get_bool(ctx: &str, table: &Table, key: &str) -> Result<Option<bool>, PipelineError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Bool(v)) => Ok(Some(*v)),
        Some(other) => Err(bad(format!(
            "{ctx} {key}: expected boolean, got {}",
            other.type_name()
        ))),
    }
}

fn get_usize(ctx: &str, table: &Table, key: &str) -> Result<Option<usize>, PipelineError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Int(v)) => usize::try_from(*v)
            .map(Some)
            .map_err(|_| bad(format!("{ctx} {key}: must be non-negative (got {v})"))),
        Some(other) => Err(bad(format!(
            "{ctx} {key}: expected integer, got {}",
            other.type_name()
        ))),
    }
}

fn get_str_array(
    ctx: &str,
    table: &Table,
    key: &str,
) -> Result<Option<Vec<String>>, PipelineError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Array(items)) => items
            .iter()
            .map(|item| match item {
                TomlValue::Str(v) => Ok(v.clone()),
                other => Err(bad(format!(
                    "{ctx} {key}: expected an array of strings, got a {} element",
                    other.type_name()
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(other) => Err(bad(format!(
            "{ctx} {key}: expected array, got {}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_parses_with_every_section() {
        let scenario = Scenario::parse(
            r#"
            name = "demo"
            description = "all sections"
            threads = 3
            check_invariants = true
            [generator]
            model = "glp"
            seed = 9
            n = 400
            [generator.params]
            p = 0.5
            [measure]
            metrics = ["degree", "giant"]
            deadline_ms = 1000
            path_sources = 50
            betweenness_sources = 10
            [attack]
            strategies = ["random", "degree-recalc"]
            replicas = 2
            record = 7
            bc_sources = 16
            checkpoint = "sweep.ckpt"
            [report]
            edge_list = "-"
            curves = "out/curves"
            summary = "out/summary.txt"
            "#,
        )
        .unwrap();
        assert_eq!(scenario.name, "demo");
        assert_eq!(scenario.threads, Some(3));
        assert!(scenario.check_invariants);
        let g = match &scenario.source {
            Source::Generator(g) => g,
            other => panic!("wrong source {other:?}"),
        };
        assert_eq!(g.spec.name, "glp");
        assert_eq!(g.seed, 9);
        assert_eq!(g.params.get("n"), Some(&ParamValue::Int(400)));
        assert_eq!(g.params.get("p"), Some(&ParamValue::Float(0.5)));
        let measure = scenario.measure.unwrap();
        assert_eq!(measure.deadline_ms, Some(1000));
        assert_eq!(measure.path_sources, 50);
        assert!(measure.selection.is_selected(0));
        let attack = scenario.attack.as_ref().unwrap();
        assert_eq!(
            attack.strategies,
            vec![Strategy::Random, Strategy::Degree { recalc: true }]
        );
        assert_eq!(attack.replicas, 2);
        assert_eq!(attack.record_every, 7);
        assert_eq!(attack.seed, 9, "attack seed inherits the generator seed");
        assert_eq!(
            attack.checkpoint.as_deref(),
            Some(std::path::Path::new("sweep.ckpt"))
        );
        assert_eq!(scenario.report.edge_list.as_deref(), Some("-"));
    }

    #[test]
    fn minimal_scenario_gets_defaults() {
        let scenario = Scenario::parse("[generator]\nmodel = \"ba\"").unwrap();
        assert_eq!(scenario.name, "ba");
        assert_eq!(scenario.threads, None);
        assert!(!scenario.check_invariants);
        assert!(scenario.measure.is_none());
        assert!(scenario.attack.is_none());
        let g = match &scenario.source {
            Source::Generator(g) => g,
            other => panic!("wrong source {other:?}"),
        };
        assert_eq!(g.seed, DEFAULT_SEED);
        assert_eq!(g.params.get("n"), Some(&ParamValue::Int(1000)));
    }

    #[test]
    fn empty_attack_section_enables_the_stage_with_defaults() {
        let scenario = Scenario::parse("[generator]\nmodel = \"ba\"\n[attack]").unwrap();
        let attack = scenario.attack.unwrap();
        assert_eq!(
            attack.strategies,
            vec![Strategy::Random, Strategy::Degree { recalc: false }]
        );
        assert_eq!(attack.replicas, 4);
        assert_eq!(attack.record_every, 0);
        assert_eq!(attack.seed, DEFAULT_SEED);
        assert_eq!(attack.bc_sources, 64);
    }

    #[test]
    fn input_source_parses() {
        let scenario = Scenario::parse("[input]\npath = \"-\"\n[measure]").unwrap();
        match &scenario.source {
            Source::Input { path } => assert_eq!(path, "-"),
            other => panic!("wrong source {other:?}"),
        }
        assert_eq!(scenario.name, "-");
    }

    #[test]
    fn source_must_be_exactly_one_of_generator_or_input() {
        let both = "[generator]\nmodel = \"ba\"\n[input]\npath = \"x\"";
        assert!(Scenario::parse(both)
            .unwrap_err()
            .message()
            .contains("pick one"));
        let neither = "name = \"x\"";
        assert!(Scenario::parse(neither)
            .unwrap_err()
            .message()
            .contains("needs a [generator] or [input]"));
    }

    #[test]
    fn unknown_model_suggests_a_neighbor_and_exits_2() {
        let e = Scenario::parse("[generator]\nmodel = \"serano\"").unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.message().contains("did you mean 'serrano'"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected_everywhere() {
        for (doc, needle) in [
            ("zzz = 1\n[generator]\nmodel = \"ba\"", "unknown key 'zzz'"),
            ("[generator]\nmodel = \"ba\"\nwhat = 1", "unknown parameter"),
            ("[input]\npath = \"x\"\nzzz = 1", "[input] has unknown key"),
            (
                "[generator]\nmodel = \"ba\"\n[measure]\nzzz = 1",
                "[measure] has unknown key",
            ),
            (
                "[generator]\nmodel = \"ba\"\n[attack]\nzzz = 1",
                "[attack] has unknown key",
            ),
            (
                "[generator]\nmodel = \"ba\"\n[report]\nzzz = 1",
                "[report] has unknown key",
            ),
        ] {
            let e = Scenario::parse(doc).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{doc}");
            assert!(e.message().contains(needle), "{doc}: {e}");
        }
    }

    #[test]
    fn bad_values_are_scenario_errors() {
        for (doc, needle) in [
            ("[generator]\nmodel = \"ba\"\nm = \"lots\"", "wants integer"),
            (
                "[generator]\nmodel = \"ba\"\n[measure]\nmetrics = [\"nope\"]",
                "unknown metric kernel",
            ),
            (
                "[generator]\nmodel = \"ba\"\n[attack]\nstrategies = [\"voodoo\"]",
                "voodoo",
            ),
            (
                "[generator]\nmodel = \"ba\"\n[attack]\nstrategies = []",
                "at least one strategy",
            ),
            (
                "[generator]\nmodel = \"ba\"\n[attack]\nreplicas = 0",
                "replicas",
            ),
            ("[generator]\nmodel = \"ba\"\nn = 4", "parameter 'n'"),
            ("[generator]\nmodel = \"ba\"\nn = 9999999", "parameter 'n'"),
            ("threads = 0\n[generator]\nmodel = \"ba\"", "threads"),
            (
                "[generator]\nmodel = \"ba\"\nseed = -1",
                "must be non-negative",
            ),
            (
                "[generator]\nmodel = \"ba\"\nm = 2\n[generator.params]\nm = 3",
                "both inline",
            ),
        ] {
            let e = Scenario::parse(doc).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{doc}");
            assert!(e.message().contains(needle), "{doc}: {e}");
        }
    }

    #[test]
    fn overrides_tune_generator_and_sections() {
        let doc = "[generator]\nmodel = \"glp\"\nn = 4000\n[attack]\nreplicas = 4";
        let scenario =
            Scenario::parse_with_overrides(doc, &["n=200", "attack.replicas=2", "seed=7"]).unwrap();
        let g = match &scenario.source {
            Source::Generator(g) => g,
            other => panic!("wrong source {other:?}"),
        };
        assert_eq!(g.params.get("n"), Some(&ParamValue::Int(200)));
        assert_eq!(g.seed, 7);
        assert_eq!(scenario.attack.unwrap().replicas, 2);
    }

    #[test]
    fn overrides_cannot_conjure_new_sections() {
        let doc = "[generator]\nmodel = \"ba\"";
        let e = Scenario::parse_with_overrides(doc, &["attack.replicas=2"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.message().contains("no [attack] section"), "{e}");
    }

    #[test]
    fn malformed_overrides_are_rejected() {
        let doc = "[generator]\nmodel = \"ba\"";
        for set in ["n", "n=", "=5", "n=zebra", "bad key=1"] {
            let e = Scenario::parse_with_overrides(doc, &[set]).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{set}");
            assert!(e.message().contains("--set"), "{set}: {e}");
        }
    }

    #[test]
    fn override_of_unknown_parameter_fails_validation() {
        let doc = "[generator]\nmodel = \"ba\"";
        let e = Scenario::parse_with_overrides(doc, &["zeta=3"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.message().contains("unknown parameter"), "{e}");
    }

    #[test]
    fn from_generator_matches_the_toml_path() {
        let mut overrides = BTreeMap::new();
        overrides.insert("n".to_string(), ParamValue::Int(256));
        let built = Scenario::from_generator("pfp", &overrides, 5).unwrap();
        let parsed = Scenario::parse("[generator]\nmodel = \"pfp\"\nseed = 5\nn = 256").unwrap();
        match (&built.source, &parsed.source) {
            (Source::Generator(a), Source::Generator(b)) => {
                assert_eq!(a.spec.name, b.spec.name);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.params, b.params);
            }
            other => panic!("wrong sources {other:?}"),
        }
        assert_eq!(
            Scenario::from_generator("nope", &BTreeMap::new(), 1)
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn curves_sink_requires_an_attack_stage() {
        let doc = "[generator]\nmodel = \"ba\"\n[report]\ncurves = \"out\"";
        let e = Scenario::parse(doc).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.message().contains("[attack]"), "{e}");
    }

    #[test]
    fn params_round_trip_exhaustively_over_the_registry() {
        // Render every model's full schema back to TOML via ParamValue's
        // Display, reparse it as a scenario, and demand the resolved set is
        // identical to resolving the defaults directly — the serialization
        // the docs and `list-models` print is the serialization the parser
        // accepts, for every parameter of every model.
        for spec in inet_generators::registry() {
            let mut doc = format!("[generator]\nmodel = \"{}\"\n", spec.name);
            for p in &spec.schema {
                doc.push_str(&format!("{} = {}\n", p.key, p.default));
            }
            let scenario = Scenario::parse(&doc).unwrap_or_else(|e| {
                panic!(
                    "{}: rendered schema does not reparse: {e}\n{doc}",
                    spec.name
                )
            });
            let g = match &scenario.source {
                Source::Generator(g) => g,
                other => panic!("wrong source {other:?}"),
            };
            let defaults = spec.resolve(&BTreeMap::new()).unwrap();
            assert_eq!(g.params, defaults, "{}", spec.name);
            if let Err(e) = (spec.build)(&g.params) {
                panic!("{}: default params rejected by builder: {e}", spec.name);
            }
        }
    }

    #[test]
    fn load_missing_file_is_a_data_error() {
        let e =
            Scenario::load::<&str>(std::path::Path::new("/nonexistent/s.toml"), &[]).unwrap_err();
        assert_eq!(e.exit_code(), 4);
    }
}
