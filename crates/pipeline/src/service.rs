//! The `inet serve` daemon: a robust, single-process scenario service.
//!
//! The rest of the workspace is batch: one CLI invocation, one run. This
//! module turns the same staged pipeline into a long-lived **job service**
//! over a plain [`std::net::TcpListener`] — no async runtime, no protocol
//! dependencies, the same hand-rolled philosophy as the TOML reader. The
//! robustness headline is the **no-job-lost invariant**:
//!
//! > Every *accepted* submission either runs to completion or is resumed —
//! > cell-granular, bit-identically — by the next daemon incarnation; and
//! > every submission that is *not* accepted receives an explicit
//! > rejection response, never a silent drop.
//!
//! The invariant holds because admission *is* journaling: a submission is
//! accepted exactly when its [`RunStore`] directory and `service-job.json`
//! marker exist on disk. From that point the job is owned by the crash-safe
//! run store (PR 5): workers execute it through [`run_scenario_with`], so a
//! SIGKILL at any instant leaves a journal the recovery scan re-enqueues on
//! restart, and resume replays committed stages from checksummed artifacts.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (non-blocking poll; service.accept failpoint)
//!                 │  one thread per connection, panic-fenced,
//!                 │  read/write timeouts, bounded request size
//!                 ▼
//!  admission control ──reject──▶ {"status":"rejected", retry_after_ms}
//!    │  full validation (scenario parse + sink preflight),
//!    │  bounded queue, service.queue failpoint
//!    ▼
//!  RunStore::create + service-job.json        ◀── recovery scan re-enqueues
//!    │                                            interrupted jobs here
//!    ▼
//!  bounded FIFO queue ──▶ worker pool (fixed threads, service.worker
//!                          failpoint, panic fence, bounded retries)
//!                            │ per-job CancelToken: deadline reaper or
//!                            │ drain timeout fires it cooperatively
//!                            ▼
//!                          run_scenario_with(ExecOptions{cancel, store})
//! ```
//!
//! ## Protocol
//!
//! One request per connection: the client sends a single line containing a
//! flat JSON object (the same subset the run store's own documents use) and
//! receives a single JSON line back. Commands:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"submit","scenario":"<toml text>","sets":[..],"deadline_ms":N}` | `{"status":"accepted","job":"<id>","position":k}` or `{"status":"rejected","error":..,"retry_after_ms":N}` |
//! | `{"cmd":"status","job":"<id>","wait_ms":N}` | `{"status":"queued"\|"running"\|"done"\|"failed"\|"deadline"\|"cancelled", ...}`; with the optional `wait_ms` the daemon long-polls — it parks the connection (condvar, no busy wait) until the job reaches a terminal state or the wait (capped at 30 s) elapses |
//! | `{"cmd":"result","job":"<id>"}` | `{"status":"done","summary":"<text>"}` (the stage-3 artifact) |
//! | `{"cmd":"cancel","job":"<id>"}` | `{"status":"ok"}` — queued jobs unqueue, running jobs get their token fired |
//! | `{"cmd":"stats"}` | queue depth, capacity, workers, counters, draining flag |
//! | `{"cmd":"metrics"}` | `{"status":"ok","queued":N,"running":N,"metrics":"<Prometheus text exposition, JSON-escaped>"}` — job counters, queue-wait/run-time histograms, plus the process-wide task/retry/sweep metrics |
//! | `{"cmd":"drain"}` | `{"status":"ok","draining":1}` — protocol equivalent of SIGTERM |
//!
//! Oversized requests, read timeouts, and malformed JSON all get a
//! structured `{"status":"error",...}` line — a misbehaving client can
//! slow down only its own connection thread, never the accept loop.
//!
//! ## Shutdown semantics
//!
//! SIGTERM or first SIGINT (via [`ServiceConfig::drain_flag`]) and the
//! `drain` command all start a **graceful drain**: admission stops (new
//! submissions are rejected with a `draining` error), workers finish their
//! in-flight jobs, and still-queued jobs stay journaled on disk for the
//! next incarnation. A drain that completes within
//! [`ServiceConfig::drain_timeout_ms`] exits the daemon with code 0; on
//! timeout the in-flight jobs' cancel tokens fire, their progress
//! checkpoints cooperatively, and the daemon exits 6 (interrupted,
//! resumable) — the same contract as an interrupted `inet run`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use inet_exec::{run_fenced, Deadline, PanicFence, RetryPolicy, Task, TaskError};
use inet_graph::CancelToken;
use inet_obs::{render_prometheus, Counter, Registry};

use crate::report;
use crate::run::{run_scenario_with, ExecOptions};
use crate::runstore::{escape_json, parse_flat, JsonVal, RunStore};
use crate::scenario::Scenario;
use crate::PipelineError;

/// Marker file inside a run directory that makes the run a *service job*:
/// carries the job's lifecycle state for the crash-recovery scan.
pub const JOB_FILE: &str = "service-job.json";

/// Default total attempts for a job hit by an infrastructure fault (a
/// worker panic or an injected `service.worker` fault) before it is marked
/// failed — the `attempts` of [`ServiceConfig::retry`]'s default. Pipeline
/// errors from the scenario itself never retry.
pub const MAX_ATTEMPTS: u64 = 3;

/// Everything the daemon needs to know; every field has a conservative
/// default so `ServiceConfig::default()` is a runnable local service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, `host:port`; port 0 binds an ephemeral port
    /// (printed by the CLI, queryable via [`Service::local_addr`]).
    pub addr: String,
    /// Fixed worker-pool size (at least 1).
    pub workers: usize,
    /// Bounded queue capacity: submissions beyond it are rejected with a
    /// `retry_after_ms` hint, never silently dropped.
    pub queue_capacity: usize,
    /// Run-store root; every accepted job journals under it.
    pub runs_dir: PathBuf,
    /// Default per-job deadline (from job start, not submission), applied
    /// when a submission does not carry its own `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// How long a drain waits for in-flight jobs before firing their
    /// cancel tokens and exiting 6 instead of 0.
    pub drain_timeout_ms: u64,
    /// Socket read timeout per connection; a stalled client gets a
    /// structured timeout error on its own thread.
    pub read_timeout_ms: u64,
    /// Socket write timeout per connection.
    pub write_timeout_ms: u64,
    /// Maximum request-line size in bytes; larger requests are rejected
    /// with a structured error before any parsing.
    pub max_request_bytes: usize,
    /// Worker-thread count handed to scenarios that do not pin their own
    /// `threads`; `None` leaves the pipeline default (all cores).
    pub job_threads: Option<usize>,
    /// Retry schedule for jobs hit by infrastructure faults (worker panics,
    /// injected `service.worker` faults): `attempts` bounds the total tries
    /// per job, and the capped-backoff delay is slept before each requeue.
    /// Deterministic scenario errors never retry regardless.
    pub retry: RetryPolicy,
    /// External drain trigger — the bridge from SIGTERM/SIGINT handlers,
    /// which may only touch static atomics. Polled by the accept loop.
    pub drain_flag: Option<&'static AtomicBool>,
    /// Suppress the daemon's stderr log lines (tests).
    pub quiet: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:4590".to_string(),
            workers: 2,
            queue_capacity: 32,
            runs_dir: PathBuf::from(crate::runstore::DEFAULT_RUNS_DIR),
            default_deadline_ms: None,
            drain_timeout_ms: 20_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_request_bytes: 1 << 20,
            job_threads: None,
            retry: RetryPolicy {
                attempts: MAX_ATTEMPTS as u32,
                base_delay_ms: 10,
                max_delay_ms: 200,
            },
            drain_flag: None,
            quiet: false,
        }
    }
}

/// How a completed [`Service::run`] ended, mapped by the CLI onto the
/// documented exit-code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// Every in-flight job finished before the drain timeout — exit 0.
    /// Jobs still queued at drain time stay journaled for the next
    /// incarnation.
    Clean,
    /// The drain timeout fired: in-flight jobs were cancelled
    /// cooperatively (their progress is checkpointed and resumable) —
    /// exit 6.
    DrainTimeout,
}

/// Lifecycle of one job. `Queued` and `Running` persist as `accepted`
/// in `service-job.json` — both are interrupted-and-resumable states for
/// the recovery scan; the rest are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
    Deadline,
    Cancelled,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Deadline => "deadline",
            Phase::Cancelled => "cancelled",
        }
    }

    /// The `service-job.json` state string.
    fn persisted(self) -> &'static str {
        match self {
            Phase::Queued | Phase::Running => "accepted",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Deadline => "deadline",
            Phase::Cancelled => "cancelled",
        }
    }
}

/// In-memory record of one job (the run id doubles as the job id).
#[derive(Debug, Default)]
struct Job {
    phase: Option<Phase>,
    error: String,
    attempts: u64,
    deadline_ms: Option<u64>,
    /// Wall-clock deadline, armed when the job starts running.
    deadline_at: Option<Deadline>,
    /// Token of the running execution; the reaper, `cancel` command, and
    /// drain timeout fire it.
    cancel: Option<CancelToken>,
    cancel_requested: bool,
    deadline_fired: bool,
    /// When the job (re-)entered the queue; consumed into the
    /// `inet_job_queue_wait_ms` histogram when a worker picks it up.
    queued_at: Option<std::time::Instant>,
}

impl Job {
    fn phase(&self) -> Phase {
        self.phase.unwrap_or(Phase::Queued)
    }
}

/// Shared daemon state.
struct State {
    cfg: ServiceConfig,
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    jobs: Mutex<BTreeMap<String, Job>>,
    /// Control-plane event generation, bumped by [`State::notify_control`]
    /// on every observable change (job phase transition, deadline armed,
    /// drain trigger, stop). Paired with `control_wake`; a separate mutex
    /// from `queue` because a `std::sync::Condvar` may only ever be used
    /// with one mutex.
    control: Mutex<u64>,
    /// Parks the accept loop, drain wait, reaper, and status long-polls;
    /// woken by [`State::notify_control`] instead of sleep-polling.
    control_wake: Condvar,
    draining: AtomicBool,
    /// Set once the drain has finished; parks the reaper and any workers
    /// still waiting on the queue.
    stopped: AtomicBool,
    /// Connection-handler threads still running. The drain path lingers
    /// (bounded) until this reaches zero so the response to the very
    /// request that triggered the drain is not severed by process exit —
    /// the condvar wakeups make shutdown fast enough to lose that race
    /// otherwise.
    conns: AtomicU64,
    conn_seq: AtomicU64,
    submit_seq: AtomicU64,
    /// This daemon's own metrics registry (job counters, queue-wait and
    /// run-time histograms). Per-instance, not the process default, so the
    /// `stats` and `metrics` commands read the *same* counters — they can
    /// never disagree — and in-process tests see only their own daemon.
    registry: Registry,
    accepted: Counter,
    rejected: Counter,
    completed: Counter,
    failed: Counter,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl State {
    fn log(&self, line: &str) {
        if !self.cfg.quiet {
            eprintln!("# serve: {line}");
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
            || self
                .cfg
                .drain_flag
                .map(|f| f.load(Ordering::SeqCst))
                .unwrap_or(false)
    }

    /// A deterministic back-off hint for rejected submissions, scaled by
    /// the backlog a worker slot has to chew through first.
    fn retry_after_ms(&self) -> u64 {
        let backlog = lock(&self.queue).len() as u64;
        250 + 500 * backlog / self.cfg.workers.max(1) as u64
    }

    /// Writes `service-job.json` atomically (tmp → rename). A persist
    /// failure is logged but never unseats the in-memory state: the worst
    /// case is a stale `accepted` marker, which only means the next
    /// incarnation replays an idempotent, already-committed run.
    fn persist(&self, id: &str, job: &Job) {
        let mut doc = format!(
            r#"{{"job":"{}","state":"{}","attempts":{}"#,
            escape_json(id),
            job.phase().persisted(),
            job.attempts
        );
        if let Some(ms) = job.deadline_ms {
            let _ = write!(doc, r#","deadline_ms":{ms}"#);
        }
        if !job.error.is_empty() {
            let _ = write!(doc, r#","error":"{}""#, escape_json(&job.error));
        }
        doc.push('}');
        let dir = self.cfg.runs_dir.join(id);
        let tmp = dir.join(format!("{JOB_FILE}.tmp"));
        let result = std::fs::write(&tmp, doc.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, dir.join(JOB_FILE)));
        if let Err(e) = result {
            self.log(&format!("job {id}: cannot persist state: {e}"));
        }
    }

    fn set_phase(&self, id: &str, phase: Phase, error: &str) {
        {
            let mut jobs = lock(&self.jobs);
            let job = jobs.entry(id.to_string()).or_default();
            job.phase = Some(phase);
            job.error = error.to_string();
            if phase != Phase::Running {
                job.cancel = None;
                job.deadline_at = None;
            }
            self.persist(id, job);
        }
        self.notify_control();
    }

    /// Publishes a control-plane event: bumps the generation and wakes
    /// every parked observer (accept loop, drain wait, reaper, status
    /// long-polls). Cheap enough to call on every job transition.
    fn notify_control(&self) {
        *lock(&self.control) += 1;
        self.control_wake.notify_all();
    }

    /// The current control-plane generation; pass it to
    /// [`State::wait_control_change`] to park until the *next* event.
    fn control_gen(&self) -> u64 {
        *lock(&self.control)
    }

    /// Parks until a control event newer than `seen` is published or
    /// `timeout` elapses — the lost-wakeup-free replacement for the old
    /// `thread::sleep` polls: an event published between reading `seen`
    /// and parking returns immediately.
    fn wait_control_change(&self, seen: u64, timeout: Duration) {
        let deadline = Deadline::after_millis(timeout.as_millis() as u64);
        let mut gen = lock(&self.control);
        while *gen == seen {
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return;
            }
            let (guard, _) = self
                .control_wake
                .wait_timeout(gen, remaining)
                .unwrap_or_else(|p| p.into_inner());
            gen = guard;
        }
    }

    /// Bounded park on the control plane with no particular generation to
    /// watch — wakes on any event or after `timeout`, whichever is first.
    fn wait_control(&self, timeout: Duration) {
        self.wait_control_change(self.control_gen(), timeout);
    }
}

/// A bound, not-yet-running scenario service. [`Service::bind`] claims
/// the socket (so tests and scripts can read the ephemeral port before
/// anything happens); [`Service::run`] blocks until drain.
pub struct Service {
    listener: TcpListener,
    state: Arc<State>,
}

impl Service {
    /// Binds the listener and prepares shared state. No thread starts
    /// and no recovery scan happens until [`Service::run`].
    pub fn bind(cfg: ServiceConfig) -> Result<Service, PipelineError> {
        std::fs::create_dir_all(&cfg.runs_dir).map_err(|e| {
            PipelineError::Data(format!("serve: runs dir {}: {e}", cfg.runs_dir.display()))
        })?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| PipelineError::Data(format!("serve: cannot bind {}: {e}", cfg.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| PipelineError::Data(format!("serve: set_nonblocking: {e}")))?;
        let registry = Registry::new();
        let state = Arc::new(State {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            control: Mutex::new(0),
            control_wake: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            submit_seq: AtomicU64::new(0),
            accepted: registry.counter("inet_jobs_accepted_total", &[]),
            rejected: registry.counter("inet_jobs_rejected_total", &[]),
            completed: registry.counter("inet_jobs_completed_total", &[]),
            failed: registry.counter("inet_jobs_failed_total", &[]),
            registry,
        });
        Ok(Service { listener, state })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, PipelineError> {
        self.listener
            .local_addr()
            .map_err(|e| PipelineError::Data(format!("serve: local_addr: {e}")))
    }

    /// Runs the daemon: crash-recovery scan, worker pool, deadline
    /// reaper, then the accept loop until a drain trigger fires. Returns
    /// how the drain ended; the CLI maps that onto exit 0 / exit 6.
    pub fn run(self) -> Result<ServeExit, PipelineError> {
        let state = self.state;
        let recovered = recover(&state);
        if recovered > 0 {
            state.log(&format!(
                "recovered {recovered} interrupted job(s) from {}",
                state.cfg.runs_dir.display()
            ));
        }
        let mut workers = Vec::new();
        for w in 0..state.cfg.workers.max(1) {
            let st = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("inet-serve-worker-{w}"))
                    .spawn(move || worker_loop(&st))
                    .map_err(|e| PipelineError::Data(format!("serve: spawn worker: {e}")))?,
            );
        }
        let reaper = {
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name("inet-serve-reaper".to_string())
                .spawn(move || reaper_loop(&st))
                .map_err(|e| PipelineError::Data(format!("serve: spawn reaper: {e}")))?
        };

        // Accept loop: non-blocking so drain triggers are observed within
        // one poll interval even with no traffic.
        while !state.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let seq = state.conn_seq.fetch_add(1, Ordering::SeqCst);
                    let st = Arc::clone(&state);
                    // Counted on the accept thread, before the handler can
                    // possibly run, so the drain linger below never misses
                    // a connection that was accepted but not yet scheduled.
                    state.conns.fetch_add(1, Ordering::SeqCst);
                    let spawned = std::thread::Builder::new()
                        .name(format!("inet-serve-conn-{seq}"))
                        .spawn(move || {
                            // Per-connection panic fence: a bug (or an
                            // injected panic) in one handler must never
                            // take the daemon down.
                            let _ = PanicFence::run(|| {
                                handle_connection(&st, stream, seq);
                            });
                            st.conns.fetch_sub(1, Ordering::SeqCst);
                            st.notify_control();
                        });
                    if let Err(e) = spawned {
                        state.conns.fetch_sub(1, Ordering::SeqCst);
                        state.log(&format!("cannot spawn connection thread: {e}"));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Park on the control plane rather than sleeping blind:
                    // a drain trigger wakes the loop immediately, while the
                    // bound keeps the non-blocking listener polled.
                    state.wait_control(Duration::from_millis(15));
                }
                Err(e) => {
                    // Transient accept failure (EMFILE, ECONNABORTED...):
                    // log and keep serving.
                    state.log(&format!("accept error: {e}"));
                    state.wait_control(Duration::from_millis(15));
                }
            }
        }
        drop(self.listener);
        state.draining.store(true, Ordering::SeqCst);
        state.log("draining: admission stopped, waiting for in-flight jobs");
        // Workers park as soon as their current job (if any) completes.
        state.wake.notify_all();
        state.notify_control();

        let drain_deadline = Deadline::after_millis(state.cfg.drain_timeout_ms);
        let mut timed_out = false;
        loop {
            // Capture the generation before counting so a job finishing
            // between the count and the park still wakes us.
            let seen = state.control_gen();
            let running = lock(&state.jobs)
                .values()
                .filter(|j| j.phase() == Phase::Running)
                .count();
            if running == 0 {
                break;
            }
            if drain_deadline.is_expired() {
                timed_out = true;
                state.log(&format!(
                    "drain timeout after {} ms: cancelling {running} in-flight job(s) \
                     (progress is checkpointed; they resume on restart)",
                    state.cfg.drain_timeout_ms
                ));
                for job in lock(&state.jobs).values() {
                    if let Some(token) = &job.cancel {
                        token.cancel();
                    }
                }
                break;
            }
            let bound = drain_deadline.remaining().min(Duration::from_millis(100));
            state.wait_control_change(seen, bound);
        }
        // After a forced cancel the workers still need a moment to unwind
        // cooperatively; join covers both paths.
        for handle in workers {
            let _ = handle.join();
        }
        state.stopped.store(true, Ordering::SeqCst);
        state.notify_control();
        let _ = reaper.join();
        // Linger (bounded) for in-flight connection handlers — above all
        // the one whose `drain` request triggered this shutdown: exiting
        // before its response line is flushed would sever the very reply
        // that reports the drain succeeded. Stalled clients cannot hold
        // the exit hostage past their socket timeouts.
        let linger = Deadline::after_millis(
            state
                .cfg
                .read_timeout_ms
                .saturating_add(state.cfg.write_timeout_ms)
                .max(250),
        );
        loop {
            let seen = state.control_gen();
            if state.conns.load(Ordering::SeqCst) == 0 || linger.is_expired() {
                break;
            }
            state.wait_control_change(seen, linger.remaining().min(Duration::from_millis(50)));
        }
        let left = lock(&state.queue).len();
        if left > 0 {
            state.log(&format!(
                "{left} queued job(s) stay journaled and resume on the next 'inet serve'"
            ));
        }
        state.log(if timed_out {
            "drain timed out (exit 6)"
        } else {
            "drain complete (exit 0)"
        });
        Ok(if timed_out {
            ServeExit::DrainTimeout
        } else {
            ServeExit::Clean
        })
    }
}

/// The crash-recovery scan: every run directory carrying a
/// `service-job.json` is a service job. Non-terminal (`accepted`) jobs are
/// re-enqueued in sorted order; terminal ones are loaded so `status` and
/// `result` keep answering across daemon restarts. Returns how many jobs
/// were re-enqueued.
fn recover(state: &State) -> usize {
    let Ok(entries) = std::fs::read_dir(&state.cfg.runs_dir) else {
        return 0;
    };
    let mut ids: Vec<String> = entries
        .flatten()
        .filter(|e| e.path().join(JOB_FILE).is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    ids.sort();
    let mut requeued = 0;
    for id in ids {
        let path = state.cfg.runs_dir.join(&id).join(JOB_FILE);
        let Some(doc) = std::fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(parse_flat)
        else {
            // A torn marker means the job never finished admission or
            // persist; treat it as interrupted-and-accepted (the journal
            // is the source of truth, replay is idempotent).
            state.log(&format!("job {id}: torn {JOB_FILE}; re-enqueueing"));
            enqueue_recovered(state, &id, Job::default());
            requeued += 1;
            continue;
        };
        let mut job = Job {
            attempts: doc
                .get("attempts")
                .and_then(JsonVal::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .unwrap_or(0),
            deadline_ms: doc
                .get("deadline_ms")
                .and_then(JsonVal::as_int)
                .and_then(|v| u64::try_from(v).ok()),
            error: doc
                .get("error")
                .and_then(JsonVal::as_str)
                .unwrap_or_default()
                .to_string(),
            ..Job::default()
        };
        match doc.get("state").and_then(JsonVal::as_str) {
            Some("done") => job.phase = Some(Phase::Done),
            Some("failed") => job.phase = Some(Phase::Failed),
            Some("deadline") => job.phase = Some(Phase::Deadline),
            Some("cancelled") => job.phase = Some(Phase::Cancelled),
            // "accepted", unknown states, or a missing field: the job was
            // interrupted — resume it.
            _ => {
                job.phase = Some(Phase::Queued);
                // An interrupted attempt must not burn the retry budget.
                job.attempts = 0;
                enqueue_recovered(state, &id, job);
                requeued += 1;
                continue;
            }
        }
        lock(&state.jobs).insert(id, job);
    }
    requeued
}

fn enqueue_recovered(state: &State, id: &str, mut job: Job) {
    job.phase = Some(Phase::Queued);
    job.queued_at = Some(std::time::Instant::now());
    lock(&state.jobs).insert(id.to_string(), job);
    lock(&state.queue).push_back(id.to_string());
    state.wake.notify_one();
}

/// One worker: pop → execute → classify, until drain.
fn worker_loop(state: &Arc<State>) {
    loop {
        let id = {
            let mut q = lock(&state.queue);
            loop {
                if state.draining() {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                let (guard, _) = state
                    .wake
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        run_job(state, &id);
    }
}

/// Executes one job with the worker failpoint and a panic fence around
/// the whole attempt. Infrastructure faults (failpoint, panic) retry up
/// to [`ServiceConfig::retry`]'s attempt budget with its deterministic
/// capped backoff; scenario errors fail the job with its message;
/// interruptions are classified by their cause (deadline, cancel, drain).
fn run_job(state: &Arc<State>, id: &str) {
    let (attempt, queued_at) = {
        let mut jobs = lock(&state.jobs);
        let job = jobs.entry(id.to_string()).or_default();
        if job.phase() != Phase::Queued {
            return; // cancelled while queued
        }
        job.phase = Some(Phase::Running);
        job.deadline_fired = false;
        let token = CancelToken::new();
        job.cancel = Some(token.clone());
        job.deadline_at = job.deadline_ms.map(Deadline::after_millis);
        job.attempts += 1;
        (job.attempts - 1, job.queued_at.take())
    };
    if let Some(at) = queued_at {
        state
            .registry
            .histogram("inet_job_queue_wait_ms", &[])
            .observe(at.elapsed().as_millis() as u64);
    }
    // Wake the reaper so a freshly armed deadline is observed immediately
    // instead of on its next fallback poll.
    state.notify_control();
    let run_started = std::time::Instant::now();
    let outcome = run_fenced(&Task::new("service.worker", attempt), || {
        inet_fault::check("service.worker", attempt)
            .map_err(|e| PipelineError::Stage(format!("worker: {e}")))?;
        execute(state, id)
    });
    // Per-attempt wall time, whatever the outcome.
    state
        .registry
        .histogram("inet_job_run_ms", &[])
        .observe(run_started.elapsed().as_millis() as u64);
    let retryable_error = match outcome {
        Ok(Ok(())) => {
            state.set_phase(id, Phase::Done, "");
            state.completed.inc();
            state.log(&format!("job {id}: done"));
            return;
        }
        Ok(Err(PipelineError::Interrupted(_))) => {
            let (deadline_fired, cancel_requested) = {
                let jobs = lock(&state.jobs);
                let job = jobs.get(id);
                (
                    job.map(|j| j.deadline_fired).unwrap_or(false),
                    job.map(|j| j.cancel_requested).unwrap_or(false),
                )
            };
            if deadline_fired {
                state.set_phase(id, Phase::Deadline, "deadline exceeded; job cancelled");
                state.failed.inc();
                state.log(&format!("job {id}: deadline exceeded"));
            } else if cancel_requested {
                state.set_phase(id, Phase::Cancelled, "cancelled by request");
                state.log(&format!("job {id}: cancelled"));
            } else {
                // Drain (or a spurious interruption): back to accepted on
                // disk; the next incarnation's recovery scan resumes it.
                state.set_phase(id, Phase::Queued, "");
                state.log(&format!("job {id}: interrupted; resumes on restart"));
            }
            return;
        }
        Ok(Err(PipelineError::Stage(msg))) if msg.starts_with("worker:") => Some(msg),
        Ok(Err(e)) => {
            // A real pipeline failure: deterministic, so retrying cannot
            // help — record it and inform the next status/result poll.
            state.set_phase(id, Phase::Failed, e.message());
            state.failed.inc();
            state.log(&format!("job {id}: failed: {}", e.message()));
            return;
        }
        // An `exec.task` fault injected at the fence boundary: same
        // infrastructure-failure class as the worker failpoint.
        Err(TaskError::Fault(e)) => Some(format!("worker: {e}")),
        Err(TaskError::Panicked(msg)) => Some(format!("worker panicked: {msg}")),
    };
    if let Some(msg) = retryable_error {
        let max_attempts = u64::from(state.cfg.retry.attempts.max(1));
        let attempts = lock(&state.jobs)
            .get(id)
            .map(|j| j.attempts)
            .unwrap_or(max_attempts);
        if attempts >= max_attempts {
            state.set_phase(
                id,
                Phase::Failed,
                &format!("{msg} ({attempts} attempts exhausted)"),
            );
            state.failed.inc();
            state.log(&format!(
                "job {id}: failed after {attempts} attempts: {msg}"
            ));
        } else {
            // Deterministic capped backoff before the requeue, so a flapping
            // dependency is not hammered by back-to-back retries.
            state.cfg.retry.pause((attempts - 1) as u32);
            state.set_phase(id, Phase::Queued, "");
            if let Some(job) = lock(&state.jobs).get_mut(id) {
                job.queued_at = Some(std::time::Instant::now());
            }
            lock(&state.queue).push_back(id.to_string());
            state.wake.notify_one();
            state.log(&format!(
                "job {id}: attempt {attempts} hit '{msg}'; requeued"
            ));
        }
    }
}

/// Opens the job's run store, re-parses its stored scenario + overrides,
/// and executes it with the job's cancel token. Fresh submissions and
/// recovered jobs take exactly the same path — `run_scenario_with`
/// replays whatever the journal already committed.
fn execute(state: &Arc<State>, id: &str) -> Result<(), PipelineError> {
    let store = RunStore::open(&state.cfg.runs_dir, id)?;
    let text = store.scenario_text()?;
    let mut scenario = Scenario::parse_with_overrides(&text, store.overrides())?;
    if scenario.threads.is_none() {
        scenario.threads = state.cfg.job_threads;
    }
    let cancel = lock(&state.jobs)
        .get(id)
        .and_then(|j| j.cancel.clone())
        .unwrap_or_default();
    run_scenario_with(
        &scenario,
        &ExecOptions {
            cancel,
            store: Some(store),
        },
    )
    .map(|_| ())
}

/// Fires the cancel token of any running job past its deadline. The reaper
/// parks on the control condvar until the earliest armed deadline (capped
/// at 500 ms when none is armed) and is woken eagerly whenever a worker
/// arms one, so firing latency is bounded by the deadline itself rather
/// than a poll interval.
fn reaper_loop(state: &Arc<State>) {
    while !state.stopped.load(Ordering::SeqCst) {
        let seen = state.control_gen();
        let mut next = Duration::from_millis(500);
        {
            let mut jobs = lock(&state.jobs);
            for job in jobs.values_mut() {
                if job.phase() == Phase::Running && !job.deadline_fired {
                    if let (Some(at), Some(token)) = (job.deadline_at, job.cancel.as_ref()) {
                        if at.is_expired() {
                            job.deadline_fired = true;
                            token.cancel();
                        } else {
                            next = next.min(at.remaining());
                        }
                    }
                }
            }
        }
        state.wait_control_change(seen, next.max(Duration::from_millis(1)));
    }
}

// ---------------------------------------------------------------------
// Protocol: connection handling, request parsing, command dispatch.

enum ReadLine {
    Line(String),
    TooLarge,
    TimedOut,
    Closed,
}

/// Reads one `\n`-terminated request line, bounded by
/// `max_request_bytes`; the socket's read timeout bounds stalls.
fn read_request(stream: &mut TcpStream, max: usize) -> ReadLine {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadLine::Closed
                } else {
                    // EOF without a newline still frames the request.
                    ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            Ok(n) => {
                if let Some(pos) = chunk[..n].iter().position(|b| *b == b'\n') {
                    buf.extend_from_slice(&chunk[..pos]);
                    if buf.len() > max {
                        return ReadLine::TooLarge;
                    }
                    return ReadLine::Line(String::from_utf8_lossy(&buf).into_owned());
                }
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > max {
                    // Drain what the client already has in flight before
                    // answering: closing with unread data queued provokes
                    // a TCP reset that would destroy the error response.
                    drain_excess(stream, max);
                    return ReadLine::TooLarge;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ReadLine::TimedOut;
            }
            Err(_) => return ReadLine::Closed,
        }
    }
}

/// Discards the tail of an oversized request up to the end of its line
/// (or EOF), so the rejection response survives delivery. Hard-bounded:
/// a client streaming garbage forever stops being read after 8× the
/// request cap, response delivery be damned.
fn drain_excess(stream: &mut TcpStream, max: usize) {
    let mut chunk = [0u8; 4096];
    let mut drained = 0usize;
    while drained <= max.saturating_mul(8) {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if chunk[..n].contains(&b'\n') {
                    return;
                }
                drained += n;
            }
            Err(_) => return,
        }
    }
}

fn error_response(msg: &str) -> String {
    format!(r#"{{"status":"error","error":"{}"}}"#, escape_json(msg))
}

/// Serves one connection: one bounded request line in, one response line
/// out. Every failure mode a client can trigger — oversized request,
/// stall, malformed JSON, unknown command — produces a structured error
/// on this connection's own thread.
fn handle_connection(state: &Arc<State>, mut stream: TcpStream, seq: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        state.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        state.cfg.write_timeout_ms.max(1),
    )));
    // The accept failpoint is checked on the connection's own thread with
    // panic containment, so even a Panic action yields a structured error
    // response instead of a silently dropped connection.
    let response = match inet_fault::check_contained("service.accept", seq) {
        Err(e) => {
            // Consume the client's pending request before answering:
            // closing a socket with unread data provokes an RST that
            // destroys the queued error response on many stacks.
            let _ = read_request(&mut stream, state.cfg.max_request_bytes);
            error_response(&e.to_string())
        }
        Ok(()) => match read_request(&mut stream, state.cfg.max_request_bytes) {
            ReadLine::Closed => return,
            ReadLine::TooLarge => error_response(&format!(
                "request too large (over {} bytes)",
                state.cfg.max_request_bytes
            )),
            ReadLine::TimedOut => error_response(&format!(
                "read timeout after {} ms",
                state.cfg.read_timeout_ms
            )),
            ReadLine::Line(line) => match parse_flat(&line) {
                None => error_response("malformed request: expected one flat JSON object per line"),
                Some(req) => dispatch(state, &req),
            },
        },
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

fn dispatch(state: &Arc<State>, req: &BTreeMap<String, JsonVal>) -> String {
    match req.get("cmd").and_then(JsonVal::as_str) {
        Some("submit") => submit(state, req),
        Some("status") => status(state, req),
        Some("result") => result(state, req),
        Some("cancel") => cancel(state, req),
        Some("stats") => stats(state),
        Some("metrics") => metrics(state),
        Some("drain") => {
            state.draining.store(true, Ordering::SeqCst);
            state.wake.notify_all();
            // Wake the accept loop out of its park so admission stops now.
            state.notify_control();
            r#"{"status":"ok","draining":1}"#.to_string()
        }
        Some(other) => error_response(&format!(
            "unknown command '{other}' (expected submit/status/result/cancel/stats/metrics/drain)"
        )),
        None => error_response("missing 'cmd'"),
    }
}

fn rejected_response(state: &Arc<State>, msg: &str) -> String {
    state.rejected.inc();
    format!(
        r#"{{"status":"rejected","error":"{}","retry_after_ms":{}}}"#,
        escape_json(msg),
        state.retry_after_ms()
    )
}

/// Admission control. A submission is **accepted** only after (in order):
/// drain check, queue-capacity check, the `service.queue` failpoint, full
/// scenario validation, sink preflight, and run-store creation — so every
/// accepted job is already journaled, and everything that fails any of
/// those gates gets an explicit rejection/error response.
fn submit(state: &Arc<State>, req: &BTreeMap<String, JsonVal>) -> String {
    if state.draining() {
        return rejected_response(state, "draining; not admitting new jobs");
    }
    {
        let q = lock(&state.queue);
        if q.len() >= state.cfg.queue_capacity {
            let msg = format!("queue full ({} of {})", q.len(), state.cfg.queue_capacity);
            drop(q);
            return rejected_response(state, &msg);
        }
    }
    let admission = state.submit_seq.fetch_add(1, Ordering::SeqCst);
    if let Err(e) = inet_fault::check_contained("service.queue", admission) {
        return rejected_response(state, &e.to_string());
    }
    let Some(text) = req.get("scenario").and_then(JsonVal::as_str) else {
        return error_response("submit: missing 'scenario' (the TOML text)");
    };
    let sets: Vec<String> = match req.get("sets") {
        Some(JsonVal::Arr(items)) => items.clone(),
        Some(_) => return error_response("submit: 'sets' must be an array of strings"),
        None => Vec::new(),
    };
    let deadline_ms = match req.get("deadline_ms") {
        Some(v) => match v.as_int().and_then(|x| u64::try_from(x).ok()) {
            Some(ms) => Some(ms),
            None => return error_response("submit: 'deadline_ms' must be a non-negative integer"),
        },
        None => state.cfg.default_deadline_ms,
    };
    let scenario = match Scenario::parse_with_overrides(text, &sets) {
        Ok(s) => s,
        Err(e) => return error_response(&format!("submit: {}", e.message())),
    };
    if let Err(e) = report::preflight(&scenario) {
        return error_response(&format!("submit: {}", e.message()));
    }
    let path = req
        .get("path")
        .and_then(JsonVal::as_str)
        .unwrap_or("<submitted>");
    let store = match RunStore::create(&state.cfg.runs_dir, &scenario.name, text, path, &sets) {
        Ok(st) => st,
        Err(e) => return error_response(&format!("submit: {}", e.message())),
    };
    let id = store.id().to_string();
    let position = {
        let job = Job {
            phase: Some(Phase::Queued),
            deadline_ms,
            queued_at: Some(std::time::Instant::now()),
            ..Job::default()
        };
        state.persist(&id, &job);
        lock(&state.jobs).insert(id.clone(), job);
        let mut q = lock(&state.queue);
        q.push_back(id.clone());
        q.len()
    };
    state.wake.notify_one();
    state.accepted.inc();
    state.log(&format!("job {id}: accepted (queue position {position})"));
    format!(
        r#"{{"status":"accepted","job":"{}","position":{position}}}"#,
        escape_json(&id)
    )
}

fn job_or_error<'j>(
    jobs: &'j BTreeMap<String, Job>,
    req: &BTreeMap<String, JsonVal>,
) -> Result<(&'j str, &'j Job), String> {
    let Some(id) = req.get("job").and_then(JsonVal::as_str) else {
        return Err(error_response("missing 'job'"));
    };
    match jobs.get_key_value(id) {
        Some((id, job)) => Ok((id, job)),
        None => Err(error_response(&format!(
            "unknown job '{id}' (it may belong to a different --runs-dir)"
        ))),
    }
}

fn status(state: &Arc<State>, req: &BTreeMap<String, JsonVal>) -> String {
    // Optional long-poll: with `wait_ms` the connection parks on the
    // control condvar until the job goes terminal or the wait (capped at
    // 30 s) elapses — no busy polling on either side of the socket.
    let wait = Deadline::after_millis(
        req.get("wait_ms")
            .and_then(JsonVal::as_int)
            .and_then(|x| u64::try_from(x).ok())
            .unwrap_or(0)
            .min(30_000),
    );
    loop {
        let seen = state.control_gen();
        {
            let jobs = lock(&state.jobs);
            let (id, job) = match job_or_error(&jobs, req) {
                Ok(pair) => pair,
                Err(resp) => return resp,
            };
            let settled = !matches!(job.phase(), Phase::Queued | Phase::Running);
            if settled || wait.is_expired() {
                let mut out = format!(
                    r#"{{"status":"{}","job":"{}","attempts":{}"#,
                    job.phase().as_str(),
                    escape_json(id),
                    job.attempts
                );
                if job.phase() == Phase::Queued {
                    if let Some(pos) = lock(&state.queue).iter().position(|q| q == id) {
                        let _ = write!(out, r#","position":{}"#, pos + 1);
                    }
                }
                if !job.error.is_empty() {
                    let _ = write!(out, r#","error":"{}""#, escape_json(&job.error));
                }
                out.push('}');
                return out;
            }
        }
        state.wait_control_change(seen, wait.remaining().min(Duration::from_millis(250)));
    }
}

fn result(state: &Arc<State>, req: &BTreeMap<String, JsonVal>) -> String {
    let (id, phase, error) = {
        let jobs = lock(&state.jobs);
        match job_or_error(&jobs, req) {
            Ok((id, job)) => (id.to_string(), job.phase(), job.error.clone()),
            Err(resp) => return resp,
        }
    };
    match phase {
        Phase::Done => {}
        Phase::Queued | Phase::Running => {
            return format!(
                r#"{{"status":"{}","job":"{}","error":"job not finished; poll status"}}"#,
                phase.as_str(),
                escape_json(&id)
            )
        }
        Phase::Failed | Phase::Deadline | Phase::Cancelled => {
            return format!(
                r#"{{"status":"{}","job":"{}","error":"{}"}}"#,
                phase.as_str(),
                escape_json(&id),
                escape_json(&error)
            )
        }
    }
    // The summary is the stage-3 artifact, checksum-verified by the store.
    let summary = RunStore::open(&state.cfg.runs_dir, &id)
        .and_then(|store| {
            let committed = store.committed();
            let rec = committed
                .get(3)
                .and_then(|r| r.as_ref())
                .cloned()
                .ok_or_else(|| {
                    PipelineError::Data(format!("job {id}: summary artifact not committed"))
                })?;
            store.load_artifact(&rec)
        })
        .map(|bytes| String::from_utf8_lossy(&bytes).into_owned());
    match summary {
        Ok(text) => format!(
            r#"{{"status":"done","job":"{}","summary":"{}"}}"#,
            escape_json(&id),
            escape_json(&text)
        ),
        Err(e) => error_response(e.message()),
    }
}

fn cancel(state: &Arc<State>, req: &BTreeMap<String, JsonVal>) -> String {
    let mut jobs = lock(&state.jobs);
    let Some(id) = req.get("job").and_then(JsonVal::as_str) else {
        return error_response("missing 'job'");
    };
    let Some(job) = jobs.get_mut(id) else {
        return error_response(&format!("unknown job '{id}'"));
    };
    let id = id.to_string();
    match job.phase() {
        Phase::Queued => {
            job.phase = Some(Phase::Cancelled);
            job.error = "cancelled by request".to_string();
            state.persist(&id, job);
            lock(&state.queue).retain(|q| *q != id);
            // Terminal transition outside set_phase: wake long-pollers.
            state.notify_control();
            format!(
                r#"{{"status":"ok","job":"{}","note":"unqueued"}}"#,
                escape_json(&id)
            )
        }
        Phase::Running => {
            job.cancel_requested = true;
            if let Some(token) = &job.cancel {
                token.cancel();
            }
            format!(
                r#"{{"status":"ok","job":"{}","note":"cancellation requested"}}"#,
                escape_json(&id)
            )
        }
        phase => format!(
            r#"{{"status":"ok","job":"{}","note":"already {}"}}"#,
            escape_json(&id),
            phase.as_str()
        ),
    }
}

fn stats(state: &Arc<State>) -> String {
    let queued = lock(&state.queue).len();
    let running = lock(&state.jobs)
        .values()
        .filter(|j| j.phase() == Phase::Running)
        .count();
    format!(
        r#"{{"status":"ok","queued":{queued},"running":{running},"capacity":{},"workers":{},"accepted":{},"rejected":{},"completed":{},"failed":{},"draining":{}}}"#,
        state.cfg.queue_capacity,
        state.cfg.workers,
        state.accepted.value(),
        state.rejected.value(),
        state.completed.value(),
        state.failed.value(),
        u8::from(state.draining())
    )
}

/// The `metrics` command: Prometheus text exposition of the daemon's own
/// registry (job counters, queue-wait/run-time histograms) followed by the
/// process-wide default registry (task latency, retries, sweep cells).
/// The exposition travels as an escaped JSON string because the protocol
/// is one line per response; `inet job metrics` unescapes and prints it.
fn metrics(state: &Arc<State>) -> String {
    let queued = lock(&state.queue).len();
    let running = lock(&state.jobs)
        .values()
        .filter(|j| j.phase() == Phase::Running)
        .count();
    state
        .registry
        .gauge("inet_jobs_queued", &[])
        .set(queued as i64);
    state
        .registry
        .gauge("inet_jobs_running", &[])
        .set(running as i64);
    let expo =
        render_prometheus(&state.registry) + &render_prometheus(inet_obs::default_registry());
    format!(
        r#"{{"status":"ok","queued":{queued},"running":{running},"metrics":"{}"}}"#,
        escape_json(&expo)
    )
}

// ---------------------------------------------------------------------
// Client helpers: the CLI's submit/status/result subcommands and the
// tests speak the protocol through these.

/// Sends one request line to a daemon and returns its one-line response.
pub fn request(addr: &str, line: &str, timeout_ms: u64) -> Result<String, PipelineError> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| PipelineError::Data(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| PipelineError::Data(format!("{addr}: no address")))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_millis(timeout_ms))
        .map_err(|e| PipelineError::Data(format!("cannot reach daemon at {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(timeout_ms)));
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| PipelineError::Data(format!("{addr}: send: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| PipelineError::Data(format!("{addr}: no response: {e}")))?;
    let line = response.lines().next().unwrap_or_default().to_string();
    if line.is_empty() {
        return Err(PipelineError::Data(format!(
            "{addr}: daemon closed the connection without a response"
        )));
    }
    Ok(line)
}

/// Extracts one field of a one-line protocol response; integers are
/// rendered in decimal. `None` when the response is not a flat JSON
/// object or lacks the key.
pub fn response_field(response: &str, key: &str) -> Option<String> {
    match parse_flat(response)?.remove(key)? {
        JsonVal::Str(s) => Some(s),
        JsonVal::Int(v) => Some(v.to_string()),
        JsonVal::Arr(items) => Some(items.join(",")),
    }
}

/// Builds a `submit` request line from a scenario document.
pub fn encode_submit(
    scenario_text: &str,
    path: &str,
    sets: &[String],
    deadline_ms: Option<u64>,
) -> String {
    let mut line = format!(
        r#"{{"cmd":"submit","scenario":"{}","path":"{}""#,
        escape_json(scenario_text),
        escape_json(path)
    );
    if !sets.is_empty() {
        let encoded: Vec<String> = sets
            .iter()
            .map(|s| format!("\"{}\"", escape_json(s)))
            .collect();
        let _ = write!(line, r#","sets":[{}]"#, encoded.join(","));
    }
    if let Some(ms) = deadline_ms {
        let _ = write!(line, r#","deadline_ms":{ms}"#);
    }
    line.push('}');
    line
}

/// Builds a job-addressed request line (`status`, `result`, `cancel`) or
/// a bare command (`stats`, `drain`).
pub fn encode_cmd(cmd: &str, job: Option<&str>) -> String {
    match job {
        Some(id) => format!(
            r#"{{"cmd":"{}","job":"{}"}}"#,
            escape_json(cmd),
            escape_json(id)
        ),
        None => format!(r#"{{"cmd":"{}"}}"#, escape_json(cmd)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("inet_service_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_config(runs: PathBuf) -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 4,
            runs_dir: runs,
            read_timeout_ms: 500,
            write_timeout_ms: 500,
            drain_timeout_ms: 10_000,
            quiet: true,
            ..ServiceConfig::default()
        }
    }

    /// Starts a daemon on an ephemeral port; returns its address and the
    /// run() join handle.
    fn start(
        cfg: ServiceConfig,
    ) -> (
        String,
        std::thread::JoinHandle<Result<ServeExit, PipelineError>>,
    ) {
        let service = Service::bind(cfg).unwrap();
        let addr = service.local_addr().unwrap().to_string();
        (addr, std::thread::spawn(move || service.run()))
    }

    const TINY: &str = "[generator]\nmodel = \"ba\"\nn = 60\nseed = 7\n\
                        [measure]\nmetrics = [\"degree\"]\n";

    /// Waits for a job via the status long-poll: the daemon parks each
    /// request on its control condvar (up to 1 s per round), so this
    /// helper makes a handful of requests instead of sleep-polling.
    fn poll_done(addr: &str, id: &str) -> String {
        for _ in 0..12 {
            let line = format!(r#"{{"cmd":"status","job":"{id}","wait_ms":1000}}"#);
            let resp = request(addr, &line, 5_000).unwrap();
            match response_field(&resp, "status").unwrap().as_str() {
                "done" => return resp,
                "queued" | "running" => {}
                other => panic!("job {id} ended as {other}: {resp}"),
            }
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn submit_status_result_round_trip_matches_a_direct_run() {
        let dir = temp_dir("roundtrip");
        let (addr, handle) = start(test_config(dir.join("runs")));
        let resp = request(&addr, &encode_submit(TINY, "tiny.toml", &[], None), 2_000).unwrap();
        assert_eq!(
            response_field(&resp, "status").as_deref(),
            Some("accepted"),
            "{resp}"
        );
        let id = response_field(&resp, "job").unwrap();
        poll_done(&addr, &id);
        let resp = request(&addr, &encode_cmd("result", Some(&id)), 2_000).unwrap();
        let summary = response_field(&resp, "summary").unwrap();
        let direct = crate::run::run_scenario(&Scenario::parse(TINY).unwrap()).unwrap();
        assert_eq!(
            summary, direct.summary,
            "served summary must be bit-identical"
        );
        // Stats counted the job; drain exits clean.
        let stats = request(&addr, &encode_cmd("stats", None), 2_000).unwrap();
        assert_eq!(
            response_field(&stats, "completed").as_deref(),
            Some("1"),
            "{stats}"
        );
        request(&addr, &encode_cmd("drain", None), 2_000).unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), ServeExit::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_command_serves_valid_exposition_agreeing_with_stats() {
        let dir = temp_dir("metrics");
        let (addr, handle) = start(test_config(dir.join("runs")));
        let resp = request(&addr, &encode_submit(TINY, "tiny.toml", &[], None), 2_000).unwrap();
        let id = response_field(&resp, "job").unwrap();
        poll_done(&addr, &id);
        let resp = request(&addr, &encode_cmd("metrics", None), 2_000).unwrap();
        assert_eq!(
            response_field(&resp, "status").as_deref(),
            Some("ok"),
            "{resp}"
        );
        let expo = response_field(&resp, "metrics").unwrap();
        inet_obs::validate_prometheus(&expo).unwrap();
        assert!(expo.contains("inet_jobs_accepted_total 1"), "{expo}");
        assert!(expo.contains("inet_jobs_completed_total 1"), "{expo}");
        assert!(expo.contains("inet_job_queue_wait_ms"), "{expo}");
        assert!(expo.contains("inet_job_run_ms"), "{expo}");
        // The process-wide registry rides along: the worker ran the job
        // through the fenced executor, which records task latency.
        assert!(expo.contains("inet_task_latency_us"), "{expo}");
        // stats reads the very same counters, so the two views agree.
        let stats = request(&addr, &encode_cmd("stats", None), 2_000).unwrap();
        assert_eq!(
            response_field(&stats, "completed").as_deref(),
            Some("1"),
            "{stats}"
        );
        assert_eq!(response_field(&stats, "accepted").as_deref(), Some("1"));
        request(&addr, &encode_cmd("drain", None), 2_000).unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), ServeExit::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_submissions_get_structured_errors_not_jobs() {
        let dir = temp_dir("invalid");
        let (addr, handle) = start(test_config(dir.join("runs")));
        // Unknown model: scenario validation rejects at admission.
        let bad = "[generator]\nmodel = \"zzz\"\nn = 60\n";
        let resp = request(&addr, &encode_submit(bad, "bad.toml", &[], None), 2_000).unwrap();
        assert_eq!(
            response_field(&resp, "status").as_deref(),
            Some("error"),
            "{resp}"
        );
        assert!(response_field(&resp, "error")
            .unwrap()
            .contains("unknown model"));
        // Missing scenario text.
        let resp = request(&addr, r#"{"cmd":"submit"}"#, 2_000).unwrap();
        assert!(response_field(&resp, "error")
            .unwrap()
            .contains("missing 'scenario'"));
        // Unknown job id.
        let resp = request(&addr, &encode_cmd("status", Some("nope-1234")), 2_000).unwrap();
        assert!(response_field(&resp, "error")
            .unwrap()
            .contains("unknown job"));
        // Unknown command.
        let resp = request(&addr, r#"{"cmd":"frobnicate"}"#, 2_000).unwrap();
        assert!(response_field(&resp, "error")
            .unwrap()
            .contains("unknown command"));
        // Nothing was admitted.
        let stats = request(&addr, &encode_cmd("stats", None), 2_000).unwrap();
        assert_eq!(
            response_field(&stats, "accepted").as_deref(),
            Some("0"),
            "{stats}"
        );
        request(&addr, &encode_cmd("drain", None), 2_000).unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), ServeExit::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_daemon_rejects_new_submissions() {
        let dir = temp_dir("drainreject");
        let cfg = test_config(dir.join("runs"));
        let service = Service::bind(cfg).unwrap();
        // Flip draining before run() so the accept loop exits immediately;
        // the admission path must still answer an in-flight connection.
        service.state.draining.store(true, Ordering::SeqCst);
        let resp = submit(
            &service.state,
            &parse_flat(&encode_submit(TINY, "t.toml", &[], None)).unwrap(),
        );
        assert_eq!(
            response_field(&resp, "status").as_deref(),
            Some("rejected"),
            "{resp}"
        );
        assert!(response_field(&resp, "error").unwrap().contains("draining"));
        assert!(response_field(&resp, "retry_after_ms").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_rejections_carry_a_retry_hint() {
        let dir = temp_dir("capacity");
        let cfg = ServiceConfig {
            queue_capacity: 2,
            ..test_config(dir.join("runs"))
        };
        let service = Service::bind(cfg).unwrap();
        // Fill the queue directly (no workers are running yet, so nothing
        // drains it) and push one more submission through admission.
        lock(&service.state.queue).push_back("a".to_string());
        lock(&service.state.queue).push_back("b".to_string());
        let resp = submit(
            &service.state,
            &parse_flat(&encode_submit(TINY, "t.toml", &[], None)).unwrap(),
        );
        assert_eq!(
            response_field(&resp, "status").as_deref(),
            Some("rejected"),
            "{resp}"
        );
        assert!(response_field(&resp, "error")
            .unwrap()
            .contains("queue full (2 of 2)"));
        let hint: u64 = response_field(&resp, "retry_after_ms")
            .unwrap()
            .parse()
            .unwrap();
        assert!(hint >= 250, "{hint}");
        assert_eq!(service.state.rejected.value(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encode_round_trips_through_the_flat_reader() {
        let line = encode_submit("a = \"x\"\n", "p.toml", &["n=9".to_string()], Some(125));
        let obj = parse_flat(&line).unwrap();
        assert_eq!(obj.get("cmd").unwrap().as_str(), Some("submit"));
        assert_eq!(obj.get("scenario").unwrap().as_str(), Some("a = \"x\"\n"));
        assert_eq!(obj.get("deadline_ms").unwrap().as_int(), Some(125));
        assert_eq!(
            obj.get("sets"),
            Some(&JsonVal::Arr(vec!["n=9".to_string()]))
        );
        let line = encode_cmd("status", Some("id-1"));
        let obj = parse_flat(&line).unwrap();
        assert_eq!(obj.get("job").unwrap().as_str(), Some("id-1"));
    }
}
