//! # inet-fault — deterministic fault injection for the toolkit's own harness
//!
//! The resilience papers the workspace reproduces all make the same point:
//! a robustness claim is only as credible as the harness that produced it.
//! This crate turns that on the toolkit itself. Library crates mark the
//! places where the real world can hurt them — checkpoint reads/writes,
//! sweep cells, metric-kernel entries, generator growth, edge-list I/O —
//! with named **failpoints**:
//!
//! ```rust
//! # fn save() -> Result<(), inet_fault::FaultError> {
//! inet_fault::check("checkpoint.write", 0 /* scope: attempt index */)?;
//! # Ok(()) }
//! ```
//!
//! A chaos test installs a [`FaultPlan`] (derived deterministically from a
//! seed) and the marked sites start failing on cue: returning an error,
//! panicking, or delaying. Everything is **scope-keyed** — a plan says
//! "fail `sweep.cell` at scope 3", not "fail the 3rd hit" — so the same
//! `(seed, plan)` injects the same faults at any thread count and recovered
//! output stays bit-identical.
//!
//! With the `enabled` cargo feature **off** (the default), [`check`] is an
//! inlined constant `Ok(())`: the failpoints vanish from release builds.
//! The plan/spec types stay available either way so test code compiles
//! unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Every failpoint name the toolkit registers, with the meaning of its
/// scope key:
///
/// | failpoint | scope |
/// |---|---|
/// | `io.read` | always 0 (one read per call) |
/// | `io.write` | always 0 |
/// | `generator.generate` | always 0 (checked at growth entry) |
/// | `metrics.kernel` | kernel index in [`inet-metrics`' robust runner] |
/// | `sweep.cell` | canonical cell index of the attack sweep |
/// | `checkpoint.read` | retry attempt index |
/// | `checkpoint.write` | retry attempt index |
/// | `pipeline.stage` | stage index of a scenario run (0 source, 1 measure, 2 attack, 3 report) |
/// | `journal.write` | stage index whose begin/commit record is being appended |
/// | `artifact.rename` | stage index whose artifact is being atomically renamed into place |
/// | `service.accept` | connection sequence index of the serve daemon's accept loop |
/// | `service.queue` | admission sequence index of a job submission |
/// | `service.worker` | attempt index of the job a worker is about to start |
/// | `exec.task` | deterministic scope key of the fenced task (kernel index, cell index, stage index, attempt) |
/// | `obs.record` | scope key of the telemetry record being written (span scope, or 0 for counter/histogram updates) |
pub const CATALOG: &[&str] = &[
    "io.read",
    "io.write",
    "generator.generate",
    "metrics.kernel",
    "sweep.cell",
    "checkpoint.read",
    "checkpoint.write",
    "pipeline.stage",
    "journal.write",
    "artifact.rename",
    "service.accept",
    "service.queue",
    "service.worker",
    "exec.task",
    "obs.record",
];

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The site receives a [`FaultError`] and must convert it to its own
    /// structured error type.
    Error,
    /// The site panics (with a recognizable message); some enclosing layer
    /// must contain it.
    Panic,
    /// The site sleeps for the given number of milliseconds, then proceeds
    /// normally — exercises soft deadlines without changing results.
    Delay(u64),
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Error => write!(f, "error"),
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Delay(ms) => write!(f, "delay {ms}ms"),
        }
    }
}

/// One injection rule: which failpoint, at which scope, how often, doing
/// what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Failpoint name (one of [`CATALOG`]).
    pub failpoint: &'static str,
    /// Scope key to match; `None` matches every scope. Deterministic plans
    /// should pin the scope for failpoints whose hit order depends on
    /// thread scheduling (`sweep.cell`, `metrics.kernel`).
    pub scope: Option<u64>,
    /// Trigger at most this many times (0 = unlimited). Counted per spec.
    pub max_hits: u64,
    /// What happens on a triggered hit.
    pub action: FaultAction,
}

/// A deterministic set of injection rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The rules, matched in order; the first matching spec wins.
    pub specs: Vec<FaultSpec>,
}

/// SplitMix64 step — the crate must not depend on `rand`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with a single rule.
    pub fn single(failpoint: &'static str, scope: Option<u64>, action: FaultAction) -> Self {
        FaultPlan {
            specs: vec![FaultSpec {
                failpoint,
                scope,
                max_hits: 1,
                action,
            }],
        }
    }

    /// Derives a pseudo-random but fully deterministic plan from `seed`:
    /// 1–3 rules over the [`CATALOG`], scope pinned to a small value,
    /// bounded hit counts. The same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed ^ 0x6a09_e667_f3bc_c909;
        let count = 1 + (splitmix(&mut state) % 3) as usize;
        let mut specs = Vec::with_capacity(count);
        for _ in 0..count {
            let failpoint = CATALOG[(splitmix(&mut state) % CATALOG.len() as u64) as usize];
            let action = match splitmix(&mut state) % 3 {
                0 => FaultAction::Error,
                1 => FaultAction::Panic,
                _ => FaultAction::Delay(1 + splitmix(&mut state) % 8),
            };
            specs.push(FaultSpec {
                failpoint,
                scope: Some(splitmix(&mut state) % 4),
                max_hits: 1 + splitmix(&mut state) % 2,
                action,
            });
        }
        FaultPlan { specs }
    }

    /// Renders the plan as one line per rule (for test failure messages).
    pub fn describe(&self) -> String {
        self.specs
            .iter()
            .map(|s| {
                format!(
                    "{} scope={} max_hits={} action={}",
                    s.failpoint,
                    s.scope.map_or("any".to_string(), |x| x.to_string()),
                    s.max_hits,
                    s.action
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// The error a triggered `Error`-action failpoint hands to its site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The failpoint that fired.
    pub failpoint: &'static str,
    /// The scope key the site passed.
    pub scope: u64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault at failpoint '{}' (scope {})",
            self.failpoint, self.scope
        )
    }
}

impl std::error::Error for FaultError {}

/// The message prefix of a `Panic`-action failpoint, so containment layers
/// and tests can recognize injected panics.
pub const PANIC_PREFIX: &str = "injected panic at failpoint";

#[cfg(feature = "enabled")]
mod active {
    use super::{FaultAction, FaultError, FaultPlan, PANIC_PREFIX};
    use std::sync::{Mutex, OnceLock};

    struct Installed {
        plan: FaultPlan,
        /// Hits per spec index (triggered hits, counted against `max_hits`).
        hits: Vec<u64>,
    }

    fn state() -> &'static Mutex<Option<Installed>> {
        static STATE: OnceLock<Mutex<Option<Installed>>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(None))
    }

    /// Installs `plan`, replacing any active plan and resetting hit
    /// counters. The returned guard clears the plan when dropped.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let hits = vec![0; plan.specs.len()];
        let mut st = state().lock().unwrap_or_else(|p| p.into_inner());
        *st = Some(Installed { plan, hits });
        FaultGuard(())
    }

    /// Clears the active plan.
    pub fn clear() {
        let mut st = state().lock().unwrap_or_else(|p| p.into_inner());
        *st = None;
    }

    /// `true` when a plan is installed.
    pub fn active() -> bool {
        state().lock().unwrap_or_else(|p| p.into_inner()).is_some()
    }

    /// Uninstalls the plan on drop (scoped injection for tests).
    #[must_use = "dropping the guard immediately clears the fault plan"]
    pub struct FaultGuard(());

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            clear();
        }
    }

    /// The instrumented check: consults the installed plan; returns
    /// `Err(FaultError)` for an `Error` action, panics for `Panic`, sleeps
    /// for `Delay`. Without an installed plan this is one mutex lock.
    #[allow(clippy::panic)] // injecting a panic is the Panic action's contract
    pub fn check(name: &'static str, scope: u64) -> Result<(), FaultError> {
        let action = {
            let mut st = state().lock().unwrap_or_else(|p| p.into_inner());
            let Some(installed) = st.as_mut() else {
                return Ok(());
            };
            let mut triggered = None;
            for (i, spec) in installed.plan.specs.iter().enumerate() {
                if spec.failpoint != name {
                    continue;
                }
                if let Some(want) = spec.scope {
                    if want != scope {
                        continue;
                    }
                }
                if spec.max_hits != 0 && installed.hits[i] >= spec.max_hits {
                    continue;
                }
                installed.hits[i] += 1;
                triggered = Some(spec.action);
                break;
            }
            triggered
            // Lock released here — mandatory before panicking or sleeping.
        };
        match action {
            None => Ok(()),
            Some(FaultAction::Error) => Err(FaultError {
                failpoint: name,
                scope,
            }),
            Some(FaultAction::Panic) => {
                panic!("{PANIC_PREFIX} '{name}' (scope {scope})")
            }
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub use active::{active, check, clear, install, FaultGuard};

/// Like [`check`], but for failpoints with **no enclosing recovery layer**
/// (`io.read`, `io.write`): a `Panic` action is contained here and handed
/// to the site as a plain [`FaultError`], so a seeded chaos plan can never
/// crash the process through an uncontained site.
#[cfg(feature = "enabled")]
pub fn check_contained(name: &'static str, scope: u64) -> Result<(), FaultError> {
    match std::panic::catch_unwind(|| check(name, scope)) {
        Ok(outcome) => outcome,
        Err(_) => Err(FaultError {
            failpoint: name,
            scope,
        }),
    }
}

/// Disabled build: inlined `Ok(())`, like [`check`].
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn check_contained(_name: &'static str, _scope: u64) -> Result<(), FaultError> {
    Ok(())
}

#[cfg(not(feature = "enabled"))]
mod inert {
    use super::{FaultError, FaultPlan};

    /// No-op guard of the disabled build.
    #[must_use = "dropping the guard immediately clears the fault plan"]
    pub struct FaultGuard(pub(crate) ());

    /// Disabled build: installing a plan does nothing.
    pub fn install(_plan: FaultPlan) -> FaultGuard {
        FaultGuard(())
    }

    /// Disabled build: nothing to clear.
    pub fn clear() {}

    /// Disabled build: never active.
    pub fn active() -> bool {
        false
    }

    /// Disabled build: compiles to an inlined `Ok(())` — the call sites
    /// cost nothing.
    #[inline(always)]
    pub fn check(_name: &'static str, _scope: u64) -> Result<(), FaultError> {
        Ok(())
    }
}

#[cfg(not(feature = "enabled"))]
pub use inert::{active, check, clear, install, FaultGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_from_seed_is_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.specs.is_empty() && a.specs.len() <= 3);
            for spec in &a.specs {
                assert!(CATALOG.contains(&spec.failpoint), "{}", spec.failpoint);
                assert!(spec.max_hits >= 1);
                assert!(!a.describe().is_empty());
            }
        }
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
    }

    #[test]
    fn fault_error_display_names_the_failpoint() {
        let e = FaultError {
            failpoint: "sweep.cell",
            scope: 3,
        };
        assert!(e.to_string().contains("sweep.cell"));
        assert!(e.to_string().contains("3"));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        let _guard = install(FaultPlan::single("io.read", None, FaultAction::Panic));
        assert!(!active());
        assert_eq!(check("io.read", 0), Ok(()));
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::Mutex;

        /// The registry is process-global; enabled-build tests serialize.
        static LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn error_action_triggers_then_exhausts() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let _g = install(FaultPlan::single("io.read", Some(0), FaultAction::Error));
            assert!(active());
            assert!(check("io.read", 1).is_ok(), "wrong scope must not fire");
            assert!(check("io.read", 0).is_err());
            assert!(check("io.read", 0).is_ok(), "max_hits=1 exhausted");
        }

        #[test]
        fn guard_drop_clears_plan() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            {
                let _g = install(FaultPlan::single("io.write", None, FaultAction::Error));
                assert!(active());
            }
            assert!(!active());
            assert!(check("io.write", 0).is_ok());
        }

        #[test]
        fn panic_action_panics_with_recognizable_message() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let _g = install(FaultPlan::single("sweep.cell", Some(2), FaultAction::Panic));
            let caught = std::panic::catch_unwind(|| check("sweep.cell", 2));
            clear();
            let payload = caught.expect_err("must panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains(PANIC_PREFIX), "{msg}");
            assert!(msg.contains("sweep.cell"), "{msg}");
        }

        #[test]
        fn delay_action_sleeps_then_succeeds() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let _g = install(FaultPlan::single(
                "metrics.kernel",
                None,
                FaultAction::Delay(5),
            ));
            let t0 = std::time::Instant::now();
            assert!(check("metrics.kernel", 0).is_ok());
            assert!(t0.elapsed() >= std::time::Duration::from_millis(4));
        }

        #[test]
        fn contained_check_converts_panic_to_error() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let _g = install(FaultPlan::single("io.read", Some(0), FaultAction::Panic));
            assert_eq!(
                check_contained("io.read", 0),
                Err(FaultError {
                    failpoint: "io.read",
                    scope: 0,
                })
            );
            assert!(check_contained("io.read", 0).is_ok(), "one-shot exhausted");
        }

        #[test]
        fn unlimited_hits_fire_every_time() {
            let _l = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let _g = install(FaultPlan {
                specs: vec![FaultSpec {
                    failpoint: "checkpoint.write",
                    scope: None,
                    max_hits: 0,
                    action: FaultAction::Error,
                }],
            });
            for scope in 0..5 {
                assert!(check("checkpoint.write", scope).is_err());
            }
        }
    }
}
