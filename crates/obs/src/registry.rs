//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms behind atomics.
//!
//! A metric is identified by its base name plus an ordered label set; the
//! canonical id renders as `name{k="v",...}`. Looking a metric up takes one
//! mutex on a `BTreeMap` (deterministic exposition order for free);
//! updating one is a single relaxed atomic op on a shared `Arc`, so call
//! sites that care can hold the returned handle and never touch the map
//! again.

use crate::record_allowed;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Finite histogram buckets: upper bounds `2^0 .. 2^63`, plus `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; a counter never wraps back past zero).
    pub fn add(&self, n: u64) {
        if !record_allowed(0) {
            return;
        }
        // fetch_update is wait-free enough here and lets us saturate.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if !record_allowed(0) {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        if !record_allowed(0) {
            return;
        }
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram storage: log2 buckets + sum + count.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// `counts[i]` holds observations `v` with `bucket_index(v) == i`;
    /// index [`HISTOGRAM_BUCKETS`] is the `+Inf` bucket.
    pub(crate) counts: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

/// A fixed-bucket latency histogram with log2 bucket boundaries.
///
/// Bucket `i` (for `i < 64`) has the inclusive upper bound `2^i`; values
/// above `2^63` land in the `+Inf` bucket. Zero lands in bucket 0 (bound
/// `1`). The unit is whatever the call site observes — the toolkit's
/// conventions are microseconds (`_us`) and milliseconds (`_ms`), spelled
/// out in the metric name.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// The finite bucket index for `v`: the smallest `i` with `v <= 2^i`, or
/// [`HISTOGRAM_BUCKETS`] (the `+Inf` bucket) when `v > 2^63`.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let bits = 64 - (v - 1).leading_zeros() as usize; // ceil(log2 v)
    bits.min(HISTOGRAM_BUCKETS)
}

impl Histogram {
    /// Records one observation (sum saturates at `u64::MAX`).
    pub fn observe(&self, v: u64) {
        if !record_allowed(0) {
            return;
        }
        self.0.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The count in finite bucket `i` (not cumulative), or in `+Inf` when
    /// `i == HISTOGRAM_BUCKETS`. Out-of-range indices read 0.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.0
            .counts
            .get(i)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The canonical metric id: base name plus sorted-as-given labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    pub(crate) fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Renders `name{k="v",...}` (or just `name` without labels), escaping
    /// label values for Prometheus exposition.
    pub(crate) fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

/// Prometheus label-value escaping: backslash, quote, newline.
pub(crate) fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A set of named metrics. The process-wide instance is
/// [`default_registry`]; subsystems that need isolated counts (one serve
/// daemon per test, say) hold their own.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn lock(
    m: &Mutex<BTreeMap<MetricKey, Metric>>,
) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter `name{labels}`, created on first use. Asking for an
    /// existing name with a different metric kind returns a fresh detached
    /// handle (recorded nowhere) rather than panicking — recorders must
    /// never take a job down.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = lock(&self.metrics);
        let entry = map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match entry {
            Metric::Counter(c) => c.clone(),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// The gauge `name{labels}`, created on first use (kind mismatch: see
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = lock(&self.metrics);
        let entry = map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))));
        match entry {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge(Arc::new(AtomicI64::new(0))),
        }
    }

    /// The histogram `name{labels}`, created on first use (kind mismatch:
    /// see [`Registry::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = lock(&self.metrics);
        let entry = map.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })))
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram(Arc::new(HistogramCore {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })),
        }
    }

    /// A snapshot of every registered metric, in canonical (sorted) order.
    pub(crate) fn snapshot(&self) -> Vec<(MetricKey, Metric)> {
        lock(&self.metrics)
            .iter()
            .map(|(k, m)| (k.clone(), m.clone()))
            .collect()
    }
}

/// The process-wide default registry — where the exec substrate records
/// task latency and retry counts. Subsystem-scoped registries (the serve
/// daemon's job counters) live alongside it.
pub fn default_registry() -> &'static Registry {
    static DEFAULT: OnceLock<Registry> = OnceLock::new();
    DEFAULT.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_saturate() {
        let r = Registry::new();
        let c = r.counter("hits_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(r.counter("hits_total", &[]).value(), 5, "same handle");
        c.add(u64::MAX);
        assert_eq!(c.value(), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", &[("pool", "a")]);
        g.set(7);
        g.add(-9);
        assert_eq!(g.value(), -2);
        assert_eq!(r.gauge("depth", &[("pool", "a")]).value(), -2);
        assert_eq!(
            r.gauge("depth", &[("pool", "b")]).value(),
            0,
            "distinct labels"
        );
    }

    #[test]
    fn histogram_bucket_boundaries_at_u64_edges() {
        // The log2 bucket contract, pinned exactly at the edges.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 10), 10);
        assert_eq!(bucket_index((1 << 10) + 1), 11);
        assert_eq!(bucket_index(1 << 62), 62);
        assert_eq!(bucket_index((1 << 62) + 1), 63);
        assert_eq!(bucket_index(1 << 63), 63, "largest finite bound");
        assert_eq!(bucket_index((1 << 63) + 1), HISTOGRAM_BUCKETS, "+Inf");
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS, "+Inf");
    }

    #[test]
    fn histogram_records_sum_count_and_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_us", &[]);
        for v in [0u64, 1, 2, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.bucket_count(0), 2, "0 and 1");
        assert_eq!(h.bucket_count(1), 1, "2");
        assert_eq!(h.bucket_count(10), 1, "1000 <= 1024");
        assert_eq!(h.bucket_count(HISTOGRAM_BUCKETS), 1, "u64::MAX is +Inf");
    }

    #[test]
    fn kind_mismatch_degrades_to_a_detached_handle() {
        let r = Registry::new();
        let c = r.counter("x", &[]);
        c.inc();
        // Asking for "x" as a histogram must not panic or clobber.
        let h = r.histogram("x", &[]);
        h.observe(3);
        assert_eq!(c.value(), 1, "the counter is untouched");
    }

    #[test]
    fn metric_key_renders_prometheus_ids() {
        assert_eq!(MetricKey::new("a_total", &[]).render(), "a_total");
        assert_eq!(
            MetricKey::new("a_total", &[("layer", "sweep.cell")]).render(),
            "a_total{layer=\"sweep.cell\"}"
        );
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
