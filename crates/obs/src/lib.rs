//! # inet-obs — zero-dependency observability for the toolkit
//!
//! The execution substrate (`inet-exec`), the journaled pipeline, the
//! resilience sweep, and the serve daemon all do timed, retried, fenced
//! work — and before this crate none of it was measurable without println
//! archaeology. `inet-obs` is the shared telemetry vocabulary:
//!
//! * [`Registry`] — named **counters**, **gauges**, and fixed-bucket
//!   **histograms** (log2 latency buckets) behind plain atomics, with a
//!   process-wide [`default_registry`]. Registration takes one uncontended
//!   mutex; every update after that is a single atomic op.
//! * [`span`] — lightweight start/stop scopes with monotonic timing, a
//!   small thread id, and the same `(layer, scope)` vocabulary the
//!   exec/fault layers use. Records are collected **per thread** (no lock
//!   on the record path) and merged into a span tree on flush;
//!   [`span::capture`] extracts one subtree — the pipeline persists it as
//!   the `telemetry.json` run artifact.
//! * [`expo`] — Prometheus text exposition plus a flat-JSON form, and a
//!   small format checker the CI smoke job leans on.
//!
//! ## Telemetry is inert — provably
//!
//! Nothing in this crate feeds back into results: recorders observe wall
//! time and counts, never values. Every recording entry point consults the
//! `obs.record` failpoint via [`inet_fault::check_contained`], so a chaos
//! plan can make the recorder error, sleep, or **panic** — a panicking
//! recorder drops its record and the job carries on. The determinism
//! suites run with telemetry permanently on; outputs stay bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod registry;
pub mod span;

pub use expo::{render_json, render_prometheus, validate_prometheus};
pub use registry::{default_registry, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::{SpanGuard, SpanRecord};

/// Consults the `obs.record` failpoint: `true` when recording may proceed.
///
/// An injected `Error` (or a contained injected `Panic`) makes the recorder
/// silently skip one record; `Delay` sleeps and proceeds. With fault
/// injection compiled out this inlines to `true`.
#[inline]
pub(crate) fn record_allowed(scope: u64) -> bool {
    inet_fault::check_contained("obs.record", scope).is_ok()
}
