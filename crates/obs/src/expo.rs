//! Exposition: Prometheus text format and a flat-JSON form.
//!
//! The serve daemon answers a `metrics` request with
//! [`render_prometheus`] output (its own registry concatenated with the
//! process default), and [`validate_prometheus`] is the small checker the
//! CI smoke job and the unit tests run over scraped text: every sample
//! line must parse, histogram buckets must be cumulative and end at
//! `+Inf`, and `_count` must match the `+Inf` bucket.

use crate::registry::{Metric, MetricKey, Registry, HISTOGRAM_BUCKETS};

/// The inclusive upper bound of finite bucket `i`, rendered for the `le`
/// label (`2^i`).
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// Renders every metric in `registry` in Prometheus text exposition
/// format, in canonical (sorted) order. Counters get a `# TYPE ... counter`
/// line, gauges `gauge`, histograms `histogram` with cumulative
/// `_bucket{le=...}` samples, `_sum`, and `_count`. Only buckets up to the
/// highest occupied one are emitted (plus `+Inf`, always), so the text
/// stays compact.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_type_line: Option<String> = None;
    let mut emit_type = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if last_type_line.as_deref() != Some(line.as_str()) {
            out.push_str(&line);
            last_type_line = Some(line);
        }
    };
    for (key, metric) in registry.snapshot() {
        match metric {
            Metric::Counter(c) => {
                emit_type(&mut out, &key.name, "counter");
                out.push_str(&format!("{} {}\n", key.render(), c.value()));
            }
            Metric::Gauge(g) => {
                emit_type(&mut out, &key.name, "gauge");
                out.push_str(&format!("{} {}\n", key.render(), g.value()));
            }
            Metric::Histogram(h) => {
                emit_type(&mut out, &key.name, "histogram");
                let highest = (0..=HISTOGRAM_BUCKETS)
                    .rev()
                    .find(|&i| h.bucket_count(i) > 0)
                    .unwrap_or(0);
                let mut cumulative = 0u64;
                for i in 0..=highest.min(HISTOGRAM_BUCKETS - 1) {
                    cumulative += h.bucket_count(i);
                    out.push_str(&format!(
                        "{} {}\n",
                        bucket_key(&key, &bucket_bound(i).to_string()),
                        cumulative
                    ));
                }
                out.push_str(&format!("{} {}\n", bucket_key(&key, "+Inf"), h.count()));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    key.name,
                    label_block(&key),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    key.name,
                    label_block(&key),
                    h.count()
                ));
            }
        }
    }
    out
}

/// `name_bucket{<labels>,le="bound"}`.
fn bucket_key(key: &MetricKey, le: &str) -> String {
    let mut labels: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", crate::registry::escape_label(v)))
        .collect();
    labels.push(format!("le=\"{le}\""));
    format!("{}_bucket{{{}}}", key.name, labels.join(","))
}

/// The `{...}` label block of `key` (empty string without labels).
fn label_block(key: &MetricKey) -> String {
    if key.labels.is_empty() {
        String::new()
    } else {
        let pairs: Vec<String> = key
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::registry::escape_label(v)))
            .collect();
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders every metric as one flat JSON object: counters and gauges map
/// their canonical id to the value; histograms contribute `<id>:count` and
/// `<id>:sum` entries. Keys are JSON-escaped.
pub fn render_json(registry: &Registry) -> String {
    let mut fields = Vec::new();
    let esc = |s: &str| {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    };
    for (key, metric) in registry.snapshot() {
        let id = key.render();
        match metric {
            Metric::Counter(c) => fields.push(format!("\"{}\":{}", esc(&id), c.value())),
            Metric::Gauge(g) => fields.push(format!("\"{}\":{}", esc(&id), g.value())),
            Metric::Histogram(h) => {
                fields.push(format!("\"{}:count\":{}", esc(&id), h.count()));
                fields.push(format!("\"{}:sum\":{}", esc(&id), h.sum()));
            }
        }
    }
    format!("{{{}}}", fields.join(","))
}

/// Validates Prometheus text exposition: every non-comment line is
/// `id value`, `# TYPE` kinds are known, histogram `_bucket` series are
/// cumulative (non-decreasing) and end with an `le="+Inf"` bucket equal to
/// the series' `_count`. Returns the first problem found.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    // A histogram series is its name plus its label set minus `le`: two
    // label sets of one metric are independent (each restarts cumulative
    // counting), so they must not be compared against each other.
    fn series_key(name: &str, labels: &str) -> String {
        let kept: Vec<&str> = labels
            .trim_end_matches('}')
            .split(',')
            .filter(|p| !p.trim_start().starts_with("le=") && !p.is_empty())
            .collect();
        format!("{name}{{{}}}", kept.join(","))
    }
    let mut bucket_prev: Option<(String, u64)> = None;
    let mut inf_seen: Option<(String, u64)> = None;
    let check_series_closed = |bucket_prev: &mut Option<(String, u64)>,
                               inf_seen: &mut Option<(String, u64)>| {
        if let Some((name, _)) = bucket_prev.take() {
            if inf_seen.take().map(|(n, _)| n) != Some(name.clone()) {
                return Err(format!("histogram {name} has no le=\"+Inf\" bucket"));
            }
        }
        Ok(())
    };
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            check_series_closed(&mut bucket_prev, &mut inf_seen)?;
            let mut it = rest.split_whitespace();
            let _name = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without a name", no + 1))?;
            match it.next() {
                Some("counter") | Some("gauge") | Some("histogram") | Some("summary")
                | Some("untyped") => {}
                other => return Err(format!("line {}: unknown TYPE {:?}", no + 1, other)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (id, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", no + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparsable value: {line:?}", no + 1))?;
        if id.is_empty()
            || !id
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            return Err(format!("line {}: bad metric id: {line:?}", no + 1));
        }
        if let Some((series, labels)) = id.split_once('{') {
            if !labels.ends_with('}') {
                return Err(format!("line {}: unclosed label block: {line:?}", no + 1));
            }
            if let Some(series) = series.strip_suffix("_bucket") {
                let series = series_key(series, labels);
                let count = value as u64;
                if labels.contains("le=\"+Inf\"") {
                    if let Some((prev_name, _)) = &bucket_prev {
                        if *prev_name != series {
                            return Err(format!("histogram {prev_name} has no le=\"+Inf\" bucket"));
                        }
                    }
                    bucket_prev = None;
                    inf_seen = Some((series, count));
                } else {
                    match &bucket_prev {
                        Some((prev_name, prev)) if *prev_name == series && count < *prev => {
                            return Err(format!(
                                "line {}: bucket counts decrease for {series}",
                                no + 1
                            ));
                        }
                        Some((prev_name, _)) if *prev_name == series => {}
                        Some(_) => {
                            check_series_closed(&mut bucket_prev, &mut inf_seen)?;
                        }
                        None => {}
                    }
                    bucket_prev = Some((series, count));
                }
                continue;
            }
        }
        let (base, labels) = id.split_once('{').unwrap_or((id, ""));
        if let Some(series) = base.strip_suffix("_count") {
            let series = series_key(series, labels);
            if let Some((inf_name, inf_count)) = &inf_seen {
                if *inf_name == series && value as u64 != *inf_count {
                    return Err(format!(
                        "histogram {series}: _count {} != +Inf bucket {}",
                        value as u64, inf_count
                    ));
                }
            }
        }
    }
    check_series_closed(&mut bucket_prev, &mut inf_seen)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{bucket_index, Registry};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("inet_jobs_accepted_total", &[]).add(3);
        r.gauge("inet_jobs_queued", &[]).set(2);
        let h = r.histogram("inet_task_latency_us", &[("layer", "sweep.cell")]);
        for v in [1u64, 5, 5, 900, u64::MAX] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn prometheus_rendering_is_valid_and_complete() {
        let r = sample_registry();
        let text = render_prometheus(&r);
        validate_prometheus(&text).expect(&text);
        assert!(
            text.contains("# TYPE inet_jobs_accepted_total counter"),
            "{text}"
        );
        assert!(text.contains("inet_jobs_accepted_total 3"), "{text}");
        assert!(text.contains("# TYPE inet_jobs_queued gauge"), "{text}");
        assert!(
            text.contains("# TYPE inet_task_latency_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("inet_task_latency_us_bucket{layer=\"sweep.cell\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("inet_task_latency_us_bucket{layer=\"sweep.cell\",le=\"+Inf\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("inet_task_latency_us_count{layer=\"sweep.cell\"} 5"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        h.observe(1); // bucket 0
        h.observe(2); // bucket 1
        h.observe(2);
        let text = render_prometheus(&r);
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        validate_prometheus(&text).expect(&text);
    }

    #[test]
    fn multi_label_set_histograms_validate_as_independent_series() {
        let r = Registry::new();
        // Second label set restarts cumulative counting at lower values —
        // the checker must not read that as a decreasing series.
        let a = r.histogram("inet_task_latency_us", &[("layer", "measure")]);
        for v in [1u64, 2, 900, 901, 902] {
            a.observe(v);
        }
        r.histogram("inet_task_latency_us", &[("layer", "attack")])
            .observe(3);
        let text = render_prometheus(&r);
        validate_prometheus(&text).expect(&text);
    }

    #[test]
    fn checker_rejects_malformed_exposition() {
        assert!(validate_prometheus("# TYPE x antimatter\nx 1\n").is_err());
        assert!(validate_prometheus("no_value_here\n").is_err());
        assert!(validate_prometheus("x NaNish\n").is_err());
        let decreasing = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                          h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(decreasing).is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(no_inf).is_err());
        let count_mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(count_mismatch).is_err());
        assert!(validate_prometheus("").is_ok());
    }

    #[test]
    fn json_rendering_is_flat_and_sorted() {
        let r = sample_registry();
        let json = render_json(&r);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"inet_jobs_accepted_total\":3"), "{json}");
        assert!(json.contains("\"inet_jobs_queued\":2"), "{json}");
        assert!(
            json.contains("\"inet_task_latency_us{layer=\\\"sweep.cell\\\"}:count\":5"),
            "{json}"
        );
    }

    #[test]
    fn bucket_bound_matches_bucket_index() {
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound {i}");
            if bucket_bound(i) < u64::MAX {
                assert!(
                    bucket_index(bucket_bound(i) + 1) > i || i == 0,
                    "bound {i}+1"
                );
            }
        }
    }
}
