//! Lightweight span scopes: start/stop timing with monotonic clocks,
//! thread ids, and the exec/fault `(layer, scope)` vocabulary.
//!
//! [`enter`] opens a span on the current thread; dropping the guard closes
//! it. Records accumulate in a **thread-local** buffer — the record path
//! takes no lock — and a thread's batch is merged into the process-wide
//! sink only when its outermost span closes (one mutex per batch, bounded
//! memory: the sink keeps the most recent records and counts what it
//! drops). Nesting is tracked per thread, so a batch is a ready-made span
//! tree: each record carries the index of its parent within the batch.
//!
//! [`capture`] runs a closure under a root span and hands back exactly the
//! subtree it recorded — this is how the pipeline collects per-run stage
//! spans for the `telemetry.json` artifact without seeing spans of other
//! jobs running concurrently in the same daemon.

use crate::record_allowed;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The layer name (`"pipeline.stage"`, `"exec.fanout"`, ...).
    pub name: String,
    /// The deterministic instance key — same vocabulary as
    /// [`inet_fault::CATALOG`] scopes: stage index, cell index, attempt.
    pub scope: u64,
    /// Small sequential id of the recording thread.
    pub thread: u64,
    /// Start time in microseconds (monotonic, relative to the process
    /// epoch — or to the stored baseline once persisted).
    pub start_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Index of the enclosing span within the same batch, if any.
    pub parent: Option<usize>,
}

impl SpanRecord {
    /// Serializes as the compact pipe-separated line stored in
    /// `telemetry.json`: `name|scope|thread|start_us|dur_us|parent`.
    pub fn to_line(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.name,
            self.scope,
            self.thread,
            self.start_us,
            self.dur_us,
            self.parent.map_or("-".to_string(), |p| p.to_string())
        )
    }

    /// Parses [`SpanRecord::to_line`] output; `None` on malformed input.
    pub fn parse_line(line: &str) -> Option<SpanRecord> {
        let mut parts = line.split('|');
        let name = parts.next()?.to_string();
        let scope = parts.next()?.parse().ok()?;
        let thread = parts.next()?.parse().ok()?;
        let start_us = parts.next()?.parse().ok()?;
        let dur_us = parts.next()?.parse().ok()?;
        let parent = match parts.next()? {
            "-" => None,
            p => Some(p.parse().ok()?),
        };
        if parts.next().is_some() || name.is_empty() {
            return None;
        }
        Some(SpanRecord {
            name,
            scope,
            thread,
            start_us,
            dur_us,
            parent,
        })
    }
}

/// Microseconds since the process epoch (first use).
fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

fn next_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Per-thread span state: the open-span stack and the closed-record batch.
struct ThreadSpans {
    thread: u64,
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
    /// Record-index watermarks of the [`capture`] calls in progress.
    captures: Vec<usize>,
}

thread_local! {
    static TL: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        thread: next_thread_id(),
        records: Vec::new(),
        stack: Vec::new(),
        captures: Vec::new(),
    });
}

/// The bounded process-wide sink of flushed batches.
struct Sink {
    batches: Vec<Vec<SpanRecord>>,
    total: usize,
    dropped: u64,
}

/// Most recent records the sink retains; older batches are dropped (and
/// counted) so a long-running daemon's span memory stays bounded.
const SINK_CAP: usize = 8192;

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            batches: Vec::new(),
            total: 0,
            dropped: 0,
        })
    })
}

fn flush_batch(records: Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
    s.total += records.len();
    s.batches.push(records);
    while s.total > SINK_CAP && s.batches.len() > 1 {
        let old = s.batches.remove(0);
        s.total -= old.len();
        s.dropped += old.len() as u64;
    }
}

/// Takes every record currently in the process-wide sink, parents rebased
/// to the returned vector. Returns `(records, dropped_so_far)`.
pub fn drain() -> (Vec<SpanRecord>, u64) {
    let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
    let batches = std::mem::take(&mut s.batches);
    s.total = 0;
    let dropped = s.dropped;
    drop(s);
    let mut out = Vec::new();
    for batch in batches {
        let base = out.len();
        for mut r in batch {
            r.parent = r.parent.map(|p| p + base);
            out.push(r);
        }
    }
    (out, dropped)
}

/// An open span; dropping it records the duration.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `None` when recording was suppressed (an injected `obs.record`
    /// fault): the guard is inert.
    index: Option<usize>,
}

/// Opens a span named `name` at instance key `scope` on this thread.
pub fn enter(name: &'static str, scope: u64) -> SpanGuard {
    if !record_allowed(scope) {
        return SpanGuard { index: None };
    }
    let index = TL.with(|tl| {
        let mut t = tl.borrow_mut();
        let index = t.records.len();
        let parent = t.stack.last().copied();
        let thread = t.thread;
        t.records.push(SpanRecord {
            name: name.to_string(),
            scope,
            thread,
            start_us: now_us(),
            dur_us: 0,
            parent,
        });
        t.stack.push(index);
        index
    });
    SpanGuard { index: Some(index) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else {
            return;
        };
        let end = now_us();
        let batch = TL.with(|tl| {
            let mut t = tl.borrow_mut();
            if let Some(r) = t.records.get_mut(index) {
                r.dur_us = end.saturating_sub(r.start_us);
            }
            // Guards drop in LIFO order, but be tolerant of a leaked guard:
            // pop through to this span's stack entry.
            while let Some(top) = t.stack.pop() {
                if top == index {
                    break;
                }
            }
            if t.stack.is_empty() && t.captures.is_empty() {
                Some(std::mem::take(&mut t.records))
            } else {
                None
            }
        });
        if let Some(records) = batch {
            flush_batch(records);
        }
    }
}

/// Runs `f` under a root span and returns its value together with the span
/// subtree recorded **by this thread** inside it (parents rebased so the
/// root is record 0 with no parent). Spans other threads record meanwhile
/// flow to the process-wide sink as usual.
pub fn capture<T>(name: &'static str, scope: u64, f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let watermark = TL.with(|tl| {
        let mut t = tl.borrow_mut();
        let w = t.records.len();
        t.captures.push(w);
        w
    });
    let guard = enter(name, scope);
    let value = f();
    drop(guard);
    let (subtree, remainder) = TL.with(|tl| {
        let mut t = tl.borrow_mut();
        t.captures.pop();
        let mut subtree: Vec<SpanRecord> = t.records.split_off(watermark);
        for r in &mut subtree {
            r.parent = r.parent.and_then(|p| p.checked_sub(watermark));
        }
        let remainder = if t.stack.is_empty() && t.captures.is_empty() {
            Some(std::mem::take(&mut t.records))
        } else {
            None
        };
        (subtree, remainder)
    });
    if let Some(records) = remainder {
        flush_batch(records);
    }
    (value, subtree)
}

/// Renders a span batch as an indented table with total and self times.
///
/// Records with a parent link nest under it; parentless records nest under
/// the smallest span that fully contains their interval (ties broken by
/// input order), which stitches cross-thread and cross-session batches
/// into one readable tree. Self time is the span's duration minus its
/// direct children's.
pub fn render_tree(records: &[SpanRecord]) -> String {
    let n = records.len();
    if n == 0 {
        return "(no spans recorded)\n".to_string();
    }
    let mut parent: Vec<Option<usize>> = records.iter().map(|r| r.parent).collect();
    // Attach parentless records by strict interval containment.
    for i in 0..n {
        if parent[i].is_some() {
            continue;
        }
        let (s, e) = (records[i].start_us, records[i].start_us + records[i].dur_us);
        let mut best: Option<usize> = None;
        for (j, c) in records.iter().enumerate() {
            if j == i {
                continue;
            }
            let (cs, ce) = (c.start_us, c.start_us + c.dur_us);
            let contains = cs <= s && e <= ce && (c.dur_us > records[i].dur_us || j < i);
            if contains && best.map_or(true, |b| c.dur_us < records[b].dur_us) {
                best = Some(j);
            }
        }
        parent[i] = best;
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (i, p) in parent.iter().enumerate() {
        match p {
            Some(p) if *p < n && *p != i => children[*p].push(i),
            _ => roots.push(i),
        }
    }
    for list in &mut children {
        list.sort_by_key(|&i| (records[i].start_us, i));
    }
    roots.sort_by_key(|&i| (records[i].start_us, i));

    let ms = |us: u64| us as f64 / 1_000.0;
    let mut out = String::from("  total ms    self ms  thr  span\n");
    // Iterative DFS; the visited set guards against malformed parent links
    // in hand-edited telemetry files.
    let mut visited = vec![false; n];
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let child_us: u64 = children[i]
            .iter()
            .map(|&c| records[c].dur_us)
            .fold(0, u64::saturating_add);
        let self_us = records[i].dur_us.saturating_sub(child_us);
        let r = &records[i];
        out.push_str(&format!(
            "{:>10.3} {:>10.3} {:>4}  {}{}[{}]\n",
            ms(r.dur_us),
            ms(self_us),
            r.thread,
            "  ".repeat(depth),
            r.name,
            r.scope
        ));
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_round_trips() {
        let r = SpanRecord {
            name: "pipeline.stage".into(),
            scope: 2,
            thread: 1,
            start_us: 10,
            dur_us: 99,
            parent: Some(0),
        };
        assert_eq!(SpanRecord::parse_line(&r.to_line()), Some(r.clone()));
        let root = SpanRecord { parent: None, ..r };
        assert_eq!(SpanRecord::parse_line(&root.to_line()), Some(root));
        assert_eq!(SpanRecord::parse_line("bad"), None);
        assert_eq!(SpanRecord::parse_line("a|1|2|3|4|x"), None);
        assert_eq!(SpanRecord::parse_line("a|1|2|3|4|-|extra"), None);
    }

    #[test]
    fn capture_returns_a_nested_subtree() {
        let ((), spans) = capture("run", 0, || {
            let _a = enter("stage", 0);
            drop(_a);
            let b = enter("stage", 1);
            let c = enter("inner", 9);
            drop(c);
            drop(b);
        });
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "run");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0), "stage 0 under run");
        assert_eq!(spans[2].parent, Some(0), "stage 1 under run");
        assert_eq!(spans[3].parent, Some(2), "inner under stage 1");
        assert!(spans[0].dur_us >= spans[1].dur_us.saturating_add(spans[2].dur_us));
    }

    #[test]
    fn nested_captures_split_cleanly() {
        let ((inner_spans,), outer) = capture("outer", 0, || {
            let (_, inner) = capture("inner", 1, || {
                drop(enter("leaf", 2));
            });
            (inner,)
        });
        assert_eq!(inner_spans.len(), 2);
        assert_eq!(inner_spans[0].name, "inner");
        assert_eq!(inner_spans[1].parent, Some(0));
        assert_eq!(outer.len(), 1, "inner subtree was extracted");
        assert_eq!(outer[0].name, "outer");
    }

    #[test]
    fn sink_collects_thread_batches() {
        let _ = drain();
        let handle = std::thread::spawn(|| {
            let g = enter("worker.task", 7);
            drop(g);
        });
        handle.join().expect("worker thread");
        drop(enter("local.task", 1));
        let (records, _) = drain();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"worker.task"), "{names:?}");
        assert!(names.contains(&"local.task"), "{names:?}");
        let (after, _) = drain();
        assert!(after.is_empty(), "drain empties the sink");
    }

    #[test]
    fn render_tree_indents_and_computes_self_time() {
        let spans = vec![
            SpanRecord {
                name: "run".into(),
                scope: 0,
                thread: 0,
                start_us: 0,
                dur_us: 10_000,
                parent: None,
            },
            SpanRecord {
                name: "pipeline.stage".into(),
                scope: 0,
                thread: 0,
                start_us: 100,
                dur_us: 4_000,
                parent: Some(0),
            },
            // Parentless, but contained inside the stage: containment
            // stitching must nest it there.
            SpanRecord {
                name: "sweep.cell".into(),
                scope: 3,
                thread: 2,
                start_us: 200,
                dur_us: 1_000,
                parent: None,
            },
        ];
        let table = render_tree(&spans);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[1].contains("run[0]"), "{table}");
        assert!(lines[2].contains("  pipeline.stage[0]"), "{table}");
        assert!(lines[3].contains("    sweep.cell[3]"), "{table}");
        // run self = 10ms - 4ms child; stage self = 4ms - 1ms child.
        assert!(lines[1].contains("6.000"), "{table}");
        assert!(lines[2].contains("3.000"), "{table}");
        assert_eq!(render_tree(&[]), "(no spans recorded)\n");
    }
}
