//! Property-based tests for the resilience engine: removal orders are
//! permutations, percolation curves obey their invariants, sweeps are
//! bit-identical for any thread count, and the robustness machinery
//! (panic isolation, checkpoints) holds under arbitrary graphs.

use inet_resilience::{
    percolation_curve, run_sweep, Checkpoint, Strategy as Attack, SweepConfig, STRATEGY_NAMES,
};
use proptest::prelude::*;

/// A random connected-ish edge set over `n` nodes, n in 2..30. A spanning
/// chain keeps curves non-trivial; extra random edges add structure.
fn graph_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edge =
            (0..n, 0..n).prop_filter_map("no self-loops", |(u, v)| (u != v).then_some((u, v)));
        (Just(n), proptest::collection::vec(edge, 0..60)).prop_map(|(n, mut edges)| {
            for i in 1..n {
                edges.push((i - 1, i));
            }
            (n, edges)
        })
    })
}

fn csr(n: usize, edges: &[(usize, usize)]) -> inet_graph::Csr {
    inet_graph::Csr::from_edges(n, edges)
}

fn is_permutation(order: &[u32], n: usize) -> bool {
    let mut seen = vec![false; n];
    order.len() == n
        && order
            .iter()
            .all(|&v| (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true))
}

proptest! {
    /// Every strategy produces a permutation of the node ids, and the same
    /// order again on a second call with the same seed.
    #[test]
    fn removal_orders_are_reproducible_permutations(
        (n, edges) in graph_edges(),
        seed in 0u64..1000,
    ) {
        let g = csr(n, &edges);
        for name in STRATEGY_NAMES {
            let s = Attack::parse(name).unwrap();
            let order = s.removal_order(&g, seed, 8);
            prop_assert!(is_permutation(&order, n), "{}: {:?}", name, order);
            prop_assert_eq!(&order, &s.removal_order(&g, seed, 8), "{} not reproducible", name);
        }
    }

    /// Curve invariants for an arbitrary order: endpoints recorded, giant
    /// and edge counts monotone non-increasing, giant bounded by survivors,
    /// f_c in [0, 1].
    #[test]
    fn curve_invariants((n, edges) in graph_edges(), seed in 0u64..1000) {
        let g = csr(n, &edges);
        let order = Attack::Random.removal_order(&g, seed, 8);
        let c = percolation_curve(&g, &order, 1);
        prop_assert_eq!(c.points.first().unwrap().removed, 0);
        prop_assert_eq!(c.points.first().unwrap().giant,
            inet_graph::traversal::giant_component(&g).0.node_count().max(1));
        prop_assert_eq!(c.points.last().unwrap().removed, n);
        prop_assert_eq!(c.points.last().unwrap().giant, 0);
        for w in c.points.windows(2) {
            prop_assert!(w[0].giant >= w[1].giant);
            prop_assert!(w[0].edges >= w[1].edges);
        }
        for p in &c.points {
            prop_assert!(p.giant <= n - p.removed);
            prop_assert!(p.mean_component >= 0.0 && p.mean_component.is_finite());
        }
        prop_assert!((0.0..=1.0).contains(&c.critical_fraction));
    }

    /// The tentpole determinism guarantee: a full sweep — every strategy,
    /// multiple replicas — returns bit-identical results for thread counts
    /// {1, 2, 7}.
    #[test]
    fn sweep_bit_identical_across_threads(
        (n, edges) in graph_edges(),
        seed in 0u64..1000,
    ) {
        let g = csr(n, &edges);
        let strategies: Vec<Attack> =
            STRATEGY_NAMES.iter().map(|s| Attack::parse(s).unwrap()).collect();
        let mut reference = None;
        for threads in [1usize, 2, 7] {
            let cfg = SweepConfig {
                strategies: strategies.clone(),
                replicas: 2,
                base_seed: seed,
                threads,
                record_every: 1,
                bc_sources: 8,
                ..SweepConfig::default()
            };
            let result = run_sweep(&g, &cfg).unwrap();
            prop_assert_eq!(result.cells.len(), strategies.len() + 1); // +1: random's 2nd replica
            match &reference {
                None => reference = Some(result),
                Some(r) => prop_assert_eq!(&result, r, "threads {} diverged", threads),
            }
        }
    }

    /// Checkpoint JSON round-trips losslessly for arbitrary sweep output.
    #[test]
    fn checkpoint_round_trips_sweep_state(
        (n, edges) in graph_edges(),
        seed in 0u64..1000,
    ) {
        let g = csr(n, &edges);
        let cfg = SweepConfig {
            strategies: vec![Attack::Random, Attack::Degree { recalc: true }],
            replicas: 2,
            base_seed: seed,
            record_every: 3,
            ..SweepConfig::default()
        };
        let result = run_sweep(&g, &cfg).unwrap();
        let mut ckpt = Checkpoint::new(seed);
        ckpt.cells = result.cells.clone();
        let parsed = Checkpoint::parse(&ckpt.to_json()).unwrap();
        prop_assert_eq!(parsed, ckpt);
    }

    /// Panic isolation under arbitrary graphs: injecting a failure into any
    /// cell still completes the sweep, records the failure, and leaves every
    /// other cell byte-identical to a clean run.
    #[test]
    fn injected_failures_never_abort(
        (n, edges) in graph_edges(),
        seed in 0u64..1000,
        fail in 0usize..4,
    ) {
        let g = csr(n, &edges);
        let mk = |fail_cells: Vec<usize>| SweepConfig {
            strategies: vec![Attack::Random, Attack::Degree { recalc: false }],
            replicas: 3,
            base_seed: seed,
            threads: 2,
            fail_cells,
            ..SweepConfig::default()
        };
        let clean = run_sweep(&g, &mk(vec![])).unwrap();
        let hurt = run_sweep(&g, &mk(vec![fail])).unwrap();
        prop_assert_eq!(hurt.cells.len(), clean.cells.len());
        prop_assert_eq!(hurt.failures.len(), 1);
        prop_assert_eq!(hurt.failures[0].attempt, 0);
        for (a, b) in hurt.cells.iter().zip(&clean.cells) {
            if a.resampled {
                prop_assert_eq!(&a.strategy, &b.strategy);
                prop_assert_eq!(a.replica, b.replica);
            } else {
                prop_assert_eq!(a, b);
            }
        }
    }
}
