//! Percolation curves by reverse-incremental union-find.
//!
//! Removing nodes one by one and recomputing components after every step is
//! `O(N·E)`. Running the film backwards is almost free: start from the empty
//! graph, *add* the nodes in reverse removal order, and merge components
//! with a union-find as each node's edges to already-present neighbors
//! activate. One full attack curve — giant component size, mean finite
//! component size, and remaining edge count after every removal — costs
//! `O(E·α(N))` total.
//!
//! Everything here is integer arithmetic plus one division per recorded
//! point, so a curve is a pure function of `(graph, order)`: bit-identical
//! on every run and for any thread count of the surrounding sweep.

use inet_graph::Csr;

/// State of the damaged network after `removed` nodes are gone.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Number of nodes removed so far.
    pub removed: usize,
    /// Size of the largest surviving connected component.
    pub giant: usize,
    /// Number of surviving edges (both endpoints alive).
    pub edges: usize,
    /// Mean size `⟨s⟩ = Σ's²/Σ's` of the *finite* components (the giant is
    /// excluded, as in percolation theory); 0 when none survive.
    pub mean_component: f64,
}

/// A full percolation/attack response curve for one removal order.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCurve {
    /// Nodes in the intact graph.
    pub nodes: usize,
    /// Edges in the intact graph.
    pub edges: usize,
    /// Recorded states, ascending in `removed`; always includes the intact
    /// graph (`removed = 0`) and the empty graph (`removed = nodes`).
    pub points: Vec<CurvePoint>,
    /// Critical removal fraction `f_c`: the smallest `removed/nodes` at
    /// which the giant component drops below `⌈√N⌉` (the standard
    /// finite-size proxy for the percolation transition). 0 for graphs that
    /// start below the threshold.
    pub critical_fraction: f64,
}

impl AttackCurve {
    /// Giant-component fraction `S(f)` at removal fraction `f`, read from
    /// the recorded point with the largest `removed ≤ f·N`.
    pub fn giant_fraction_at(&self, f: f64) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let target = (f.clamp(0.0, 1.0) * self.nodes as f64).floor() as usize;
        let mut best = &self.points[0];
        for p in &self.points {
            if p.removed <= target {
                best = p;
            } else {
                break;
            }
        }
        best.giant as f64 / self.nodes as f64
    }
}

/// Union-find with union by size and path halving.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let grand = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    /// Merges the components of `a` and `b`; returns the new root's size, or
    /// `None` if they were already connected.
    fn union(&mut self, a: u32, b: u32) -> Option<(u32, u32, u32)> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let (sb, ss) = (self.size[big as usize], self.size[small as usize]);
        self.parent[small as usize] = big;
        self.size[big as usize] = sb + ss;
        Some((sb, ss, sb + ss))
    }
}

/// Computes the attack curve for removing the nodes of `g` in `order`
/// (a permutation of `0..N`). States are recorded every `record_every`
/// removals (`0` and `1` both mean every step); `removed = 0` and
/// `removed = N` are always recorded.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..g.node_count()` — the
/// removal strategies in [`crate::strategy`] always produce one.
pub fn percolation_curve(g: &Csr, order: &[u32], record_every: usize) -> AttackCurve {
    let n = g.node_count();
    assert_eq!(order.len(), n, "removal order must cover every node");
    if n == 0 {
        return AttackCurve {
            nodes: 0,
            edges: 0,
            points: vec![CurvePoint {
                removed: 0,
                giant: 0,
                edges: 0,
                mean_component: 0.0,
            }],
            critical_fraction: 0.0,
        };
    }
    let mut seen = vec![false; n];
    for &v in order {
        assert!(
            (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true),
            "removal order must be a permutation of node ids"
        );
    }

    let stride = record_every.max(1);
    let threshold = (n as f64).sqrt().ceil() as usize;
    let mut uf = UnionFind::new(n);
    let mut alive = vec![false; n];
    // Running aggregates over the active (re-added) nodes.
    let mut active_nodes = 0usize;
    let mut active_edges = 0usize;
    let mut giant = 0usize;
    let mut sum_sq: u64 = 0; // Σ s² over active components
    let mut critical_removed = n; // min removed with giant < threshold
    let mut points: Vec<CurvePoint> = Vec::with_capacity(n / stride + 2);

    let mut record =
        |removed: usize, giant: usize, active_nodes: usize, active_edges: usize, sum_sq: u64| {
            let finite_nodes = active_nodes - giant;
            let finite_sq = sum_sq - (giant * giant) as u64;
            let mean_component = if finite_nodes > 0 {
                finite_sq as f64 / finite_nodes as f64
            } else {
                0.0
            };
            points.push(CurvePoint {
                removed,
                giant,
                edges: active_edges,
                mean_component,
            });
        };

    // The empty graph: everything removed.
    record(n, giant, active_nodes, active_edges, sum_sq);
    for i in (0..n).rev() {
        let v = order[i];
        alive[v as usize] = true;
        active_nodes += 1;
        sum_sq += 1;
        giant = giant.max(1);
        for &u in g.neighbors(v as usize) {
            if alive[u as usize] {
                active_edges += 1;
                if let Some((sa, sb, merged)) = uf.union(v, u) {
                    sum_sq += (merged * merged) as u64;
                    sum_sq -= (sa * sa) as u64 + (sb * sb) as u64;
                    giant = giant.max(merged as usize);
                }
            }
        }
        // This state corresponds to `removed = i`.
        if giant < threshold {
            critical_removed = i;
        }
        if i % stride == 0 {
            record(i, giant, active_nodes, active_edges, sum_sq);
        }
    }
    points.reverse();

    let critical_fraction = if giant < threshold {
        // Even the intact graph is below threshold: fragmented from the start.
        0.0
    } else {
        critical_removed as f64 / n as f64
    };
    AttackCurve {
        nodes: n,
        edges: g.edge_count(),
        points,
        critical_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        Csr::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn intact_and_empty_endpoints() {
        let g = path(10);
        let order: Vec<u32> = (0..10).collect();
        let c = percolation_curve(&g, &order, 1);
        assert_eq!(c.points.first().unwrap().removed, 0);
        assert_eq!(c.points.first().unwrap().giant, 10);
        assert_eq!(c.points.first().unwrap().edges, 9);
        assert_eq!(c.points.last().unwrap().removed, 10);
        assert_eq!(c.points.last().unwrap().giant, 0);
        assert_eq!(c.points.last().unwrap().edges, 0);
    }

    #[test]
    fn removing_path_head_shrinks_giant_by_one() {
        let g = path(6);
        let order: Vec<u32> = (0..6).collect();
        let c = percolation_curve(&g, &order, 1);
        for p in &c.points {
            assert_eq!(p.giant, 6 - p.removed, "removed {}", p.removed);
        }
    }

    #[test]
    fn removing_star_center_first_shatters() {
        let edges: Vec<(usize, usize)> = (1..8).map(|i| (0, i)).collect();
        let g = Csr::from_edges(8, &edges);
        let mut order: Vec<u32> = (0..8).collect();
        let c = percolation_curve(&g, &order, 1);
        // After removing the hub: 7 isolated leaves.
        assert_eq!(c.points[1].giant, 1);
        assert_eq!(c.points[1].edges, 0);
        assert_eq!(c.points[1].mean_component, 1.0);
        // Threshold ⌈√8⌉ = 3: giant falls below it at the first removal.
        assert!((c.critical_fraction - 1.0 / 8.0).abs() < 1e-12);
        // Leaf-first order keeps the hub connected much longer.
        order.rotate_left(1); // 1,2,...,7,0
        let leaf_first = percolation_curve(&g, &order, 1);
        assert!(leaf_first.critical_fraction > c.critical_fraction);
    }

    #[test]
    fn mean_component_excludes_the_giant() {
        // Components of sizes 4 (giant), 2, 1 after zero removals.
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let order: Vec<u32> = (0..7).collect();
        let c = percolation_curve(&g, &order, 1);
        let p0 = &c.points[0];
        assert_eq!(p0.giant, 4);
        assert_eq!(p0.edges, 4);
        // ⟨s⟩ over finite components: (2² + 1²) / (2 + 1) = 5/3.
        assert!((p0.mean_component - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn giant_and_edges_are_monotone() {
        use rand::Rng;
        let mut rng = inet_stats::rng::seeded_rng(5);
        let n = 60;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_range(0.0..1.0) < 0.06 {
                    edges.push((i, j));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let order: Vec<u32> = (0..n as u32).collect();
        let c = percolation_curve(&g, &order, 1);
        for w in c.points.windows(2) {
            assert!(w[0].giant >= w[1].giant);
            assert!(w[0].edges >= w[1].edges);
            assert_eq!(w[0].removed + 1, w[1].removed);
        }
    }

    #[test]
    fn record_stride_keeps_endpoints() {
        let g = path(100);
        let order: Vec<u32> = (0..100).collect();
        let c = percolation_curve(&g, &order, 7);
        assert_eq!(c.points.first().unwrap().removed, 0);
        assert_eq!(c.points.last().unwrap().removed, 100);
        for p in &c.points {
            assert!(p.removed == 100 || p.removed % 7 == 0);
        }
        // Strided and full curves agree wherever both record.
        let full = percolation_curve(&g, &order, 1);
        for p in &c.points {
            assert!(full.points.contains(p));
        }
        assert_eq!(c.critical_fraction, full.critical_fraction);
    }

    #[test]
    fn giant_fraction_lookup() {
        let g = path(10);
        let order: Vec<u32> = (0..10).collect();
        let c = percolation_curve(&g, &order, 1);
        assert!((c.giant_fraction_at(0.0) - 1.0).abs() < 1e-12);
        assert!((c.giant_fraction_at(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(c.giant_fraction_at(1.0), 0.0);
    }

    #[test]
    fn empty_graph_curve() {
        let c = percolation_curve(&Csr::from_edges(0, &[]), &[], 1);
        assert_eq!(c.nodes, 0);
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.critical_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        let g = path(3);
        percolation_curve(&g, &[0, 0, 2], 1);
    }
}
