//! Robust parallel attack sweeps over `strategies × replicas`.
//!
//! A sweep's unit of work is a **cell**: one `(strategy, replica)` pair,
//! computed as `removal_order → percolation_curve`. Cells fan out over the
//! deterministic work-stealing pool behind [`inet_exec::Executor`], and the
//! sweep is hardened in two ways the plain pool is not:
//!
//! * **Panic isolation** — each cell runs behind the shared
//!   [`inet_exec::PanicFence`] (via `run_fenced`). A worker panic becomes a
//!   [`FailureRecord`], the cell is resampled once with a fresh derived
//!   seed, and the sweep carries on; only a second failure leaves a hole
//!   (still recorded, never a process abort).
//! * **Checkpointing** — with [`SweepConfig::checkpoint`] set, every
//!   finished cell is appended to an atomically-rewritten JSON state file.
//!   Re-running the same configuration with the same file resumes: done
//!   cells are loaded, not recomputed (enforced in tests via the panic
//!   hook — a resumed cell never trips it).
//!
//! Results are deterministic for any thread count: each cell's seed is a
//! pure function of `(base_seed, cell index)`, the curve math is integer
//! union-find, and the output ordering is canonical (configuration order),
//! not completion order.

use crate::checkpoint::{
    fingerprint, CellRecord, Checkpoint, CheckpointError, FailureRecord, RetryPolicy,
};
use crate::percolation::percolation_curve;
use crate::strategy::Strategy;
use inet_exec::{run_fenced, Executor, Task, TaskError};
use inet_graph::CancelToken;
use inet_graph::Csr;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

/// Configuration of one attack sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Strategies to run, in report order.
    pub strategies: Vec<Strategy>,
    /// Replicas per *stochastic* strategy (deterministic strategies always
    /// run exactly one replica; extra copies would be identical).
    pub replicas: usize,
    /// Base seed; each cell derives its own stream via
    /// [`inet_stats::rng::child_seed`].
    pub base_seed: u64,
    /// Worker threads for the cell fan-out.
    pub threads: usize,
    /// Record a curve point every this many removals (0/1 = every step).
    pub record_every: usize,
    /// Brandes source-sample size for the betweenness strategies.
    pub bc_sources: usize,
    /// Checkpoint file: load/skip completed cells on entry, persist each
    /// cell on completion.
    pub checkpoint: Option<PathBuf>,
    /// Cooperative cancellation: workers poll this token **between cells**
    /// and stop claiming work once it fires, so cancel latency is bounded
    /// by one cell and every completed cell is already checkpointed. The
    /// default token never fires.
    pub cancel: CancelToken,
    /// Test-only failure injection: cells whose index is listed here panic
    /// on their first attempt (the resample attempt runs clean). Leave
    /// empty outside tests.
    #[doc(hidden)]
    pub fail_cells: Vec<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            strategies: vec![Strategy::Random],
            replicas: 1,
            base_seed: 0,
            threads: 1,
            record_every: 1,
            bc_sources: 64,
            checkpoint: None,
            cancel: CancelToken::new(),
            fail_cells: Vec::new(),
        }
    }
}

/// One unit of sweep work.
#[derive(Debug, Clone)]
struct Cell {
    strategy: Strategy,
    replica: usize,
    /// Position in the canonical cell list; seeds derive from this, so a
    /// cell's curve is independent of how many cells were resumed.
    index: usize,
}

impl SweepConfig {
    /// The canonical cell list: strategies in configuration order, replicas
    /// ascending; deterministic strategies contribute one cell each.
    pub fn cells(&self) -> Vec<(Strategy, usize)> {
        let mut out = Vec::new();
        for &s in &self.strategies {
            let reps = if s.stochastic() {
                self.replicas.max(1)
            } else {
                1
            };
            for r in 0..reps {
                out.push((s, r));
            }
        }
        out
    }

    /// The configuration part of the checkpoint fingerprint. Thread count
    /// and the test hook are deliberately excluded: neither changes any
    /// result, so resuming with a different `--threads` is legal.
    fn config_string(&self) -> String {
        let names: Vec<&str> = self.strategies.iter().map(|s| s.name()).collect();
        format!(
            "v1 strategies=[{}] replicas={} seed={} record={} bc_sources={}",
            names.join(","),
            self.replicas,
            self.base_seed,
            self.record_every,
            self.bc_sources
        )
    }
}

/// The outcome of [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Completed cells in canonical order (configuration order, replicas
    /// ascending) — one entry per cell that succeeded on either attempt,
    /// including cells loaded from the checkpoint.
    pub cells: Vec<CellRecord>,
    /// Every caught worker panic, canonically ordered; a cell with a
    /// failure at attempt 0 and a cell entry was rescued by the resample.
    pub failures: Vec<FailureRecord>,
    /// Cells skipped because the checkpoint already contained them.
    pub resumed: usize,
    /// Non-fatal problems (e.g. a checkpoint write that failed).
    pub warnings: Vec<String>,
    /// `true` when the cancel token fired before every cell completed:
    /// `cells` holds only the finished (and checkpointed) cells, and a
    /// re-run against the same checkpoint finishes the rest.
    pub interrupted: bool,
}

/// Why a sweep could not start. Worker-level problems never surface here —
/// they degrade to [`FailureRecord`]s — so every variant is a checkpoint
/// problem.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The checkpoint exists but belongs to a different
    /// `(graph, configuration)`; `source` names the differing field.
    IncompatibleCheckpoint {
        /// The offending checkpoint file.
        path: PathBuf,
        /// The field-level diagnosis
        /// ([`CheckpointError::Incompatible`]).
        source: CheckpointError,
    },
    /// The checkpoint could not be read or parsed, even via its backup.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::IncompatibleCheckpoint { path, source } => write!(
                f,
                "checkpoint {} belongs to a different graph or sweep configuration — {source} \
                 (refusing to mix results; delete it or change --resume)",
                path.display()
            ),
            SweepError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::IncompatibleCheckpoint { source, .. } => Some(source),
            SweepError::Checkpoint(e) => Some(e),
        }
    }
}

impl SweepError {
    /// `true` for the "right file, wrong run" case — the CLI gives it a
    /// dedicated exit code because the fix (delete the file or point
    /// `--resume` elsewhere) differs from an IO failure's.
    pub fn is_incompatible(&self) -> bool {
        matches!(self, SweepError::IncompatibleCheckpoint { .. })
    }
}

/// Mutex-guarded mutable sweep state shared by workers.
struct SweepState {
    ckpt: Checkpoint,
    warnings: Vec<String>,
}

/// Runs a full attack sweep on `g`. Errors only on configuration problems
/// (unusable checkpoint); worker panics degrade per-cell instead.
pub fn run_sweep(g: &Csr, cfg: &SweepConfig) -> Result<SweepResult, SweepError> {
    let config = cfg.config_string();
    let fp = fingerprint(g, &config);
    let retry = RetryPolicy::default();
    let mut initial_warnings: Vec<String> = Vec::new();
    let ckpt = match &cfg.checkpoint {
        Some(path) => {
            match Checkpoint::load_recovering(path, &retry).map_err(SweepError::Checkpoint)? {
                Some(loaded) => {
                    if let Some(diag) = loaded.checkpoint.diagnose_incompatibility(fp, &config) {
                        return Err(SweepError::IncompatibleCheckpoint {
                            path: path.clone(),
                            source: diag,
                        });
                    }
                    if loaded.recovered_from_backup {
                        initial_warnings.push(format!(
                            "checkpoint {} was torn or missing; recovered the previous \
                             generation from {}",
                            path.display(),
                            path.with_extension("bak").display()
                        ));
                    }
                    if loaded.checksum_missing {
                        initial_warnings.push(format!(
                            "checkpoint {} predates content checksums: silent corruption \
                             cannot be detected (the next save upgrades it)",
                            path.display()
                        ));
                    }
                    let mut ck = loaded.checkpoint;
                    // Legacy files predate the stored config string; stamp
                    // it so future saves can diagnose field-level drift.
                    ck.config = Some(config.clone());
                    ck
                }
                None => Checkpoint::with_config(fp, config.clone()),
            }
        }
        None => Checkpoint::with_config(fp, config.clone()),
    };

    let all: Vec<Cell> = cfg
        .cells()
        .into_iter()
        .enumerate()
        .map(|(index, (strategy, replica))| Cell {
            strategy,
            replica,
            index,
        })
        .collect();
    let total = all.len();
    let pending: Vec<Cell> = all
        .iter()
        .filter(|c| !ckpt.has_cell(c.strategy.name(), c.replica))
        .cloned()
        .collect();
    let resumed = total - pending.len();

    let state = Mutex::new(SweepState {
        ckpt,
        warnings: initial_warnings,
    });
    let persist = |state: &mut SweepState| {
        if let Some(path) = &cfg.checkpoint {
            if let Err(e) = state.ckpt.save_with_retry(path, &retry) {
                state.warnings.push(format!("checkpoint save failed: {e}"));
            }
        }
    };

    // One pass over `cells`; returns the cells whose attempt panicked.
    // Workers poll the cancel token between cells: once it fires they stop
    // picking up cells (and the pool stops handing out chunks), so the
    // in-flight cells finish, get checkpointed, and the sweep winds down.
    let pool = Executor::with_cancel(cfg.threads, cfg.cancel.clone());
    let run_pass = |cells: &[Cell], attempt: usize| -> Vec<Cell> {
        let failed_chunks = pool.try_map_ordered(
            cells.len(),
            || (),
            |_scratch, range| {
                let mut failed = Vec::new();
                for cell in &cells[range] {
                    if cfg.cancel.is_cancelled() {
                        break;
                    }
                    // The shared fence contains both the test hook's panic
                    // and anything compute_cell raises; the `exec.task`
                    // failpoint it consults is keyed by the canonical cell
                    // index, like the in-cell `sweep.cell` failpoint.
                    let task = Task::new("sweep.cell", cell.index as u64);
                    let started = std::time::Instant::now();
                    let outcome = run_fenced(&task, || {
                        if attempt == 0 && cfg.fail_cells.contains(&cell.index) {
                            // Test-only hook, caught by this very fence.
                            #[allow(clippy::panic)]
                            {
                                panic!("injected worker failure (test hook)");
                            }
                        }
                        compute_cell(g, cfg, cell, attempt, total)
                    });
                    // Per-cell wall time, overall and per strategy — wall
                    // clock only, so results stay bit-identical.
                    let cell_us = started.elapsed().as_micros() as u64;
                    let registry = inet_obs::default_registry();
                    registry
                        .histogram("inet_sweep_cell_us", &[])
                        .observe(cell_us);
                    registry
                        .histogram("inet_sweep_cell_us", &[("strategy", cell.strategy.name())])
                        .observe(cell_us);
                    let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
                    match outcome {
                        Ok(Ok(record)) => {
                            st.ckpt.cells.push(record);
                        }
                        // An injected (or future, real) structured error:
                        // same degradation path as a panic, without one.
                        Ok(Err(message)) => {
                            st.ckpt.failures.push(FailureRecord {
                                strategy: cell.strategy.name().to_string(),
                                replica: cell.replica,
                                attempt,
                                message,
                            });
                            failed.push(cell.clone());
                        }
                        Err(e) => {
                            let message = match e {
                                TaskError::Fault(e) => e.to_string(),
                                TaskError::Panicked(msg) => msg,
                            };
                            st.ckpt.failures.push(FailureRecord {
                                strategy: cell.strategy.name().to_string(),
                                replica: cell.replica,
                                attempt,
                                message,
                            });
                            failed.push(cell.clone());
                        }
                    }
                    persist(&mut st);
                }
                failed
            },
        );
        match failed_chunks {
            Ok(chunks) => chunks.into_iter().flatten().collect(),
            // Cancelled before every chunk was claimed: the resample list
            // is moot — the pass after a cancellation never runs.
            Err(_) => Vec::new(),
        }
    };

    let failed_once = run_pass(&pending, 0);
    // The resample pass is skipped once cancellation fired: its cells are
    // not checkpointed as done, so a resume retries them cleanly.
    if !cfg.cancel.is_cancelled() {
        let _failed_twice = run_pass(&failed_once, 1);
    }

    let SweepState { ckpt, warnings } = state.into_inner().unwrap_or_else(|p| p.into_inner());

    // Canonical ordering for deterministic output regardless of which
    // worker finished which cell first.
    let strategy_pos = |name: &str| {
        cfg.strategies
            .iter()
            .position(|s| s.name() == name)
            .unwrap_or(usize::MAX)
    };
    let cells: Vec<CellRecord> = all
        .iter()
        .filter_map(|cell| {
            ckpt.cells
                .iter()
                .find(|r| r.strategy == cell.strategy.name() && r.replica == cell.replica)
                .cloned()
        })
        .collect();
    let mut failures = ckpt.failures;
    failures.sort_by_key(|f| (strategy_pos(&f.strategy), f.replica, f.attempt));

    // Interrupted = the token fired AND work is actually missing; a token
    // that fires after the last cell finished changes nothing.
    let interrupted = cfg.cancel.is_cancelled() && cells.len() < total;

    Ok(SweepResult {
        cells,
        failures,
        resumed,
        warnings,
        interrupted,
    })
}

/// Computes one cell (may panic; the caller catches). The `sweep.cell`
/// failpoint fires at entry, keyed by the cell's canonical index, so an
/// injected failure hits the same cell at any thread count; an `Err` takes
/// the same degrade-and-resample path as a caught panic.
fn compute_cell(
    g: &Csr,
    cfg: &SweepConfig,
    cell: &Cell,
    attempt: usize,
    total: usize,
) -> Result<CellRecord, String> {
    inet_fault::check("sweep.cell", cell.index as u64).map_err(|e| e.to_string())?;
    let seed = inet_stats::rng::child_seed(cfg.base_seed, (attempt * total + cell.index) as u64);
    let order = cell.strategy.removal_order(g, seed, cfg.bc_sources);
    let curve = percolation_curve(g, &order, cfg.record_every);
    Ok(CellRecord {
        strategy: cell.strategy.name().to_string(),
        replica: cell.replica,
        resampled: attempt > 0,
        curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_graph() -> Csr {
        // Two hubs bridged: rich structure for every strategy, small enough
        // for exact betweenness recalcs in tests.
        let mut edges: Vec<(usize, usize)> = (1..7).map(|i| (0, i)).collect();
        edges.extend((8..14).map(|i| (7, i)));
        edges.push((6, 8));
        edges.push((1, 2));
        edges.push((9, 10));
        Csr::from_edges(14, &edges)
    }

    fn base_cfg() -> SweepConfig {
        SweepConfig {
            strategies: vec![
                Strategy::Random,
                Strategy::Degree { recalc: false },
                Strategy::Degree { recalc: true },
            ],
            replicas: 3,
            base_seed: 42,
            threads: 2,
            record_every: 1,
            bc_sources: 8,
            checkpoint: None,
            cancel: CancelToken::new(),
            fail_cells: Vec::new(),
        }
    }

    fn tmp_ckpt(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("inet-resilience-sweep-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        // The save path rotates generations; stale siblings from a prior
        // test run would otherwise be "recovered".
        let _ = std::fs::remove_file(path.with_extension("bak"));
        let _ = std::fs::remove_file(path.with_extension("tmp"));
        path
    }

    #[test]
    fn cell_list_shape() {
        let cfg = base_cfg();
        let cells = cfg.cells();
        // random gets 3 replicas, the two deterministic strategies 1 each.
        assert_eq!(cells.len(), 5);
        assert_eq!(
            cells.iter().filter(|(s, _)| s.stochastic()).count(),
            3,
            "{cells:?}"
        );
    }

    #[test]
    fn sweep_completes_every_cell() {
        let g = test_graph();
        let cfg = base_cfg();
        let result = run_sweep(&g, &cfg).unwrap();
        assert_eq!(result.cells.len(), 5);
        assert!(result.failures.is_empty());
        assert_eq!(result.resumed, 0);
        for cell in &result.cells {
            assert_eq!(cell.curve.nodes, 14);
            assert!(!cell.resampled);
        }
        // Random replicas use distinct seeds → (almost surely) distinct curves.
        assert_ne!(result.cells[0].curve, result.cells[1].curve);
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let g = test_graph();
        let mut reference = None;
        for threads in [1, 2, 7] {
            let cfg = SweepConfig {
                threads,
                ..base_cfg()
            };
            let result = run_sweep(&g, &cfg).unwrap();
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(&result, r, "threads {threads}"),
            }
        }
    }

    #[test]
    fn injected_panic_degrades_to_recorded_resample() {
        let g = test_graph();
        let cfg = SweepConfig {
            fail_cells: vec![1, 3],
            ..base_cfg()
        };
        let result = run_sweep(&g, &cfg).unwrap();
        // Still every cell completed — the resample pass rescued both.
        assert_eq!(result.cells.len(), 5);
        assert_eq!(result.failures.len(), 2);
        for f in &result.failures {
            assert_eq!(f.attempt, 0);
            assert!(f.message.contains("injected"));
        }
        let resampled: Vec<_> = result.cells.iter().filter(|c| c.resampled).collect();
        assert_eq!(resampled.len(), 2);
        // A clean run and the failing run agree on the unaffected cells.
        let clean = run_sweep(&g, &base_cfg()).unwrap();
        for (a, b) in result.cells.iter().zip(&clean.cells) {
            if !a.resampled {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn checkpoint_resume_skips_finished_cells() {
        let g = test_graph();
        let path = tmp_ckpt("resume.json");
        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            ..base_cfg()
        };
        let first = run_sweep(&g, &cfg).unwrap();
        assert_eq!(first.resumed, 0);
        assert!(path.exists());

        // Simulate an interrupted run: drop the last two finished cells.
        let mut ckpt = Checkpoint::load(&path).unwrap().unwrap();
        ckpt.cells.truncate(3);
        ckpt.save(&path).unwrap();

        // Resume with the panic hook armed on EVERY cell: only recomputed
        // cells could trip it, so zero failures proves the three loaded
        // cells were not recomputed, and the two missing ones were (their
        // failures got resampled).
        let resume_cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            fail_cells: (0..5).collect(),
            ..base_cfg()
        };
        let second = run_sweep(&g, &resume_cfg).unwrap();
        assert_eq!(second.resumed, 3);
        assert_eq!(second.cells.len(), 5);
        assert_eq!(
            second.failures.len(),
            2,
            "only the 2 recomputed cells may trip the hook: {:?}",
            second.failures
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumed_results_match_uninterrupted_run() {
        let g = test_graph();
        let path = tmp_ckpt("resume-match.json");
        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            ..base_cfg()
        };
        let full = run_sweep(&g, &cfg).unwrap();
        let mut ckpt = Checkpoint::load(&path).unwrap().unwrap();
        ckpt.cells.truncate(2);
        ckpt.save(&path).unwrap();
        let resumed = run_sweep(&g, &cfg).unwrap();
        assert_eq!(resumed.cells, full.cells);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoint_is_refused() {
        let g = test_graph();
        let path = tmp_ckpt("mismatch.json");
        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            ..base_cfg()
        };
        run_sweep(&g, &cfg).unwrap();
        // Same file, different seed → different fingerprint.
        let other = SweepConfig {
            base_seed: 1,
            ..cfg.clone()
        };
        let err = run_sweep(&g, &other).unwrap_err();
        assert!(err.is_incompatible());
        let text = err.to_string();
        assert!(
            text.contains("different graph or sweep configuration"),
            "{text}"
        );
        // The stored config string lets the error name the exact field.
        assert!(text.contains("checkpoint incompatible: seed"), "{text}");
        // And a different graph is refused too — configs match, so the
        // diagnosis blames the graph.
        let g2 = Csr::from_edges(3, &[(0, 1)]);
        let err2 = run_sweep(&g2, &cfg).unwrap_err();
        assert!(err2.is_incompatible());
        assert!(
            err2.to_string().contains("checkpoint incompatible: graph"),
            "{err2}"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("bak"));
    }

    #[test]
    fn torn_checkpoint_resumes_from_backup_with_warning() {
        let g = test_graph();
        let path = tmp_ckpt("torn-resume.json");
        let _ = std::fs::remove_file(path.with_extension("bak"));
        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            ..base_cfg()
        };
        let full = run_sweep(&g, &cfg).unwrap();
        // The per-cell persistence left the penultimate generation in .bak;
        // tear the primary file mid-write.
        assert!(path.with_extension("bak").exists());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let recovered = run_sweep(&g, &cfg).unwrap();
        assert_eq!(recovered.cells, full.cells, "recovery must reconverge");
        assert!(
            recovered.warnings.iter().any(|w| w.contains("recovered")),
            "{:?}",
            recovered.warnings
        );
        // The backup held all but the last cell, so at most one recompute.
        assert!(recovered.resumed >= full.cells.len() - 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("bak"));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_cell_fault_degrades_and_resamples() {
        use inet_fault::{FaultAction, FaultPlan};
        let g = test_graph();
        // 10 cells (8 random replicas + 2 deterministic); pin the fault to
        // canonical index 7 — a scope no other test's 5-cell sweeps reach,
        // so concurrent tests cannot consume or trip it.
        let cfg = SweepConfig {
            replicas: 8,
            ..base_cfg()
        };
        assert_eq!(cfg.cells().len(), 10);
        let clean = run_sweep(&g, &cfg).unwrap();
        let result = {
            let _guard =
                inet_fault::install(FaultPlan::single("sweep.cell", Some(7), FaultAction::Error));
            run_sweep(&g, &cfg).unwrap()
        };
        assert_eq!(result.cells.len(), 10, "resample must rescue the cell");
        assert_eq!(result.failures.len(), 1);
        assert_eq!(result.failures[0].attempt, 0);
        assert!(
            result.failures[0].message.contains("sweep.cell"),
            "{}",
            result.failures[0].message
        );
        let resampled: Vec<_> = result.cells.iter().filter(|c| c.resampled).collect();
        assert_eq!(resampled.len(), 1);
        // Every unaffected cell is bit-identical to the clean run.
        for (a, b) in result.cells.iter().zip(&clean.cells) {
            if !a.resampled {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn pre_cancelled_sweep_completes_nothing_and_flags_interrupted() {
        let g = test_graph();
        let token = CancelToken::new();
        token.cancel();
        let cfg = SweepConfig {
            cancel: token,
            ..base_cfg()
        };
        let result = run_sweep(&g, &cfg).unwrap();
        assert!(result.interrupted);
        assert!(result.cells.is_empty());
        assert!(result.failures.is_empty(), "cancel is not a failure");
    }

    #[test]
    fn cancelled_sweep_resumes_to_identical_results() {
        let g = test_graph();
        for threads in [1, 2, 7] {
            let path = tmp_ckpt(&format!("cancel-resume-{threads}.json"));
            let cfg = SweepConfig {
                threads,
                checkpoint: Some(path.clone()),
                ..base_cfg()
            };
            let full = run_sweep(&g, &cfg).unwrap();
            assert!(!full.interrupted);
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(path.with_extension("bak"));

            // Interrupt a fresh run immediately; whatever cells completed
            // before the poll landed are checkpointed.
            let token = CancelToken::new();
            token.cancel();
            let cut = run_sweep(
                &g,
                &SweepConfig {
                    cancel: token,
                    ..cfg.clone()
                },
            )
            .unwrap();
            assert!(cut.interrupted, "threads {threads}");

            // Resume with a fresh token: the union must be bit-identical to
            // the uninterrupted run.
            let resumed = run_sweep(&g, &cfg).unwrap();
            assert!(!resumed.interrupted);
            assert_eq!(resumed.cells, full.cells, "threads {threads}");
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(path.with_extension("bak"));
        }
    }

    #[test]
    fn empty_strategy_list_yields_empty_result() {
        let g = test_graph();
        let cfg = SweepConfig {
            strategies: Vec::new(),
            ..base_cfg()
        };
        let result = run_sweep(&g, &cfg).unwrap();
        assert!(result.cells.is_empty());
        assert!(result.failures.is_empty());
    }
}
