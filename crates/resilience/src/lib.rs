//! # inet-resilience — percolation and targeted-attack engine
//!
//! Answers the robustness question the topology-validation literature asks
//! of every Internet model: *what happens to connectivity when nodes fail
//! or are attacked?* Models that match degree distributions can still
//! diverge wildly under targeted removal, so attack response is a
//! validation axis in its own right.
//!
//! The pipeline has three layers:
//!
//! * [`strategy`] — node-removal orders: uniform-random failure and
//!   degree / k-core / betweenness attacks, each in a *static-ranking*
//!   (score the intact graph once) and a *recalculated* (re-score the
//!   damaged graph as the attack proceeds) variant. Every order is a pure
//!   function of `(graph, strategy, seed)`.
//! * [`percolation`] — the curve engine: instead of recomputing components
//!   after each removal (`O(N·E)`), nodes are *re-added* in reverse order
//!   and merged with a union-find, giving giant component, mean finite
//!   component size `⟨s⟩`, and surviving-edge count at every step in
//!   `O(E·α(N))` total, plus the critical fraction `f_c` (smallest removal
//!   fraction with giant `< ⌈√N⌉`).
//! * [`sweep`] — robust parallel orchestration of `strategies × replicas`
//!   cells on the work-stealing pool: per-cell panic isolation with one
//!   resample (a crash degrades to a [`checkpoint::FailureRecord`], never
//!   a process abort), and JSON checkpointing ([`checkpoint`]) so an
//!   interrupted sweep resumes instead of restarting.
//!
//! Everything is bit-identical for any thread count: cell seeds derive
//! from the cell's position in the configuration, curves are integer
//! union-find arithmetic, and outputs are canonically ordered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod percolation;
pub mod strategy;
pub mod sweep;

pub use checkpoint::{
    fingerprint, CellRecord, Checkpoint, CheckpointError, FailureRecord, LoadedCheckpoint,
    RetryPolicy,
};
pub use percolation::{percolation_curve, AttackCurve, CurvePoint};
pub use strategy::{Strategy, STRATEGY_NAMES};
pub use sweep::{run_sweep, SweepConfig, SweepError, SweepResult};
