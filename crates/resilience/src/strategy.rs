//! Node-removal strategies: who dies first?
//!
//! Each strategy turns a graph into a deterministic removal order (a
//! permutation of node ids). Two families:
//!
//! * **Static ranking** — score every node once on the intact graph and
//!   remove in descending score order. Cheap, and the classic protocol of
//!   Albert–Jeong–Barabási attack studies.
//! * **Recalculated** — re-score the *damaged* graph as the attack
//!   proceeds. Degree recalculation is exact per removal (a lazy max-heap);
//!   k-core and betweenness recalculate in batches of `⌈N/64⌉` removals,
//!   which captures the adaptive effect at a bounded `64×` recompute cost.
//!
//! Ties always break toward the smaller node id, and the only randomness
//! (uniform failure) comes from an explicit seed, so every order is a pure
//! function of `(graph, strategy, seed)`.

use inet_graph::Csr;
use inet_metrics::betweenness::betweenness_sampled;
use inet_metrics::kcore::KCoreDecomposition;
use rand::seq::SliceRandom;

/// Batches between recalculations for the batched adaptive strategies.
const RECALC_BATCHES: usize = 64;

/// A node-removal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform random failure (the seeded replica axis of a sweep).
    Random,
    /// Remove highest-degree nodes first.
    Degree {
        /// Re-rank on the damaged graph (exact, per removal).
        recalc: bool,
    },
    /// Remove highest-core-number nodes first (degree breaks score ties).
    KCore {
        /// Re-rank on the damaged graph (batched).
        recalc: bool,
    },
    /// Remove highest-betweenness nodes first (sampled Brandes scores).
    Betweenness {
        /// Re-rank on the damaged graph (batched).
        recalc: bool,
    },
}

/// Every strategy name accepted by [`Strategy::parse`], in display order.
pub const STRATEGY_NAMES: [&str; 7] = [
    "random",
    "degree",
    "degree-recalc",
    "kcore",
    "kcore-recalc",
    "betweenness",
    "betweenness-recalc",
];

impl Strategy {
    /// Parses a CLI strategy name.
    pub fn parse(name: &str) -> Result<Strategy, String> {
        Ok(match name {
            "random" => Strategy::Random,
            "degree" => Strategy::Degree { recalc: false },
            "degree-recalc" => Strategy::Degree { recalc: true },
            "kcore" => Strategy::KCore { recalc: false },
            "kcore-recalc" => Strategy::KCore { recalc: true },
            "betweenness" => Strategy::Betweenness { recalc: false },
            "betweenness-recalc" => Strategy::Betweenness { recalc: true },
            other => {
                return Err(format!(
                    "unknown strategy '{other}' (known: {})",
                    STRATEGY_NAMES.join(" ")
                ))
            }
        })
    }

    /// The canonical name, inverse of [`Strategy::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Degree { recalc: false } => "degree",
            Strategy::Degree { recalc: true } => "degree-recalc",
            Strategy::KCore { recalc: false } => "kcore",
            Strategy::KCore { recalc: true } => "kcore-recalc",
            Strategy::Betweenness { recalc: false } => "betweenness",
            Strategy::Betweenness { recalc: true } => "betweenness-recalc",
        }
    }

    /// `true` when the order depends on the seed (replicas are meaningful).
    pub fn stochastic(&self) -> bool {
        matches!(self, Strategy::Random)
    }

    /// Computes the removal order for `g`. `seed` feeds only the stochastic
    /// strategies; `bc_sources` bounds the Brandes source sample for the
    /// betweenness rankings.
    pub fn removal_order(&self, g: &Csr, seed: u64, bc_sources: usize) -> Vec<u32> {
        match *self {
            Strategy::Random => random_order(g, seed),
            Strategy::Degree { recalc: false } => static_order(g, |g| {
                (0..g.node_count()).map(|v| g.degree(v) as u64).collect()
            }),
            Strategy::Degree { recalc: true } => adaptive_degree_order(g),
            Strategy::KCore { recalc } => {
                let score = |g: &Csr| -> Vec<u64> {
                    let cores = KCoreDecomposition::measure(g).core;
                    // Core number dominates; degree breaks ties within a shell.
                    (0..g.node_count())
                        .map(|v| ((cores[v] as u64) << 32) | g.degree(v) as u64)
                        .collect()
                };
                if recalc {
                    batched_order(g, score)
                } else {
                    static_order(g, score)
                }
            }
            Strategy::Betweenness { recalc } => {
                let score = move |g: &Csr| -> Vec<u64> {
                    // Monotone f64 → u64 key (scores are always ≥ 0).
                    betweenness_sampled(g, bc_sources.max(1), 1)
                        .into_iter()
                        .map(|b| b.to_bits())
                        .collect()
                };
                if recalc {
                    batched_order(g, score)
                } else {
                    static_order(g, score)
                }
            }
        }
    }
}

/// Seeded uniform permutation.
fn random_order(g: &Csr, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..g.node_count() as u32).collect();
    order.shuffle(&mut inet_stats::rng::seeded_rng(seed));
    order
}

/// Rank once on the intact graph: descending score, ascending id on ties.
fn static_order(g: &Csr, score: impl Fn(&Csr) -> Vec<u64>) -> Vec<u32> {
    let scores = score(g);
    let mut order: Vec<u32> = (0..g.node_count() as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(scores[v as usize]), v));
    order
}

/// Exact adaptive highest-degree-first order via a lazy max-heap: each
/// degree decrement pushes a fresh `(degree, node)` entry, and stale entries
/// are discarded on pop. `O(E log E)`.
fn adaptive_degree_order(g: &Csr) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.node_count();
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
    let mut removed = vec![false; n];
    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = (0..n as u32)
        .map(|v| (degree[v as usize], Reverse(v)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some((d, Reverse(v))) = heap.pop() {
        if removed[v as usize] || degree[v as usize] != d {
            continue; // stale entry
        }
        removed[v as usize] = true;
        order.push(v);
        for &u in g.neighbors(v as usize) {
            let ui = u as usize;
            if !removed[ui] {
                degree[ui] -= 1;
                heap.push((degree[ui], Reverse(u)));
            }
        }
    }
    order
}

/// Batched adaptive order: re-score the surviving induced subgraph every
/// `⌈N/RECALC_BATCHES⌉` removals and take the next batch from the fresh
/// ranking (descending score, ascending original id on ties).
fn batched_order(g: &Csr, score: impl Fn(&Csr) -> Vec<u64>) -> Vec<u32> {
    let n = g.node_count();
    let batch = n.div_ceil(RECALC_BATCHES).max(1);
    let mut alive = vec![true; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    while order.len() < n {
        let (sub, map) = g.induced_subgraph(&alive);
        let sub_scores = score(&sub);
        let mut ranked: Vec<u32> = (0..sub.node_count() as u32).collect();
        ranked.sort_by_key(|&v| (std::cmp::Reverse(sub_scores[v as usize]), map[v as usize]));
        for &v in ranked.iter().take(batch.min(ranked.len())) {
            let old = map[v as usize];
            alive[old] = false;
            order.push(old as u32);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order
                .iter()
                .all(|&v| (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true))
    }

    fn sample_graph() -> Csr {
        // Hub 0 (degree 5), a triangle 1-2-3, leaves.
        Csr::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (1, 3),
                (2, 3),
                (6, 7),
            ],
        )
    }

    #[test]
    fn parse_and_name_round_trip() {
        for name in STRATEGY_NAMES {
            assert_eq!(Strategy::parse(name).unwrap().name(), name);
        }
        assert!(Strategy::parse("voodoo").is_err());
        assert!(Strategy::parse("voodoo").unwrap_err().contains("random"));
    }

    #[test]
    fn every_strategy_yields_a_permutation() {
        let g = sample_graph();
        for name in STRATEGY_NAMES {
            let s = Strategy::parse(name).unwrap();
            let order = s.removal_order(&g, 7, 4);
            assert!(is_permutation(&order, 8), "{name}: {order:?}");
        }
    }

    #[test]
    fn degree_attack_hits_the_hub_first() {
        let g = sample_graph();
        for s in [
            Strategy::Degree { recalc: false },
            Strategy::Degree { recalc: true },
        ] {
            assert_eq!(s.removal_order(&g, 0, 4)[0], 0, "{}", s.name());
        }
    }

    #[test]
    fn static_ties_break_by_id() {
        // 4 isolated nodes: all scores equal.
        let g = Csr::from_edges(4, &[]);
        let order = Strategy::Degree { recalc: false }.removal_order(&g, 0, 4);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn adaptive_degree_reranks_after_damage() {
        // Hub A (0) degree 4, hub B (5) degree 3 + shared leaf: after A is
        // removed, B's degree drops; a static rank keeps B second, but so
        // does the adaptive one here — build a case where they differ:
        // star A = 0 with leaves 1..5 (degree 5), clique 6-7-8-9 (degrees 3).
        let mut edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        for i in 6..10 {
            for j in (i + 1)..10 {
                edges.push((i, j));
            }
        }
        let g = Csr::from_edges(10, &edges);
        let adaptive = Strategy::Degree { recalc: true }.removal_order(&g, 0, 4);
        // After removing hub 0, leaves have degree 0 but the clique still
        // has degree 3: adaptive keeps dismantling the clique until its
        // remnant ties with the leaves (degree 1, id order takes over).
        assert_eq!(adaptive[0], 0);
        assert_eq!(&adaptive[1..4], &[6, 7, 8]);
        // Static ranking instead removes by intact degree: clique first too
        // (3 > 1), so compare against a chain where recalc matters:
        let chain = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let adaptive = Strategy::Degree { recalc: true }.removal_order(&chain, 0, 4);
        // Interior 1 goes first (degree 2, smallest id); 3 keeps degree 2 in
        // the damaged graph so it goes next — not id order.
        assert_eq!(&adaptive[..2], &[1, 3]);
    }

    #[test]
    fn random_orders_differ_by_seed_and_reproduce() {
        let g = sample_graph();
        let a = Strategy::Random.removal_order(&g, 1, 4);
        let b = Strategy::Random.removal_order(&g, 1, 4);
        let c = Strategy::Random.removal_order(&g, 2, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(is_permutation(&c, 8));
    }

    #[test]
    fn deterministic_strategies_ignore_the_seed() {
        let g = sample_graph();
        for name in STRATEGY_NAMES.iter().filter(|&&s| s != "random") {
            let s = Strategy::parse(name).unwrap();
            assert_eq!(
                s.removal_order(&g, 1, 4),
                s.removal_order(&g, 99, 4),
                "{name}"
            );
        }
    }

    #[test]
    fn kcore_attack_targets_the_core() {
        // K4 core (0..4) + long tail: core members die first.
        let mut edges = vec![(3, 4), (4, 5), (5, 6)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let g = Csr::from_edges(7, &edges);
        let order = Strategy::KCore { recalc: false }.removal_order(&g, 0, 4);
        let first4: Vec<u32> = order[..4].to_vec();
        for v in 0..4u32 {
            assert!(first4.contains(&v), "core node {v} not removed early");
        }
    }

    #[test]
    fn betweenness_attack_finds_the_bridge() {
        // Two K4s joined by a single bridge node 8.
        let mut edges = Vec::new();
        for base in [0usize, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    edges.push((i, j));
                }
            }
        }
        edges.push((0, 8));
        edges.push((4, 8));
        let g = Csr::from_edges(9, &edges);
        for recalc in [false, true] {
            let order = Strategy::Betweenness { recalc }.removal_order(&g, 0, 16);
            assert_eq!(order[0], 8, "recalc {recalc}: bridge must die first");
        }
    }

    #[test]
    fn empty_graph_orders_are_empty() {
        let g = Csr::from_edges(0, &[]);
        for name in STRATEGY_NAMES {
            let s = Strategy::parse(name).unwrap();
            assert!(s.removal_order(&g, 0, 4).is_empty(), "{name}");
        }
    }
}
